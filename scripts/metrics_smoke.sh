#!/usr/bin/env bash
# Metrics smoke test: boot gve-serve, run one detection end to end,
# scrape /metrics, and assert the observability contract — the core
# metric families are present and every histogram's buckets are
# cumulative (monotone, ending at +Inf). Used by the metrics-smoke CI
# job; runnable locally with `bash scripts/metrics_smoke.sh`.
set -euo pipefail

cd "$(dirname "$0")/.."

PORT="${GVE_SMOKE_PORT:-7461}"
ADDR="127.0.0.1:${PORT}"
GVE="${GVE_BIN:-target/release/gve}"

if [[ ! -x "$GVE" ]]; then
  cargo build --release --bin gve
fi

"$GVE" serve --addr "$ADDR" --workers 1 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT

# Wait for the accept loop to come up.
for _ in $(seq 1 50); do
  curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -fsS "http://$ADDR/healthz" >/dev/null

# Register a generated graph and run one detection to completion.
"$GVE" client POST /graphs --addr "$ADDR" --body \
  '{"name":"smoke","generate":{"class":"sbm","vertices":2000,"communities":8,"intra_degree":12.0,"inter_degree":1.0,"seed":11}}' \
  >/dev/null
JOB=$("$GVE" client POST /graphs/smoke/detect --addr "$ADDR" \
  --body '{"objective":"modularity"}' | sed -n 's/.*"id":\([0-9]*\).*/\1/p')
STATE=queued
for _ in $(seq 1 150); do
  STATE=$("$GVE" client GET "/jobs/$JOB" --addr "$ADDR" |
    sed -n 's/.*"state":"\([a-z]*\)".*/\1/p')
  [[ "$STATE" == done ]] && break
  [[ "$STATE" == failed ]] && { echo "FAIL: detect job failed"; exit 1; }
  sleep 0.2
done
[[ "$STATE" == done ]] || { echo "FAIL: detect job never finished"; exit 1; }

METRICS=$(curl -fsS "http://$ADDR/metrics")

# Every core family the paper's evaluation needs must be exported.
for name in \
  gve_leiden_runs_total \
  gve_leiden_passes_total \
  gve_leiden_move_iterations_total \
  gve_leiden_pruning_processed_total \
  gve_leiden_pruning_skipped_total \
  gve_leiden_refine_moves_total \
  gve_leiden_aggregation_shrink_ratio \
  gve_leiden_phase_seconds_total \
  gve_cache_hits_total \
  gve_cache_misses_total \
  gve_jobs_submitted_total \
  gve_jobs_completed_total \
  gve_jobs_queue_depth \
  gve_jobs_queue_wait_seconds_bucket \
  gve_jobs_run_seconds_bucket \
  gve_http_connections_total \
  gve_http_rejected_connections_total \
  gve_http_request_seconds_bucket \
  gve_updates_batches_total; do
  grep -q "^$name" <<<"$METRICS" ||
    { echo "FAIL: missing metric $name"; echo "$METRICS"; exit 1; }
done

grep -q '^gve_leiden_runs_total 1$' <<<"$METRICS" ||
  { echo "FAIL: expected exactly one recorded run"; echo "$METRICS"; exit 1; }

# Histogram buckets must be cumulative: within one series (same family
# and labels apart from le), counts never decrease and end at +Inf.
awk '
  /_bucket\{/ {
    val = $NF + 0
    key = $0; sub(/le="[^"]*",?/, "", key); sub(/ [^ ]*$/, "", key)
    le = $0; sub(/.*le="/, "", le); sub(/".*/, "", le)
    if (key != prev_key) { prev = -1; prev_key = key }
    if (val < prev) { print "FAIL: non-monotone bucket: " $0; exit 1 }
    prev = val; last_le[key] = le
  }
  END {
    for (k in last_le)
      if (last_le[k] != "+Inf") { print "FAIL: " k " missing +Inf bucket"; exit 1 }
  }
' <<<"$METRICS"

echo "metrics smoke OK: core families present, histogram buckets monotone"
