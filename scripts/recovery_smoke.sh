#!/usr/bin/env bash
# Restart-recovery smoke test: boot gve-serve with --data-dir, register
# a graph, run a detection, apply update batches, SIGKILL the server
# (no graceful shutdown), restart on the same directory, and assert the
# recovered epoch and membership are identical to the pre-kill state.
# Used by the recovery-smoke CI job; runnable locally with
# `bash scripts/recovery_smoke.sh`.
set -euo pipefail

cd "$(dirname "$0")/.."

PORT="${GVE_SMOKE_PORT:-7467}"
ADDR="127.0.0.1:${PORT}"
GVE="${GVE_BIN:-target/release/gve}"
DATA_DIR="$(mktemp -d)"
trap 'kill "$SERVE_PID" 2>/dev/null || true; rm -rf "$DATA_DIR"' EXIT

if [[ ! -x "$GVE" ]]; then
  cargo build --release --bin gve
fi

wait_healthy() {
  for _ in $(seq 1 50); do
    curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1 && return 0
    sleep 0.2
  done
  echo "FAIL: server never became healthy"
  exit 1
}

wait_job_done() {
  local job=$1 state=queued
  for _ in $(seq 1 150); do
    state=$("$GVE" client GET "/jobs/$job" --addr "$ADDR" |
      sed -n 's/.*"state":"\([a-z]*\)".*/\1/p')
    [[ "$state" == done ]] && return 0
    [[ "$state" == failed ]] && { echo "FAIL: detect job failed"; exit 1; }
    sleep 0.2
  done
  echo "FAIL: detect job never finished"
  exit 1
}

"$GVE" serve --addr "$ADDR" --workers 1 --data-dir "$DATA_DIR" &
SERVE_PID=$!
wait_healthy

"$GVE" client POST /graphs --addr "$ADDR" --body \
  '{"name":"smoke","generate":{"class":"sbm","vertices":1000,"communities":8,"intra_degree":12.0,"inter_degree":1.0,"seed":11}}' \
  >/dev/null
JOB=$("$GVE" client POST /graphs/smoke/detect --addr "$ADDR" \
  --body '{"objective":"modularity"}' | sed -n 's/.*"id":\([0-9]*\).*/\1/p')
wait_job_done "$JOB"

# Apply a few update batches; each is fsynced to the WAL before its 200.
for i in 1 2 3; do
  "$GVE" client POST /graphs/smoke/updates --addr "$ADDR" --body \
    "{\"insertions\":[[$i,$((i + 100)),2.0],[$((i + 10)),$((i + 200)),1.0]]}" \
    >/dev/null
done

BEFORE_INFO=$("$GVE" client GET /graphs/smoke --addr "$ADDR")
BEFORE_EPOCH=$(sed -n 's/.*"epoch":\([0-9]*\).*/\1/p' <<<"$BEFORE_INFO")
BEFORE_MEMBERSHIP=$("$GVE" client GET /graphs/smoke/membership --addr "$ADDR")
[[ "$BEFORE_EPOCH" == 3 ]] || { echo "FAIL: expected epoch 3, got $BEFORE_EPOCH"; exit 1; }

# Crash: no flush, no graceful shutdown.
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true

"$GVE" serve --addr "$ADDR" --workers 1 --data-dir "$DATA_DIR" &
SERVE_PID=$!
wait_healthy

AFTER_INFO=$("$GVE" client GET /graphs/smoke --addr "$ADDR")
AFTER_EPOCH=$(sed -n 's/.*"epoch":\([0-9]*\).*/\1/p' <<<"$AFTER_INFO")
AFTER_MEMBERSHIP=$("$GVE" client GET /graphs/smoke/membership --addr "$ADDR")

[[ "$AFTER_EPOCH" == "$BEFORE_EPOCH" ]] ||
  { echo "FAIL: epoch $BEFORE_EPOCH became $AFTER_EPOCH after restart"; exit 1; }
[[ "$AFTER_MEMBERSHIP" == "$BEFORE_MEMBERSHIP" ]] ||
  { echo "FAIL: membership changed across restart"; exit 1; }

# The recovered delta ring serves an up-to-date poll at the current epoch.
DELTA=$(curl -fsS "http://$ADDR/graphs/smoke/delta?since=$AFTER_EPOCH")
grep -q '"resync":false' <<<"$DELTA" ||
  { echo "FAIL: delta poll at current epoch wanted a resync: $DELTA"; exit 1; }

echo "recovery smoke OK: epoch $AFTER_EPOCH and membership identical after kill -9"
