//! Offline stand-in for the subset of the `rayon` API this workspace
//! uses, so the repo builds and tests in network-less containers where
//! the real crates.io `rayon` is unavailable.
//!
//! Semantics, not performance parity:
//!
//! * [`broadcast`] runs the closure once per logical worker on **real
//!   OS threads** (`std::thread::scope`), with a thread-local worker
//!   index behind [`current_thread_index`]. This is the primitive
//!   `gve_prim::parfor::dynamic_workers` builds its OpenMP-style
//!   dynamic loops on, so the Leiden hot paths stay genuinely parallel
//!   and every atomics/contention code path is still exercised.
//! * The `prelude` iterator combinators (`par_iter`, `into_par_iter`,
//!   `par_chunks`, ...) are sequential adapters over `std` iterators:
//!   identical results, no data parallelism.
//! * [`ThreadPoolBuilder`]/[`ThreadPool::install`] scope a logical
//!   thread count that [`current_num_threads`] and [`broadcast`]
//!   observe, so thread-count sweeps (`fig9_scaling`,
//!   color-synchronous determinism tests) behave meaningfully.

use std::cell::Cell;
use std::num::NonZeroUsize;

thread_local! {
    /// Worker index inside a `broadcast`, `None` outside one.
    static THREAD_INDEX: Cell<Option<usize>> = const { Cell::new(None) };
    /// Logical pool size installed by `ThreadPool::install`.
    static POOL_SIZE: Cell<Option<usize>> = const { Cell::new(None) };
}

fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Number of logical worker threads of the current (scoped) pool.
pub fn current_num_threads() -> usize {
    POOL_SIZE.with(|p| p.get()).unwrap_or_else(hardware_threads)
}

/// Index of the current worker inside a [`broadcast`], if any.
pub fn current_thread_index() -> Option<usize> {
    THREAD_INDEX.with(|t| t.get())
}

/// Context handed to every [`broadcast`] invocation.
#[derive(Debug, Clone, Copy)]
pub struct BroadcastContext {
    index: usize,
    num_threads: usize,
}

impl BroadcastContext {
    /// This worker's index in `0..num_threads()`.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Number of workers participating in the broadcast.
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Runs `f` once on every logical worker thread and collects the
/// results in worker order. Workers are real OS threads.
pub fn broadcast<F, R>(f: F) -> Vec<R>
where
    F: Fn(BroadcastContext) -> R + Sync,
    R: Send,
{
    let n = current_num_threads();
    if n <= 1 {
        let previous = THREAD_INDEX.with(|t| t.replace(Some(0)));
        let result = f(BroadcastContext {
            index: 0,
            num_threads: 1,
        });
        THREAD_INDEX.with(|t| t.set(previous));
        return vec![result];
    }
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .map(|index| {
                scope.spawn(move || {
                    THREAD_INDEX.with(|t| t.set(Some(index)));
                    POOL_SIZE.with(|p| p.set(Some(n)));
                    f(BroadcastContext {
                        index,
                        num_threads: n,
                    })
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("broadcast worker panicked"))
            .collect()
    })
}

/// Runs `a` and `b`, returning both results (sequentially here).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    (a(), b())
}

/// Error type produced by [`ThreadPoolBuilder::build`]. Never actually
/// constructed by the shim.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default (hardware) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the logical thread count; `0` means the hardware default.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds a logical pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            hardware_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }

    /// Installs the pool size as the process-wide default for the
    /// calling thread (best-effort shim of `build_global`).
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            hardware_threads()
        } else {
            self.num_threads
        };
        POOL_SIZE.with(|p| p.set(Some(n)));
        Ok(())
    }
}

/// A logical thread pool: it scopes the thread count that
/// [`current_num_threads`] and [`broadcast`] observe.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's thread count installed.
    pub fn install<F, R>(&self, f: F) -> R
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        let previous = POOL_SIZE.with(|p| p.replace(Some(self.num_threads)));
        let result = f();
        POOL_SIZE.with(|p| p.set(previous));
        result
    }

    /// The pool's logical thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Sequential stand-ins for rayon's parallel iterator traits.
pub mod iter {
    /// Wrapper over a `std` iterator exposing rayon-named combinators.
    pub struct ParIter<I> {
        inner: I,
    }

    impl<I: Iterator> ParIter<I> {
        /// Wraps a sequential iterator.
        pub fn new(inner: I) -> Self {
            Self { inner }
        }

        /// Maps every item.
        pub fn map<O, F: FnMut(I::Item) -> O>(self, f: F) -> ParIter<std::iter::Map<I, F>> {
            ParIter::new(self.inner.map(f))
        }

        /// Keeps items matching the predicate.
        pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> ParIter<std::iter::Filter<I, F>> {
            ParIter::new(self.inner.filter(f))
        }

        /// Filter + map in one pass.
        pub fn filter_map<O, F: FnMut(I::Item) -> Option<O>>(
            self,
            f: F,
        ) -> ParIter<std::iter::FilterMap<I, F>> {
            ParIter::new(self.inner.filter_map(f))
        }

        /// Maps every item to an iterator and flattens.
        pub fn flat_map<O: IntoIterator, F: FnMut(I::Item) -> O>(
            self,
            f: F,
        ) -> ParIter<std::iter::FlatMap<I, O, F>> {
            ParIter::new(self.inner.flat_map(f))
        }

        /// Rayon's serial-inner-iterator variant of `flat_map`; the
        /// sequential shim treats them identically.
        pub fn flat_map_iter<O: IntoIterator, F: FnMut(I::Item) -> O>(
            self,
            f: F,
        ) -> ParIter<std::iter::FlatMap<I, O, F>> {
            ParIter::new(self.inner.flat_map(f))
        }

        /// Pairs items with their index.
        pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
            ParIter::new(self.inner.enumerate())
        }

        /// Zips with another parallel iterator.
        pub fn zip<J: IntoParallelIterator>(self, other: J) -> ParIter<std::iter::Zip<I, J::Iter>> {
            ParIter::new(self.inner.zip(other.into_par_iter().inner))
        }

        /// No-op splitting hint, for API compatibility.
        pub fn with_min_len(self, _len: usize) -> Self {
            self
        }

        /// No-op splitting hint, for API compatibility.
        pub fn with_max_len(self, _len: usize) -> Self {
            self
        }

        /// Runs `f` on every item.
        pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
            self.inner.for_each(f)
        }

        /// Rayon-style fold: per-worker accumulator seeded by
        /// `identity`. Sequentially there is one worker, hence one
        /// folded value.
        pub fn fold<A, ID, F>(self, identity: ID, fold_op: F) -> ParIter<std::iter::Once<A>>
        where
            ID: Fn() -> A,
            F: FnMut(A, I::Item) -> A,
        {
            ParIter::new(std::iter::once(self.inner.fold(identity(), fold_op)))
        }

        /// Rayon-style reduce with an identity factory.
        pub fn reduce<ID, F>(self, identity: ID, reduce_op: F) -> I::Item
        where
            ID: Fn() -> I::Item,
            F: FnMut(I::Item, I::Item) -> I::Item,
        {
            self.inner.fold(identity(), reduce_op)
        }

        /// Sums the items.
        pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
            self.inner.sum()
        }

        /// Counts the items.
        pub fn count(self) -> usize {
            self.inner.count()
        }

        /// Maximum item.
        pub fn max(self) -> Option<I::Item>
        where
            I::Item: Ord,
        {
            self.inner.max()
        }

        /// Minimum item.
        pub fn min(self) -> Option<I::Item>
        where
            I::Item: Ord,
        {
            self.inner.min()
        }

        /// Collects into any `FromIterator` container.
        pub fn collect<C: FromIterator<I::Item>>(self) -> C {
            self.inner.collect()
        }

        /// True if any item satisfies the predicate.
        pub fn any<F: FnMut(I::Item) -> bool>(self, f: F) -> bool {
            let mut inner = self.inner;
            let f = f;
            inner.any(f)
        }

        /// True if all items satisfy the predicate.
        pub fn all<F: FnMut(I::Item) -> bool>(self, f: F) -> bool {
            let mut inner = self.inner;
            let f = f;
            inner.all(f)
        }

        /// First item matching the predicate (sequential stand-in for
        /// rayon's "any match" search).
        pub fn find_any<F: FnMut(&I::Item) -> bool>(self, f: F) -> Option<I::Item> {
            let mut inner = self.inner;
            let mut f = f;
            inner.find(move |x| f(x))
        }
    }

    /// Conversion into a (sequential) parallel iterator by value.
    pub trait IntoParallelIterator {
        /// Item type.
        type Item;
        /// Underlying sequential iterator.
        type Iter: Iterator<Item = Self::Item>;
        /// Converts into the iterator wrapper.
        fn into_par_iter(self) -> ParIter<Self::Iter>;
    }

    impl<I: Iterator> IntoParallelIterator for ParIter<I> {
        type Item = I::Item;
        type Iter = I;
        fn into_par_iter(self) -> ParIter<I> {
            self
        }
    }

    macro_rules! impl_range {
        ($($t:ty),*) => {$(
            impl IntoParallelIterator for std::ops::Range<$t> {
                type Item = $t;
                type Iter = std::ops::Range<$t>;
                fn into_par_iter(self) -> ParIter<Self::Iter> {
                    ParIter::new(self)
                }
            }
        )*};
    }
    impl_range!(u8, u16, u32, u64, usize, i32, i64);

    impl<T> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = std::vec::IntoIter<T>;
        fn into_par_iter(self) -> ParIter<Self::Iter> {
            ParIter::new(self.into_iter())
        }
    }

    impl<'a, T> IntoParallelIterator for &'a Vec<T> {
        type Item = &'a T;
        type Iter = std::slice::Iter<'a, T>;
        fn into_par_iter(self) -> ParIter<Self::Iter> {
            ParIter::new(self.iter())
        }
    }

    impl<'a, T> IntoParallelIterator for &'a [T] {
        type Item = &'a T;
        type Iter = std::slice::Iter<'a, T>;
        fn into_par_iter(self) -> ParIter<Self::Iter> {
            ParIter::new(self.iter())
        }
    }

    impl<'a, T> IntoParallelIterator for &'a mut [T] {
        type Item = &'a mut T;
        type Iter = std::slice::IterMut<'a, T>;
        fn into_par_iter(self) -> ParIter<Self::Iter> {
            ParIter::new(self.iter_mut())
        }
    }

    /// `par_iter` / `par_iter_mut` on slices and `Vec`s.
    pub trait IntoParallelRefIterator<'data> {
        /// Item type (a reference).
        type Item;
        /// Underlying iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// Borrowing parallel iterator.
        fn par_iter(&'data self) -> ParIter<Self::Iter>;
    }

    impl<'data, C: ?Sized + 'data> IntoParallelRefIterator<'data> for C
    where
        &'data C: IntoParallelIterator,
    {
        type Item = <&'data C as IntoParallelIterator>::Item;
        type Iter = <&'data C as IntoParallelIterator>::Iter;
        fn par_iter(&'data self) -> ParIter<Self::Iter> {
            self.into_par_iter()
        }
    }

    /// Mutable borrowing counterpart of [`IntoParallelRefIterator`].
    pub trait IntoParallelRefMutIterator<'data> {
        /// Item type (a mutable reference).
        type Item;
        /// Underlying iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// Mutably borrowing parallel iterator.
        fn par_iter_mut(&'data mut self) -> ParIter<Self::Iter>;
    }

    impl<'data, T: 'data> IntoParallelRefMutIterator<'data> for [T] {
        type Item = &'data mut T;
        type Iter = std::slice::IterMut<'data, T>;
        fn par_iter_mut(&'data mut self) -> ParIter<Self::Iter> {
            ParIter::new(self.iter_mut())
        }
    }

    impl<'data, T: 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
        type Item = &'data mut T;
        type Iter = std::slice::IterMut<'data, T>;
        fn par_iter_mut(&'data mut self) -> ParIter<Self::Iter> {
            ParIter::new(self.iter_mut())
        }
    }

    /// Chunking views over shared slices.
    pub trait ParallelSlice<T> {
        /// Sequential stand-in for `par_chunks`.
        fn par_chunks(&self, size: usize) -> ParIter<std::slice::Chunks<'_, T>>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_chunks(&self, size: usize) -> ParIter<std::slice::Chunks<'_, T>> {
            ParIter::new(self.chunks(size))
        }
    }

    /// Chunking and sorting over mutable slices.
    pub trait ParallelSliceMut<T> {
        /// Sequential stand-in for `par_chunks_mut`.
        fn par_chunks_mut(&mut self, size: usize) -> ParIter<std::slice::ChunksMut<'_, T>>;
        /// Sequential stand-in for `par_sort_unstable`.
        fn par_sort_unstable(&mut self)
        where
            T: Ord;
        /// Sequential stand-in for `par_sort_unstable_by_key`.
        fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, key: F);
        /// Sequential stand-in for `par_sort_unstable_by`.
        fn par_sort_unstable_by<F: FnMut(&T, &T) -> std::cmp::Ordering>(&mut self, compare: F);
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, size: usize) -> ParIter<std::slice::ChunksMut<'_, T>> {
            ParIter::new(self.chunks_mut(size))
        }
        fn par_sort_unstable(&mut self)
        where
            T: Ord,
        {
            self.sort_unstable();
        }
        fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, key: F) {
            self.sort_unstable_by_key(key);
        }
        fn par_sort_unstable_by<F: FnMut(&T, &T) -> std::cmp::Ordering>(&mut self, compare: F) {
            self.sort_unstable_by(compare);
        }
    }
}

/// Drop-in for `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn broadcast_runs_once_per_worker_with_distinct_indices() {
        let hits = AtomicUsize::new(0);
        let indices = super::broadcast(|ctx| {
            hits.fetch_add(1, Ordering::Relaxed);
            assert_eq!(super::current_thread_index(), Some(ctx.index()));
            ctx.index()
        });
        assert_eq!(hits.load(Ordering::Relaxed), super::current_num_threads());
        let mut sorted = indices.clone();
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            (0..super::current_num_threads()).collect::<Vec<_>>()
        );
        assert_eq!(super::current_thread_index(), None);
    }

    #[test]
    fn pool_install_scopes_thread_count() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        assert_eq!(pool.install(super::current_num_threads), 3);
        let results = pool.install(|| super::broadcast(|ctx| ctx.num_threads()));
        assert_eq!(results, vec![3, 3, 3]);
    }

    #[test]
    fn sequential_combinators_match_std() {
        let v: Vec<u32> = (0..100).collect();
        let doubled: Vec<u32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        let sum: u32 = (0u32..10).into_par_iter().sum();
        assert_eq!(sum, 45);
        let folded = (0u32..10)
            .into_par_iter()
            .fold(|| 0u32, |a, b| a + b)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(folded, 45);
        let mut data = vec![3, 1, 2];
        data.par_sort_unstable_by_key(|&x| x);
        assert_eq!(data, vec![1, 2, 3]);
    }
}
