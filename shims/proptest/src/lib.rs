//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Same shape — `proptest!` blocks over [`Strategy`] values with
//! `prop_map` / `prop_flat_map` composition, `prop_assert*` /
//! `prop_assume` inside test bodies — but a much simpler engine:
//! deterministic splitmix64 case generation seeded from the test name,
//! and **no shrinking** (a failing case reports its case number and
//! message, not a minimized input).

use std::fmt;

/// Outcome of a single generated test case.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was vetoed by `prop_assume!`; it does not count.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject => write!(f, "rejected by prop_assume"),
            TestCaseError::Fail(m) => write!(f, "{m}"),
        }
    }
}

/// Runner configuration (`cases` is the only knob the shim honours).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each test must pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Deterministic splitmix64 RNG used for case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Seeds deterministically from a test name.
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self::new(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of random values (no shrinking in the shim).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, map: f }
    }

    /// Generates a value, builds a dependent strategy from it, and
    /// draws from that.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap {
            base: self,
            make: f,
        }
    }
}

/// Strategy yielding a fixed (cloned) value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.base.generate(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    make: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.make)(self.base.generate(rng)).generate(rng)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                (self.start as u128 + (rng.next_u64() as u128 % span)) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128) - (lo as u128) + 1;
                (lo as u128 + (rng.next_u64() as u128 % span)) as $t
            }
        }

        impl Strategy for std::ops::RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as u128;
                let span = (<$t>::MAX as u128) - lo + 1;
                (lo + (rng.next_u64() as u128 % span)) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
impl_float_range!(f32, f64);

macro_rules! impl_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple!(A);
impl_tuple!(A, B);
impl_tuple!(A, B, C);
impl_tuple!(A, B, C, D);
impl_tuple!(A, B, C, D, E);
impl_tuple!(A, B, C, D, E, G);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`vec`]: an exact size or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec`: vectors of `element` values with a
    /// length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The macro-facing test driver: runs `cases` accepted cases, aborting
/// when rejection dominates (mirrors proptest's give-up behaviour).
pub fn run_cases<F>(test_name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::from_name(test_name);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut case_index = 0u32;
    while passed < config.cases {
        case_index += 1;
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                if rejected > config.cases.saturating_mul(20).max(1000) {
                    panic!(
                        "{test_name}: gave up after {rejected} prop_assume rejections \
                         ({passed}/{} cases passed)",
                        config.cases
                    );
                }
            }
            Err(TestCaseError::Fail(message)) => {
                panic!("{test_name}: case #{case_index} failed: {message}");
            }
        }
    }
}

/// Defines property tests: each `fn name(pattern in strategy, ...)`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_cases(stringify!($name), &config, |prop_rng| {
                    $(let $pat = $crate::Strategy::generate(&($strategy), prop_rng);)+
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strategy),+) $body
            )*
        }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}",
                format!($($fmt)+),
                file!(),
                line!()
            )));
        }
    };
}

/// Fails the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}` at {}:{}",
                l,
                r,
                file!(),
                line!()
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {} at {}:{}",
                l,
                r,
                format!($($fmt)+),
                file!(),
                line!()
            )));
        }
    }};
}

/// Vetoes the current case unless `cond` holds (it is regenerated, not
/// counted as passed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Drop-in for `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0.5f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.5..2.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_size(v in collection::vec(0u8..10, 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            prop_assert!(v.iter().all(|&b| b < 10));
        }

        #[test]
        fn flat_map_threads_dependent_values((n, v) in (1usize..20).prop_flat_map(|n| {
            (Just(n), collection::vec(0u32..100, n))
        })) {
            prop_assert_eq!(v.len(), n);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let mut a = crate::TestRng::from_name("some_test");
        let mut b = crate::TestRng::from_name("some_test");
        let strat = collection::vec(0u64..1000, 0..50);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }
}
