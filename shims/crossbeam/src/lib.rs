//! Offline stand-in for the subset of `crossbeam` this workspace uses:
//! [`queue::SegQueue`] (a concurrent MPMC queue, here a mutexed
//! `VecDeque`) and [`channel`] (re-exported `std::sync::mpsc` shapes).
//! Correctness over throughput: every operation takes a lock.

/// Concurrent queues.
pub mod queue {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// Unbounded MPMC FIFO queue (mutexed stand-in for the lock-free
    /// segmented queue).
    #[derive(Debug, Default)]
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        /// Creates an empty queue.
        pub fn new() -> Self {
            Self {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        /// Appends an element at the back.
        pub fn push(&self, value: T) {
            self.inner
                .lock()
                .expect("SegQueue poisoned")
                .push_back(value);
        }

        /// Pops the front element, if any.
        pub fn pop(&self) -> Option<T> {
            self.inner.lock().expect("SegQueue poisoned").pop_front()
        }

        /// Number of queued elements.
        pub fn len(&self) -> usize {
            self.inner.lock().expect("SegQueue poisoned").len()
        }

        /// True when the queue holds no elements.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }
}

/// MPSC channels with a crossbeam-flavoured API.
pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a message.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// Receiving half of an unbounded channel. Cloneable (workers may
    /// share it), unlike `std::sync::mpsc::Receiver`.
    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.lock().expect("receiver poisoned").recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.lock().expect("receiver poisoned").try_recv()
        }

        /// Receive with a timeout.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.0
                .lock()
                .expect("receiver poisoned")
                .recv_timeout(timeout)
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(Arc::new(Mutex::new(rx))))
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use super::queue::SegQueue;

    #[test]
    fn segqueue_is_fifo() {
        let q = SegQueue::new();
        q.push(1);
        q.push(2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn channel_roundtrip_across_threads() {
        let (tx, rx) = channel::unbounded();
        let rx2 = rx.clone();
        let handle = std::thread::spawn(move || rx2.recv().unwrap());
        tx.send(42u32).unwrap();
        assert_eq!(handle.join().unwrap(), 42);
    }
}
