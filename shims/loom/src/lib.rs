//! Offline stand-in for the [`loom`](https://docs.rs/loom) permutation
//! model checker.
//!
//! The build containers have no network, so — like every crate under
//! `shims/` — this provides the API subset the workspace uses. Real
//! loom *exhaustively enumerates* interleavings of its mock atomics
//! under the C11 memory model; that machinery cannot be reproduced
//! here. What this shim does instead is the strongest approximation
//! available with std primitives:
//!
//! * [`model`] runs the closure many times (`LOOM_ITERS`, default 200)
//!   rather than once per schedule;
//! * every atomic operation and [`thread::yield_now`] call injects a
//!   deterministic pseudo-random perturbation (spin, yield, or nothing)
//!   seeded per-iteration, so the OS scheduler is pushed through many
//!   *different* interleavings across iterations;
//! * the atomics forward to `std::sync::atomic` with the caller's
//!   orderings, so the code under test runs the real protocol on real
//!   hardware — on weakly-ordered machines a missing Acquire/Release
//!   can genuinely fail here, and a broken claim protocol (lost update,
//!   double-claim) fails quickly on any machine.
//!
//! When the real crate is available (CI with a registry), swapping the
//! path dependency back to crates.io loom upgrades these tests to true
//! exhaustive model checking with no source changes: the API is
//! identical, `model` semantics simply become "once per schedule".

use std::cell::Cell;
use std::sync::atomic::{AtomicU32 as StdAtomicU32, Ordering as StdOrdering};

/// Iterations `model` runs when `LOOM_ITERS` is unset.
pub const DEFAULT_ITERS: u32 = 200;

// Per-thread perturbation RNG, reseeded by `model` each iteration so
// runs are reproducible and spawned threads diverge deterministically.
thread_local! {
    static RNG: Cell<u32> = const { Cell::new(0x9E37_79B9) };
}

/// Global per-iteration seed; spawned threads mix a counter into it.
static ITER_SEED: StdAtomicU32 = StdAtomicU32::new(1);
static SPAWN_COUNTER: StdAtomicU32 = StdAtomicU32::new(0);

fn reseed_thread(extra: u32) {
    // Relaxed: seeds need no ordering, only per-thread distinctness.
    let base = ITER_SEED.load(StdOrdering::Relaxed);
    let mixed = (base ^ extra.wrapping_mul(0x85EB_CA6B)) | 1;
    RNG.with(|r| r.set(mixed));
}

fn next_rand() -> u32 {
    RNG.with(|r| {
        let mut x = r.get();
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        r.set(x);
        x
    })
}

/// The schedule perturbation injected around every atomic operation.
fn perturb() {
    match next_rand() % 16 {
        // Mostly run straight through — long uninterrupted bursts are
        // themselves one class of schedule.
        0..=11 => {}
        12 | 13 => std::hint::spin_loop(),
        14 => std::thread::yield_now(),
        15 => {
            for _ in 0..(next_rand() % 64) {
                std::hint::spin_loop();
            }
        }
        _ => unreachable!(),
    }
}

/// Runs `f` under the stress driver: `LOOM_ITERS` iterations (default
/// [`DEFAULT_ITERS`]), each with a fresh deterministic perturbation
/// seed. Panics (assertion failures in `f`) propagate to the caller,
/// annotated by iteration in the panic payload loom-style.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    let iters: u32 = std::env::var("LOOM_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_ITERS);
    for iter in 0..iters.max(1) {
        // Relaxed: the spawned threads reseed from this before doing
        // anything ordered; exactness is irrelevant.
        ITER_SEED.store(iter.wrapping_mul(0x9E37_79B9) | 1, StdOrdering::Relaxed);
        SPAWN_COUNTER.store(0, StdOrdering::Relaxed);
        reseed_thread(0xA11C_E500);
        f();
    }
}

/// Mock threads: spawn/join with perturbation-aware yields.
pub mod thread {
    use super::{next_rand, perturb, reseed_thread, SPAWN_COUNTER};
    use std::sync::atomic::Ordering as StdOrdering;

    /// Handle returned by [`spawn`].
    pub struct JoinHandle<T>(std::thread::JoinHandle<T>);

    impl<T> JoinHandle<T> {
        /// Waits for the thread; propagates its panic like real loom.
        pub fn join(self) -> std::thread::Result<T> {
            self.0.join()
        }
    }

    /// Spawns a real OS thread whose perturbation stream is seeded from
    /// the current model iteration.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        // Relaxed: the counter only diversifies per-thread seeds.
        let id = SPAWN_COUNTER.fetch_add(1, StdOrdering::Relaxed);
        JoinHandle(std::thread::spawn(move || {
            reseed_thread(id.wrapping_add(1));
            perturb();
            f()
        }))
    }

    /// Yield point: real loom treats this as a scheduling opportunity;
    /// here it is a randomized yield/spin.
    pub fn yield_now() {
        if next_rand().is_multiple_of(2) {
            std::thread::yield_now();
        } else {
            std::hint::spin_loop();
        }
    }
}

/// Mock `std::sync`: atomics with perturbation hooks plus `Arc`.
pub mod sync {
    pub use std::sync::{Arc, Mutex};

    /// Atomic wrappers forwarding to std with perturbation around every
    /// operation. Orderings are passed through untouched.
    pub mod atomic {
        use super::super::perturb;
        pub use std::sync::atomic::Ordering;

        macro_rules! atomic_shim {
            ($name:ident, $std:path, $val:ty) => {
                /// Perturbation-wrapped atomic (see crate docs).
                #[derive(Debug, Default)]
                pub struct $name($std);

                impl $name {
                    /// Creates a new atomic with `v`.
                    pub fn new(v: $val) -> Self {
                        Self(<$std>::new(v))
                    }

                    /// Forwards to std `load` with a perturbation.
                    pub fn load(&self, order: Ordering) -> $val {
                        perturb();
                        self.0.load(order)
                    }

                    /// Forwards to std `store` with a perturbation.
                    pub fn store(&self, v: $val, order: Ordering) {
                        perturb();
                        self.0.store(v, order);
                        perturb();
                    }

                    /// Forwards to std `swap` with a perturbation.
                    pub fn swap(&self, v: $val, order: Ordering) -> $val {
                        perturb();
                        self.0.swap(v, order)
                    }

                    /// Forwards to std `fetch_add` with a perturbation.
                    pub fn fetch_add(&self, v: $val, order: Ordering) -> $val {
                        perturb();
                        let r = self.0.fetch_add(v, order);
                        perturb();
                        r
                    }

                    /// Forwards to std `fetch_sub` with a perturbation.
                    pub fn fetch_sub(&self, v: $val, order: Ordering) -> $val {
                        perturb();
                        self.0.fetch_sub(v, order)
                    }

                    /// Forwards to std `compare_exchange`.
                    pub fn compare_exchange(
                        &self,
                        current: $val,
                        new: $val,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$val, $val> {
                        perturb();
                        let r = self.0.compare_exchange(current, new, success, failure);
                        perturb();
                        r
                    }

                    /// Forwards to std `compare_exchange_weak` — with an
                    /// extra injected spurious-failure path (weak CX may
                    /// fail even when `current` matches; std on x86-64
                    /// never exercises it, so loops must be retested).
                    pub fn compare_exchange_weak(
                        &self,
                        current: $val,
                        new: $val,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$val, $val> {
                        perturb();
                        if super::super::next_rand() % 32 == 0 {
                            return Err(self.0.load(failure));
                        }
                        self.0.compare_exchange_weak(current, new, success, failure)
                    }
                }
            };
        }

        atomic_shim!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
        atomic_shim!(AtomicU64, std::sync::atomic::AtomicU64, u64);
        atomic_shim!(AtomicU32, std::sync::atomic::AtomicU32, u32);

        /// Perturbation-wrapped `AtomicBool`.
        #[derive(Debug, Default)]
        pub struct AtomicBool(std::sync::atomic::AtomicBool);

        impl AtomicBool {
            /// Creates a new atomic bool.
            pub fn new(v: bool) -> Self {
                Self(std::sync::atomic::AtomicBool::new(v))
            }

            /// Forwards to std `load` with a perturbation.
            pub fn load(&self, order: Ordering) -> bool {
                perturb();
                self.0.load(order)
            }

            /// Forwards to std `store` with a perturbation.
            pub fn store(&self, v: bool, order: Ordering) {
                perturb();
                self.0.store(v, order);
            }

            /// Forwards to std `swap` with a perturbation.
            pub fn swap(&self, v: bool, order: Ordering) -> bool {
                perturb();
                self.0.swap(v, order)
            }
        }

        /// Memory fence forwarding to std.
        pub fn fence(order: Ordering) {
            perturb();
            std::sync::atomic::fence(order);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::Arc;

    #[test]
    fn model_runs_and_threads_update_shared_state() {
        super::model(|| {
            let counter = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let counter = Arc::clone(&counter);
                    super::thread::spawn(move || {
                        counter.fetch_add(1, Ordering::Relaxed);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(counter.load(Ordering::Relaxed), 2);
        });
    }

    #[test]
    fn weak_cx_spurious_failures_do_not_break_retry_loops() {
        super::model(|| {
            let cell = AtomicUsize::new(0);
            let mut cur = cell.load(Ordering::Relaxed);
            loop {
                match cell.compare_exchange_weak(cur, cur + 1, Ordering::AcqRel, Ordering::Acquire)
                {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
            assert_eq!(cell.load(Ordering::Relaxed), 1);
        });
    }

    #[test]
    #[should_panic]
    fn assertions_inside_model_propagate() {
        super::model(|| {
            assert_eq!(1, 2);
        });
    }
}
