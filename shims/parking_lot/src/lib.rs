//! Offline stand-in for the subset of `parking_lot` this workspace
//! uses: [`Mutex`] and [`RwLock`] with panic-on-poison `lock()` /
//! `read()` / `write()` that return guards directly (no `Result`),
//! matching parking_lot's signatures over `std::sync` primitives.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutex whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Reader-writer lock whose `read`/`write` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_guards_data() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_guards_data() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
