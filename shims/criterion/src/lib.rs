//! Offline stand-in for the subset of `criterion` this workspace uses.
//! No statistics: every benchmark is smoke-run a handful of times and a
//! single mean timing is printed, so `cargo bench` stays useful as a
//! build-and-run check in network-less containers.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` inputs are sized (ignored by the shim).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Identifier of a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Anything accepted as a benchmark name.
pub trait IntoBenchmarkId {
    /// The rendered name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u32,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the shim's fixed iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over inputs built by `setup` (setup untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }

    /// Like [`Bencher::iter_batched`] with by-reference inputs.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

const SHIM_ITERS: u32 = 3;

fn run_one(group: Option<&str>, id: &str, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher {
        iters: SHIM_ITERS,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let mean = bencher.elapsed.as_secs_f64() / SHIM_ITERS.max(1) as f64;
    match group {
        Some(g) => println!("bench {g}/{id}: {mean:.6} s/iter (shim, {SHIM_ITERS} iters)"),
        None => println!("bench {id}: {mean:.6} s/iter (shim, {SHIM_ITERS} iters)"),
    }
}

/// A named collection of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Ignored by the shim.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Ignored by the shim.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(Some(&self.name), &id.into_id(), f);
        self
    }

    /// Runs a parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_one(Some(&self.name), &id.into_id(), |b| f(b, input));
        self
    }

    /// Ends the group (no-op).
    pub fn finish(&mut self) {}
}

/// Benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Ignored by the shim.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Ignored by the shim.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Ignored by the shim.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(None, &id.into_id(), f);
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(10);
        group.bench_function("sum", |b| b.iter(|| (0..100u32).sum::<u32>()));
        group.bench_with_input(BenchmarkId::new("param", 4), &4u32, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    #[test]
    fn harness_smoke_runs() {
        let mut c = Criterion::default().sample_size(5);
        sample_bench(&mut c);
        c.bench_function("top-level", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::LargeInput)
        });
    }
}
