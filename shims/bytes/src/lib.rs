//! Offline stand-in for the subset of the `bytes` crate this workspace
//! uses. [`Bytes`]/[`BytesMut`] wrap a `Vec<u8>` (no refcounted slices)
//! and [`Buf`]/[`BufMut`] provide the little-endian get/put accessors
//! the binary graph format relies on.

/// Read access to a cursor-like byte buffer.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// Advances the cursor by `n` bytes.
    fn advance(&mut self, n: usize);
    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Copies `dst.len()` bytes out and advances.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
    fn chunk(&self) -> &[u8] {
        self
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Immutable byte buffer (plain `Vec<u8>` under the hood).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self {
            data: data.to_vec(),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies out to a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data }
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_slice(b"GVEG");
        buf.put_u16_le(1);
        buf.put_u32_le(0xDEADBEEF);
        buf.put_u64_le(42);
        buf.put_f32_le(1.5);
        let frozen = buf.freeze();
        let mut cursor: &[u8] = &frozen;
        let mut magic = [0u8; 4];
        cursor.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"GVEG");
        assert_eq!(cursor.get_u16_le(), 1);
        assert_eq!(cursor.get_u32_le(), 0xDEADBEEF);
        assert_eq!(cursor.get_u64_le(), 42);
        assert_eq!(cursor.get_f32_le(), 1.5);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut cursor: &[u8] = &[1, 2];
        cursor.get_u32_le();
    }
}
