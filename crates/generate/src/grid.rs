//! Road-network-like sparse lattices.
//!
//! The paper's road graphs (asia_osm, europe_osm) have average degree
//! ≈ 2.1: long stretches of degree-2 road with sparse intersections.
//! We model that as a 2D lattice whose edges are kept with a probability
//! tuned to the target average degree, biased to keep horizontal "roads"
//! contiguous. The result is planar-ish, low-degree and
//! community-structured by locality — the properties that make road
//! networks slow per edge for Leiden (many passes, little work per pass).

use crate::stream_seed;
use gve_graph::{CsrGraph, GraphBuilder, VertexId};
use gve_prim::Xorshift32;
use rayon::prelude::*;

/// Generates a road-like graph on a `width × height` lattice with the
/// given target average degree (arcs per vertex; realistic values are
/// around 2.1).
pub fn road_grid(width: usize, height: usize, avg_degree: f64, seed: u64) -> CsrGraph {
    let n = width * height;
    assert!(n > 0, "empty lattice");
    // A full lattice has ~2 undirected edges per vertex (4 arcs); keep a
    // fraction to reach the target.
    let keep = (avg_degree / 4.0).clamp(0.0, 1.0);

    let index = |x: usize, y: usize| (y * width + x) as VertexId;
    let edges: Vec<(VertexId, VertexId, f32)> = (0..n as u64)
        .into_par_iter()
        .flat_map_iter(|i| {
            let x = (i as usize) % width;
            let y = (i as usize) / width;
            let mut rng = Xorshift32::new(stream_seed(seed, i));
            let mut out = Vec::with_capacity(2);
            // Horizontal roads are kept with higher probability to create
            // degree-2 chains; vertical connectors are sparser.
            if x + 1 < width && rng.next_f64() < (keep * 1.5).min(1.0) {
                out.push((index(x, y), index(x + 1, y), 1.0));
            }
            if y + 1 < height && rng.next_f64() < keep * 0.5 {
                out.push((index(x, y), index(x, y + 1), 1.0));
            }
            out.into_iter()
        })
        .collect();

    let mut builder = GraphBuilder::new().with_vertices(n);
    builder.extend(edges);
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_degree_near_target() {
        let g = road_grid(200, 200, 2.1, 1);
        let s = gve_graph::props::stats(&g);
        assert_eq!(s.vertices, 40_000);
        assert!(
            (s.avg_degree - 2.1).abs() < 0.3,
            "avg degree {}",
            s.avg_degree
        );
        // Lattice: degree can never exceed 4.
        assert!(s.max_degree <= 4);
    }

    #[test]
    fn deterministic() {
        assert_eq!(road_grid(50, 50, 2.0, 3), road_grid(50, 50, 2.0, 3));
        assert_ne!(road_grid(50, 50, 2.0, 3), road_grid(50, 50, 2.0, 4));
    }

    #[test]
    fn degenerate_single_row() {
        let g = road_grid(100, 1, 4.0, 0);
        assert_eq!(g.num_vertices(), 100);
        // keep = 1.0 → the full path survives.
        assert_eq!(g.num_arcs(), 2 * 99);
    }

    #[test]
    fn zero_degree_target_gives_empty() {
        let g = road_grid(10, 10, 0.0, 0);
        assert_eq!(g.num_arcs(), 0);
    }
}
