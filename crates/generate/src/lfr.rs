//! Simplified LFR benchmark graphs (Lancichinetti–Fortunato–Radicchi).
//!
//! The LFR benchmark is the standard testbed for community detection
//! (used by the comparative study the paper cites \[15\]): power-law
//! degrees, power-law community sizes, and a *mixing parameter* `μ` —
//! the fraction of each vertex's edges that leave its community. This is
//! a simplified configuration-model construction: exact degree sequences
//! are approximated by stub pairing with rejection, which preserves the
//! three properties that matter for benchmarking detectors (degree
//! heterogeneity, size heterogeneity, controlled mixing).

use crate::stream_seed;
use gve_graph::{CsrGraph, GraphBuilder, VertexId};
use gve_prim::Xorshift32;

/// LFR generator configuration.
#[derive(Debug, Clone)]
pub struct Lfr {
    vertices: usize,
    avg_degree: f64,
    max_degree: usize,
    degree_exponent: f64,
    min_community: usize,
    max_community: usize,
    community_exponent: f64,
    mixing: f64,
    seed: u64,
}

/// An LFR graph with its planted community labels.
#[derive(Debug, Clone)]
pub struct LfrResult {
    /// The generated graph.
    pub graph: CsrGraph,
    /// Planted community of each vertex.
    pub labels: Vec<VertexId>,
    /// Number of planted communities.
    pub communities: usize,
}

impl Lfr {
    /// Creates a generator with the classic LFR defaults: degree
    /// exponent 2.5, community-size exponent 1.5.
    pub fn new(vertices: usize, avg_degree: f64, mixing: f64) -> Self {
        assert!(vertices >= 16, "LFR needs a non-trivial vertex count");
        assert!((0.0..=1.0).contains(&mixing), "mixing must be in [0, 1]");
        assert!(avg_degree >= 1.0);
        let max_degree = ((vertices as f64).sqrt() * 2.0) as usize;
        Self {
            vertices,
            avg_degree,
            max_degree: max_degree.max(4),
            degree_exponent: 2.5,
            min_community: 16.max((avg_degree * 1.5) as usize),
            max_community: (vertices / 4).max(32),
            community_exponent: 1.5,
            mixing,
            seed: 0,
        }
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the maximum degree.
    pub fn max_degree(mut self, max_degree: usize) -> Self {
        assert!(max_degree >= 2);
        self.max_degree = max_degree;
        self
    }

    /// Sets the community size range.
    pub fn community_sizes(mut self, min: usize, max: usize) -> Self {
        assert!(min >= 2 && max >= min);
        self.min_community = min;
        self.max_community = max;
        self
    }

    /// Samples from a truncated power-law `P(x) ∝ x^{-exponent}` over
    /// `[lo, hi]` via inverse-CDF.
    fn power_law(rng: &mut Xorshift32, lo: f64, hi: f64, exponent: f64) -> f64 {
        let a = 1.0 - exponent;
        let u = rng.next_f64();
        ((hi.powf(a) - lo.powf(a)) * u + lo.powf(a)).powf(1.0 / a)
    }

    /// Generates the benchmark graph.
    pub fn generate(&self) -> LfrResult {
        let n = self.vertices;
        let mut rng = Xorshift32::new(stream_seed(self.seed, 0) | 1);

        // 1. Power-law degree sequence, rescaled to the target average.
        let mut degrees: Vec<usize> = (0..n)
            .map(|_| {
                Self::power_law(&mut rng, 2.0, self.max_degree as f64, self.degree_exponent).round()
                    as usize
            })
            .collect();
        let current_avg = degrees.iter().sum::<usize>() as f64 / n as f64;
        let scale = self.avg_degree / current_avg;
        for d in degrees.iter_mut() {
            *d = ((*d as f64 * scale).round() as usize).clamp(2, self.max_degree);
        }

        // 2. Power-law community sizes covering all vertices.
        let mut community_sizes: Vec<usize> = Vec::new();
        let mut covered = 0usize;
        while covered < n {
            let size = Self::power_law(
                &mut rng,
                self.min_community as f64,
                self.max_community as f64,
                self.community_exponent,
            )
            .round() as usize;
            let size = size
                .clamp(self.min_community, self.max_community)
                .min(n - covered);
            community_sizes.push(size);
            covered += size;
        }
        // Fold a runt community into its predecessor.
        if community_sizes.len() > 1 && *community_sizes.last().unwrap() < self.min_community {
            let runt = community_sizes.pop().unwrap();
            *community_sizes.last_mut().unwrap() += runt;
        }
        let num_communities = community_sizes.len();

        // 3. Assign vertices to communities: contiguous blocks (vertex
        // order carries no structure — degrees were sampled i.i.d.).
        let mut labels = vec![0 as VertexId; n];
        let mut start = 0usize;
        let mut blocks: Vec<std::ops::Range<usize>> = Vec::with_capacity(num_communities);
        for (c, &size) in community_sizes.iter().enumerate() {
            labels[start..start + size].fill(c as VertexId);
            blocks.push(start..start + size);
            start += size;
        }

        // 4. Split each vertex's degree into intra/inter budgets, capping
        // intra at community size − 1.
        let mut intra_budget = vec![0usize; n];
        let mut inter_budget = vec![0usize; n];
        for (v, &degree) in degrees.iter().enumerate() {
            let size = community_sizes[labels[v] as usize];
            let intra = (((1.0 - self.mixing) * degree as f64).round() as usize)
                .min(size.saturating_sub(1));
            intra_budget[v] = intra;
            inter_budget[v] = degree - intra;
        }

        // 5. Intra edges: stub pairing within each block, with bounded
        // rejection of self-pairs.
        let mut builder = GraphBuilder::new().with_vertices(n);
        for block in &blocks {
            let mut stubs: Vec<VertexId> = Vec::new();
            for v in block.clone() {
                stubs.extend(std::iter::repeat_n(v as VertexId, intra_budget[v]));
            }
            // Fisher–Yates shuffle, then pair consecutive stubs.
            for i in (1..stubs.len()).rev() {
                let j = rng.next_bounded(i as u32 + 1) as usize;
                stubs.swap(i, j);
            }
            for pair in stubs.chunks_exact(2) {
                if pair[0] != pair[1] {
                    builder.add_edge(pair[0], pair[1], 1.0);
                }
            }
        }

        // 6. Inter edges: global stub pairing, rejecting same-community
        // pairs a few times before giving up on a stub.
        let mut stubs: Vec<VertexId> = Vec::new();
        for (v, &budget) in inter_budget.iter().enumerate().take(n) {
            stubs.extend(std::iter::repeat_n(v as VertexId, budget));
        }
        for i in (1..stubs.len()).rev() {
            let j = rng.next_bounded(i as u32 + 1) as usize;
            stubs.swap(i, j);
        }
        let mut i = 0;
        while i + 1 < stubs.len() {
            let a = stubs[i];
            let mut paired = false;
            for look in 1..=8.min(stubs.len() - 1 - i) {
                let b = stubs[i + look];
                if labels[a as usize] != labels[b as usize] {
                    stubs.swap(i + 1, i + look);
                    builder.add_edge(a, b, 1.0);
                    paired = true;
                    break;
                }
            }
            i += if paired { 2 } else { 1 };
        }

        LfrResult {
            graph: builder.build(),
            labels,
            communities: num_communities,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_determinism() {
        let r = Lfr::new(2000, 12.0, 0.2).seed(7).generate();
        assert_eq!(r.graph.num_vertices(), 2000);
        assert_eq!(r.labels.len(), 2000);
        assert!(r.communities >= 2, "got {} communities", r.communities);
        assert!(r.graph.is_symmetric());
        let again = Lfr::new(2000, 12.0, 0.2).seed(7).generate();
        assert_eq!(r.graph, again.graph);
        assert_eq!(r.labels, again.labels);
    }

    #[test]
    fn average_degree_near_target() {
        let r = Lfr::new(4000, 10.0, 0.3).seed(2).generate();
        let stats = gve_graph::props::stats(&r.graph);
        assert!(
            (stats.avg_degree - 10.0).abs() < 2.5,
            "avg degree {}",
            stats.avg_degree
        );
    }

    #[test]
    fn mixing_parameter_is_respected() {
        for (mu, lo, hi) in [(0.1, 0.02, 0.22), (0.4, 0.25, 0.55)] {
            let r = Lfr::new(3000, 12.0, mu).seed(4).generate();
            let mut inter = 0usize;
            let mut total = 0usize;
            for (u, v, _) in r.graph.arcs() {
                total += 1;
                if r.labels[u as usize] != r.labels[v as usize] {
                    inter += 1;
                }
            }
            let measured = inter as f64 / total as f64;
            assert!(
                (lo..hi).contains(&measured),
                "μ = {mu}: measured mixing {measured}"
            );
        }
    }

    #[test]
    fn degrees_are_heterogeneous() {
        let r = Lfr::new(4000, 10.0, 0.2).seed(9).generate();
        let stats = gve_graph::props::stats(&r.graph);
        assert!(
            stats.max_degree as f64 > 3.0 * stats.avg_degree,
            "max {} vs avg {}",
            stats.max_degree,
            stats.avg_degree
        );
    }

    #[test]
    fn community_sizes_are_heterogeneous() {
        let r = Lfr::new(5000, 10.0, 0.2).seed(11).generate();
        let mut sizes = vec![0usize; r.communities];
        for &c in &r.labels {
            sizes[c as usize] += 1;
        }
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max > 2 * min, "sizes too uniform: {min}..{max}");
    }

    #[test]
    fn leiden_recovers_low_mixing_lfr() {
        let r = Lfr::new(2000, 14.0, 0.1).seed(5).generate();
        let detected = gve_leiden_stub(&r.graph);
        let nmi = nmi_stub(&detected, &r.labels);
        assert!(nmi > 0.8, "NMI {nmi}");
    }

    // The generate crate cannot depend on the detector crates (it sits
    // below them); these stubs run a minimal Louvain-style sanity check
    // via label propagation instead.
    fn gve_leiden_stub(graph: &CsrGraph) -> Vec<u32> {
        // A few rounds of synchronous majority label propagation — weak,
        // but enough to recover μ = 0.1 structure.
        let n = graph.num_vertices();
        let mut labels: Vec<u32> = (0..n as u32).collect();
        for _ in 0..30 {
            let mut next = labels.clone();
            for u in 0..n as u32 {
                let mut counts = std::collections::HashMap::new();
                for (v, w) in graph.edges(u) {
                    *counts.entry(labels[v as usize]).or_insert(0.0) += w as f64;
                }
                if let Some((&best, _)) = counts
                    .iter()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(b.0.cmp(a.0)))
                {
                    next[u as usize] = best;
                }
            }
            if next == labels {
                break;
            }
            labels = next;
        }
        labels
    }

    fn nmi_stub(a: &[u32], b: &[u32]) -> f64 {
        // Entropy-based NMI, local copy to avoid a dependency cycle.
        use std::collections::HashMap;
        let n = a.len() as f64;
        let mut joint: HashMap<(u32, u32), f64> = HashMap::new();
        let mut pa: HashMap<u32, f64> = HashMap::new();
        let mut pb: HashMap<u32, f64> = HashMap::new();
        for (&x, &y) in a.iter().zip(b) {
            *joint.entry((x, y)).or_default() += 1.0;
            *pa.entry(x).or_default() += 1.0;
            *pb.entry(y).or_default() += 1.0;
        }
        let mut mi = 0.0;
        for (&(x, y), &nxy) in &joint {
            mi += (nxy / n) * ((n * nxy) / (pa[&x] * pb[&y])).ln();
        }
        let h =
            |p: &HashMap<u32, f64>| -> f64 { p.values().map(|&c| -(c / n) * (c / n).ln()).sum() };
        let denom = (h(&pa) + h(&pb)) / 2.0;
        if denom == 0.0 {
            1.0
        } else {
            mi / denom
        }
    }
}
