//! Barabási–Albert preferential attachment.
//!
//! Classic scale-free generator: each new vertex attaches to `m`
//! existing vertices with probability proportional to their degree,
//! implemented with the repeated-endpoint trick (sampling a uniform
//! position in the running arc list is degree-proportional sampling).
//! Inherently sequential, but fast enough for the suite's scales.

use gve_graph::{CsrGraph, GraphBuilder, VertexId};
use gve_prim::Xorshift32;

/// Generates a Barabási–Albert graph with `n` vertices, each newcomer
/// attaching `m` edges.
///
/// # Panics
/// Panics when `m == 0` or `n <= m`.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> CsrGraph {
    assert!(m > 0, "attachment count must be positive");
    assert!(n > m, "need more vertices than the attachment count");
    let mut rng = Xorshift32::new(seed as u32 ^ (seed >> 32) as u32);
    // Endpoint pool: every arc endpoint appears once, so uniform picks
    // are degree-proportional.
    let mut pool: Vec<VertexId> = Vec::with_capacity(2 * n * m);
    let mut edges: Vec<(VertexId, VertexId, f32)> = Vec::with_capacity(n * m);

    // Seed clique over the first m + 1 vertices keeps early sampling
    // well-defined.
    for u in 0..=(m as VertexId) {
        for v in (u + 1)..=(m as VertexId) {
            edges.push((u, v, 1.0));
            pool.push(u);
            pool.push(v);
        }
    }

    for v in (m + 1)..n {
        let v = v as VertexId;
        let mut chosen = Vec::with_capacity(m);
        let mut guard = 0;
        while chosen.len() < m {
            let pick = pool[rng.next_bounded(pool.len() as u32) as usize];
            if pick != v && !chosen.contains(&pick) {
                chosen.push(pick);
            }
            guard += 1;
            if guard > 64 * m {
                // Degenerate corner (tiny pools): fall back to uniform.
                let pick = rng.next_bounded(v);
                if !chosen.contains(&pick) {
                    chosen.push(pick);
                }
            }
        }
        for &u in &chosen {
            edges.push((u, v, 1.0));
            pool.push(u);
            pool.push(v);
        }
    }

    let mut builder = GraphBuilder::new().with_vertices(n);
    builder.extend(edges);
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_connectivity_floor() {
        let g = barabasi_albert(500, 3, 11);
        assert_eq!(g.num_vertices(), 500);
        // Every non-seed vertex has degree >= m.
        for u in 4..500u32 {
            assert!(g.degree(u) >= 3, "vertex {u} degree {}", g.degree(u));
        }
        assert!(g.is_symmetric());
    }

    #[test]
    fn heavy_tail_exists() {
        let g = barabasi_albert(2000, 2, 5);
        let s = gve_graph::props::stats(&g);
        assert!(s.max_degree as f64 > 5.0 * s.avg_degree);
    }

    #[test]
    fn deterministic() {
        assert_eq!(barabasi_albert(200, 2, 9), barabasi_albert(200, 2, 9));
    }

    #[test]
    #[should_panic(expected = "more vertices")]
    fn rejects_small_n() {
        barabasi_albert(3, 3, 0);
    }
}
