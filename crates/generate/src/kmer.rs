//! Protein k-mer-like chain graphs.
//!
//! GenBank k-mer graphs (kmer_A2a, kmer_V1r in Table 2) are de Bruijn
//! fragments: enormous vertex counts, average degree ≈ 2.1, built from
//! long chains with occasional branch points. We generate a union of
//! random-length paths plus a sprinkle of branch edges connecting chain
//! interiors, matching that degree profile and the "many tiny elongated
//! communities" character that makes these graphs pass-bound for Leiden.

use crate::stream_seed;
use gve_graph::{CsrGraph, GraphBuilder, VertexId};
use gve_prim::Xorshift32;

/// Generates a k-mer-like graph over `n` vertices.
///
/// `mean_chain` is the average chain length (geometric lengths);
/// `branch_fraction` is the fraction of vertices that receive an extra
/// branch edge to a random vertex in a nearby chain.
pub fn kmer_chains(n: usize, mean_chain: usize, branch_fraction: f64, seed: u64) -> CsrGraph {
    assert!(mean_chain >= 2, "chains need at least two vertices");
    assert!((0.0..=1.0).contains(&branch_fraction));
    let mut rng = Xorshift32::new(stream_seed(seed, 0) | 1);
    let mut edges: Vec<(VertexId, VertexId, f32)> = Vec::with_capacity(n + n / 8);

    // Carve 0..n into chains of geometric length.
    let p_end = 1.0 / mean_chain as f64;
    let mut v = 0usize;
    while v + 1 < n {
        // Walk a chain until the geometric coin ends it.
        let mut u = v;
        while u + 1 < n {
            edges.push((u as VertexId, (u + 1) as VertexId, 1.0));
            u += 1;
            if rng.next_f64() < p_end {
                break;
            }
        }
        v = u + 1;
    }

    // Branch edges: connect a vertex to a random vertex within a local
    // window, emulating k-mer overlaps between related sequences.
    let branches = (n as f64 * branch_fraction) as usize;
    let window = (4 * mean_chain).max(8) as u32;
    for _ in 0..branches {
        let a = rng.next_bounded(n as u32);
        let lo = a.saturating_sub(window);
        let hi = (a + window).min(n as u32 - 1);
        let b = lo + rng.next_bounded(hi - lo + 1);
        if a != b {
            edges.push((a, b, 1.0));
        }
    }

    let mut builder = GraphBuilder::new().with_vertices(n);
    builder.extend(edges);
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_profile_is_chain_like() {
        let g = kmer_chains(50_000, 16, 0.05, 1);
        let s = gve_graph::props::stats(&g);
        assert_eq!(s.vertices, 50_000);
        assert!(
            (1.6..=2.6).contains(&s.avg_degree),
            "avg degree {}",
            s.avg_degree
        );
        // Mostly degree ≤ 3 vertices.
        let low: usize = (0..50_000u32).filter(|&u| g.degree(u) <= 3).count();
        assert!(low as f64 > 0.95 * 50_000.0);
    }

    #[test]
    fn deterministic() {
        assert_eq!(kmer_chains(1000, 8, 0.1, 5), kmer_chains(1000, 8, 0.1, 5));
    }

    #[test]
    fn no_branches_gives_pure_paths() {
        let g = kmer_chains(1000, 10, 0.0, 2);
        for u in 0..1000u32 {
            assert!(g.degree(u) <= 2, "vertex {u} degree {}", g.degree(u));
        }
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_short_chains() {
        kmer_chains(10, 1, 0.0, 0);
    }
}
