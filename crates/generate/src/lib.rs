//! Synthetic graph generators for the GVE-Leiden reproduction.
//!
//! The paper evaluates on 13 SuiteSparse graphs spanning four classes —
//! web crawls (high degree, strong community structure), social networks
//! (heavy-tailed, weaker communities), road networks (planar, degree ≈ 2)
//! and protein k-mer graphs (near-linear chains). Downloading hundreds of
//! gigabytes is neither possible nor necessary here: the paper's
//! comparisons are *within-graph* (implementation A vs B on the same
//! input), so what must be preserved is each class's structural character,
//! not its absolute scale. This crate generates laptop-scale stand-ins:
//!
//! * [`rmat`] — Recursive-MATrix power-law graphs (web/social classes);
//! * [`sbm`] — planted-partition stochastic block model, with ground-truth
//!   labels for quality validation;
//! * [`er`] — Erdős–Rényi G(n, m) noise graphs;
//! * [`ba`] — Barabási–Albert preferential attachment;
//! * [`grid`] — road-like sparse lattices;
//! * [`kmer`] — chain-with-branches graphs mimicking GenBank k-mer data;
//! * [`suite()`] — a named 13-entry dataset suite mirroring Table 2.

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod ba;
pub mod er;
pub mod grid;
pub mod kmer;
pub mod lfr;
pub mod ring;
pub mod rmat;
pub mod sbm;
pub mod suite;

pub use lfr::{Lfr, LfrResult};
pub use ring::ring_of_cliques;
pub use rmat::Rmat;
pub use sbm::{PlantedPartition, PlantedResult};
pub use suite::{suite, Dataset, GraphClass};

/// Splitmix64 — used to derive independent per-edge RNG streams from a
/// single user seed, so generation can be embarrassingly parallel yet
/// reproducible.
#[inline]
pub(crate) fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a 32-bit xorshift seed for stream `index` of run `seed`.
#[inline]
pub(crate) fn stream_seed(seed: u64, index: u64) -> u32 {
    (splitmix64(seed ^ splitmix64(index)) >> 32) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_seeds_differ_across_indices() {
        let a = stream_seed(42, 0);
        let b = stream_seed(42, 1);
        let c = stream_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn splitmix_is_deterministic() {
        assert_eq!(splitmix64(1), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
    }
}
