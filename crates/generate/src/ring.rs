//! Ring of cliques — the canonical resolution-limit testbed.
//!
//! `k` cliques of `s` vertices each, joined in a ring by single edges.
//! The obviously correct partition is one community per clique, but
//! modularity maximization *merges adjacent cliques* once `k` exceeds
//! roughly `2m / s²` — the resolution limit of Fortunato & Barthélemy
//! that §2 of the paper brings up, and that the Constant Potts Model
//! avoids.

use gve_graph::{CsrGraph, GraphBuilder, VertexId};

/// Generates a ring of `num_cliques` cliques of `clique_size` vertices.
/// Vertex `c * clique_size + i` is member `i` of clique `c`; the ring
/// edge connects member 0 of each clique to member 1 of the next.
///
/// # Panics
/// Panics for fewer than 3 cliques or cliques smaller than 3 vertices.
pub fn ring_of_cliques(num_cliques: usize, clique_size: usize) -> CsrGraph {
    assert!(num_cliques >= 3, "need at least 3 cliques for a ring");
    assert!(clique_size >= 3, "cliques need at least 3 vertices");
    let mut builder = GraphBuilder::new().with_vertices(num_cliques * clique_size);
    for c in 0..num_cliques {
        let base = (c * clique_size) as VertexId;
        for i in 0..clique_size as VertexId {
            for j in (i + 1)..clique_size as VertexId {
                builder.add_edge(base + i, base + j, 1.0);
            }
        }
        let next_base = (((c + 1) % num_cliques) * clique_size) as VertexId;
        builder.add_edge(base, next_base + 1, 1.0);
    }
    builder.build()
}

/// The planted one-community-per-clique labels for a ring built by
/// [`ring_of_cliques`].
pub fn ring_labels(num_cliques: usize, clique_size: usize) -> Vec<VertexId> {
    (0..num_cliques * clique_size)
        .map(|v| (v / clique_size) as VertexId)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_is_correct() {
        let g = ring_of_cliques(5, 4);
        assert_eq!(g.num_vertices(), 20);
        // 5 cliques × C(4,2) edges + 5 ring edges, two arcs each.
        assert_eq!(g.num_arcs(), 2 * (5 * 6 + 5));
        assert!(g.is_symmetric());
        assert!(gve_graph::traversal::is_connected(&g));
    }

    #[test]
    fn labels_partition_cliques() {
        let labels = ring_labels(4, 3);
        assert_eq!(labels, vec![0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3]);
    }

    #[test]
    #[should_panic(expected = "at least 3 cliques")]
    fn rejects_short_rings() {
        ring_of_cliques(2, 4);
    }
}
