//! R-MAT recursive matrix graph generator (Chakrabarti, Zhan, Faloutsos).
//!
//! Each edge picks a quadrant of the adjacency matrix with probabilities
//! `(a, b, c, d)` recursively `scale` times, producing power-law degree
//! distributions. Skewed parameter sets mimic web crawls; flatter ones
//! mimic social networks. Generation is parallel and reproducible: edge
//! `i` derives its own RNG stream from the seed.

use crate::stream_seed;
use gve_graph::{CsrGraph, GraphBuilder, VertexId};
use gve_prim::Xorshift32;
use rayon::prelude::*;

/// R-MAT generator configuration.
#[derive(Debug, Clone)]
pub struct Rmat {
    scale: u32,
    edge_factor: f64,
    a: f64,
    b: f64,
    c: f64,
    seed: u64,
    noise: f64,
}

impl Rmat {
    /// Creates a generator for `2^scale` vertices with `edge_factor`
    /// undirected edges per vertex and explicit quadrant probabilities
    /// (`d = 1 - a - b - c`).
    ///
    /// # Panics
    /// Panics when the probabilities are out of range.
    pub fn new(scale: u32, edge_factor: f64, a: f64, b: f64, c: f64) -> Self {
        assert!(a >= 0.0 && b >= 0.0 && c >= 0.0, "negative probability");
        assert!(a + b + c <= 1.0 + 1e-9, "probabilities exceed 1");
        assert!(scale < 31, "scale too large for u32 vertex ids");
        Self {
            scale,
            edge_factor,
            a,
            b,
            c,
            seed: 0,
            noise: 0.1,
        }
    }

    /// Web-crawl-like preset: strongly skewed quadrants (Graph500 uses
    /// a = 0.57, b = c = 0.19), giving hub-dominated power laws and
    /// pronounced community structure.
    pub fn web(scale: u32, edge_factor: f64) -> Self {
        Self::new(scale, edge_factor, 0.57, 0.19, 0.19)
    }

    /// Social-network-like preset: milder skew (a = 0.45,
    /// b = c = 0.22), yielding heavier cross-links and weaker
    /// communities — the paper's social graphs are its least clusterable.
    pub fn social(scale: u32, edge_factor: f64) -> Self {
        Self::new(scale, edge_factor, 0.45, 0.22, 0.22)
    }

    /// Sets the RNG seed (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the per-level probability noise that breaks the exact
    /// self-similarity of pure R-MAT (default 0.1).
    pub fn noise(mut self, noise: f64) -> Self {
        assert!((0.0..=1.0).contains(&noise));
        self.noise = noise;
        self
    }

    /// Number of vertices the generated graph will have.
    pub fn num_vertices(&self) -> usize {
        1usize << self.scale
    }

    fn sample_edge(&self, rng: &mut Xorshift32) -> (VertexId, VertexId) {
        let mut u = 0u32;
        let mut v = 0u32;
        for _ in 0..self.scale {
            // Jitter quadrant probabilities a little per level.
            let jitter = |p: f64, r: &mut Xorshift32| {
                p * (1.0 - self.noise + 2.0 * self.noise * r.next_f64())
            };
            let a = jitter(self.a, rng);
            let b = jitter(self.b, rng);
            let c = jitter(self.c, rng);
            let d = jitter(1.0 - self.a - self.b - self.c, rng);
            let total = a + b + c + d;
            let roll = rng.next_f64() * total;
            let (bit_u, bit_v) = if roll < a {
                (0, 0)
            } else if roll < a + b {
                (0, 1)
            } else if roll < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            u = (u << 1) | bit_u;
            v = (v << 1) | bit_v;
        }
        (u, v)
    }

    /// Generates the graph: duplicate arcs merged, reverse arcs added,
    /// self-loops dropped (as the paper's preprocessing does for crawls).
    pub fn generate(&self) -> CsrGraph {
        let n = self.num_vertices();
        let m = (n as f64 * self.edge_factor) as usize;
        let edges: Vec<(VertexId, VertexId, f32)> = (0..m as u64)
            .into_par_iter()
            .map(|i| {
                let mut rng = Xorshift32::new(stream_seed(self.seed, i));
                let (u, v) = self.sample_edge(&mut rng);
                (u, v, 1.0)
            })
            .collect();
        let mut builder = GraphBuilder::new().with_vertices(n).drop_self_loops(true);
        builder.extend(edges);
        builder.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_shape() {
        let g = Rmat::web(10, 8.0).seed(1).generate();
        assert_eq!(g.num_vertices(), 1024);
        assert!(g.num_arcs() > 0);
        assert!(g.is_symmetric());
        // Dedup may shrink below 2 * n * ef, but not to nothing.
        assert!(g.num_arcs() > 1024);
    }

    #[test]
    fn deterministic_for_seed() {
        let a = Rmat::social(8, 4.0).seed(7).generate();
        let b = Rmat::social(8, 4.0).seed(7).generate();
        assert_eq!(a, b);
        let c = Rmat::social(8, 4.0).seed(8).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn no_self_loops() {
        let g = Rmat::web(8, 8.0).seed(3).generate();
        for u in 0..g.num_vertices() as u32 {
            assert!(!g.neighbors(u).contains(&u));
        }
    }

    #[test]
    fn web_preset_is_skewed() {
        // Hub-dominated: the max degree should far exceed the average.
        let g = Rmat::web(12, 8.0).seed(5).generate();
        let s = gve_graph::props::stats(&g);
        assert!(
            s.max_degree as f64 > 8.0 * s.avg_degree,
            "max {} avg {}",
            s.max_degree,
            s.avg_degree
        );
    }

    #[test]
    #[should_panic(expected = "probabilities exceed 1")]
    fn rejects_bad_probabilities() {
        Rmat::new(4, 2.0, 0.6, 0.3, 0.3);
    }
}
