//! Planted-partition stochastic block model with ground truth.
//!
//! Vertices are split into `k` equal blocks; `m_in` edges are sampled
//! uniformly inside blocks and `m_out` uniformly across blocks. With
//! `m_in ≫ m_out` the planted blocks are the dominant community
//! structure, which lets tests assert that a community detector actually
//! recovers known structure (NMI/ARI against [`PlantedResult::labels`])
//! rather than just optimizing a score.

use crate::stream_seed;
use gve_graph::{CsrGraph, GraphBuilder, VertexId};
use gve_prim::Xorshift32;
use rayon::prelude::*;

/// Planted-partition generator configuration.
#[derive(Debug, Clone)]
pub struct PlantedPartition {
    vertices: usize,
    communities: usize,
    intra_degree: f64,
    inter_degree: f64,
    seed: u64,
}

/// A generated graph together with its planted community labels.
#[derive(Debug, Clone)]
pub struct PlantedResult {
    /// The generated graph.
    pub graph: CsrGraph,
    /// Planted block id of each vertex.
    pub labels: Vec<VertexId>,
    /// Number of planted blocks.
    pub communities: usize,
}

impl PlantedPartition {
    /// Creates a model of `vertices` vertices in `communities` equal
    /// blocks, with expected intra-block degree `intra_degree` and
    /// expected inter-block degree `inter_degree` per vertex.
    ///
    /// # Panics
    /// Panics when `communities` is zero or exceeds `vertices`.
    pub fn new(vertices: usize, communities: usize, intra_degree: f64, inter_degree: f64) -> Self {
        assert!(communities > 0, "need at least one community");
        assert!(communities <= vertices, "more communities than vertices");
        assert!(intra_degree >= 0.0 && inter_degree >= 0.0);
        Self {
            vertices,
            communities,
            intra_degree,
            inter_degree,
            seed: 0,
        }
    }

    /// Sets the RNG seed (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Planted label of vertex `v` under the equal-block layout.
    #[inline]
    fn label_of(&self, v: usize) -> VertexId {
        // Blocks are contiguous ranges; the last block absorbs the
        // remainder.
        let base = self.vertices / self.communities;
        ((v / base.max(1)).min(self.communities - 1)) as VertexId
    }

    /// Vertex range of block `c`.
    fn block_range(&self, c: usize) -> std::ops::Range<usize> {
        let base = self.vertices / self.communities;
        let lo = c * base;
        let hi = if c + 1 == self.communities {
            self.vertices
        } else {
            (c + 1) * base
        };
        lo..hi
    }

    /// Generates the graph and its ground-truth labels.
    pub fn generate(&self) -> PlantedResult {
        let n = self.vertices;
        let m_in = (n as f64 * self.intra_degree / 2.0) as usize;
        let m_out = (n as f64 * self.inter_degree / 2.0) as usize;

        // Intra-block edges: pick a block proportional to its size, then
        // two endpoints inside it.
        let intra: Vec<(VertexId, VertexId, f32)> = (0..m_in as u64)
            .into_par_iter()
            .filter_map(|i| {
                let mut rng = Xorshift32::new(stream_seed(self.seed, i));
                let v = rng.next_bounded(n as u32) as usize;
                let block = self.block_range(self.label_of(v) as usize);
                let len = (block.end - block.start) as u32;
                if len < 2 {
                    return None;
                }
                let a = block.start as u32 + rng.next_bounded(len);
                let b = block.start as u32 + rng.next_bounded(len);
                (a != b).then_some((a, b, 1.0))
            })
            .collect();

        // Inter-block edges: uniform endpoints in different blocks.
        let inter: Vec<(VertexId, VertexId, f32)> = (0..m_out as u64)
            .into_par_iter()
            .filter_map(|i| {
                let mut rng = Xorshift32::new(stream_seed(self.seed ^ 0xA5A5_A5A5, i));
                let a = rng.next_bounded(n as u32);
                let b = rng.next_bounded(n as u32);
                (self.label_of(a as usize) != self.label_of(b as usize)).then_some((a, b, 1.0))
            })
            .collect();

        let mut builder = GraphBuilder::new().with_vertices(n);
        builder.extend(intra);
        builder.extend(inter);
        let graph = builder.build();
        let labels = (0..n).map(|v| self.label_of(v)).collect();
        PlantedResult {
            graph,
            labels,
            communities: self.communities,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_determinism() {
        let r = PlantedPartition::new(1000, 10, 8.0, 1.0).seed(3).generate();
        assert_eq!(r.graph.num_vertices(), 1000);
        assert_eq!(r.labels.len(), 1000);
        assert_eq!(r.communities, 10);
        assert!(r.graph.is_symmetric());
        let r2 = PlantedPartition::new(1000, 10, 8.0, 1.0).seed(3).generate();
        assert_eq!(r.graph, r2.graph);
    }

    #[test]
    fn labels_are_contiguous_blocks() {
        let r = PlantedPartition::new(103, 10, 4.0, 0.5).generate();
        // Non-divisible: last block absorbs the remainder.
        assert_eq!(r.labels[0], 0);
        assert_eq!(r.labels[9], 0);
        assert_eq!(r.labels[10], 1);
        assert_eq!(*r.labels.last().unwrap(), 9);
        for w in r.labels.windows(2) {
            assert!(w[1] == w[0] || w[1] == w[0] + 1);
        }
    }

    #[test]
    fn intra_edges_dominate() {
        let r = PlantedPartition::new(2000, 20, 10.0, 1.0)
            .seed(9)
            .generate();
        let mut intra = 0usize;
        let mut inter = 0usize;
        for (u, v, _) in r.graph.arcs() {
            if r.labels[u as usize] == r.labels[v as usize] {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(
            intra > 5 * inter,
            "intra {intra} should dominate inter {inter}"
        );
    }

    #[test]
    fn single_community_has_no_inter_edges() {
        let r = PlantedPartition::new(100, 1, 4.0, 2.0).generate();
        for (u, v, _) in r.graph.arcs() {
            assert_eq!(r.labels[u as usize], r.labels[v as usize]);
        }
    }

    #[test]
    #[should_panic(expected = "more communities than vertices")]
    fn rejects_too_many_communities() {
        PlantedPartition::new(5, 10, 1.0, 1.0);
    }
}
