//! The named dataset suite mirroring Table 2 of the paper.
//!
//! Thirteen graphs in the paper's four classes, at laptop scale. Each
//! entry keeps the original's *class* and *average degree* (the two
//! properties the paper's analysis attributes behaviour differences to —
//! see Figures 7 and 8) while shrinking vertex counts by ~3 orders of
//! magnitude. The `scale` multiplier grows or shrinks the whole suite
//! proportionally.

use crate::{grid::road_grid, kmer::kmer_chains, sbm::PlantedPartition};
use gve_graph::CsrGraph;

/// The four graph classes of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphClass {
    /// Web crawls (LAW): high degree, skewed, strong communities.
    Web,
    /// Social networks (SNAP): heavy-tailed, poor community structure.
    Social,
    /// Road networks (DIMACS10): planar-ish, degree ≈ 2.
    Road,
    /// Protein k-mer graphs (GenBank): chain-like, degree ≈ 2.
    Kmer,
}

impl GraphClass {
    /// Human-readable section title used in reports.
    pub fn title(self) -> &'static str {
        match self {
            GraphClass::Web => "Web Graphs (LAW)",
            GraphClass::Social => "Social Networks (SNAP)",
            GraphClass::Road => "Road Networks (DIMACS10)",
            GraphClass::Kmer => "Protein k-mer Graphs (GenBank)",
        }
    }
}

/// A named synthetic dataset standing in for one Table 2 graph.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Short name, prefixed by the paper graph it mirrors.
    pub name: &'static str,
    /// Structural class.
    pub class: GraphClass,
    /// Vertex count at `scale = 1.0` (approximate for R-MAT classes,
    /// which round to powers of two).
    pub base_vertices: usize,
    /// Target average degree (arcs per vertex), from Table 2.
    pub avg_degree: f64,
}

impl Dataset {
    /// Approximate vertex count at the given scale multiplier.
    pub fn vertices(&self, scale: f64) -> usize {
        ((self.base_vertices as f64 * scale) as usize).max(64)
    }

    /// Generates the graph at the given scale with a deterministic seed
    /// derived from the dataset name.
    pub fn generate(&self, scale: f64, seed: u64) -> CsrGraph {
        let n = self.vertices(scale);
        let seed = seed
            ^ self
                .name
                .bytes()
                .fold(0u64, |h, b| h.wrapping_mul(131).wrapping_add(b as u64));
        match self.class {
            // Web crawls are highly clusterable (Q ≈ 0.98 in Fig. 6(c))
            // with thousands of communities (Table 2): strong planted
            // structure, many blocks.
            GraphClass::Web => {
                let communities = (n / 256).max(4);
                PlantedPartition::new(
                    n,
                    communities,
                    self.avg_degree * 0.85,
                    self.avg_degree * 0.15,
                )
                .seed(seed)
                .generate()
                .graph
            }
            // Social networks have the paper's weakest community
            // structure (Fig. 6(c): Q ≈ 0.67–0.75, vs ≈ 0.98 for web;
            // com-Orkut finds only 36 communities): fewer blocks, much
            // heavier mixing than the web class.
            GraphClass::Social => {
                let communities = (n / 512).max(16);
                PlantedPartition::new(n, communities, self.avg_degree * 0.7, self.avg_degree * 0.3)
                    .seed(seed)
                    .generate()
                    .graph
            }
            GraphClass::Road => {
                let width = (n as f64).sqrt().ceil() as usize;
                let height = n.div_ceil(width);
                road_grid(width, height, self.avg_degree, seed)
            }
            GraphClass::Kmer => kmer_chains(n, 16, 0.05, seed),
        }
    }
}

/// The full 13-graph suite in Table 2 order.
pub fn suite() -> Vec<Dataset> {
    vec![
        Dataset {
            name: "web-indochina",
            class: GraphClass::Web,
            base_vertices: 12_000,
            avg_degree: 41.0,
        },
        Dataset {
            name: "web-uk-2002",
            class: GraphClass::Web,
            base_vertices: 24_000,
            avg_degree: 16.1,
        },
        Dataset {
            name: "web-arabic",
            class: GraphClass::Web,
            base_vertices: 28_000,
            avg_degree: 28.2,
        },
        Dataset {
            name: "web-uk-2005",
            class: GraphClass::Web,
            base_vertices: 40_000,
            avg_degree: 23.7,
        },
        Dataset {
            name: "web-webbase",
            class: GraphClass::Web,
            base_vertices: 64_000,
            avg_degree: 8.6,
        },
        Dataset {
            name: "web-it-2004",
            class: GraphClass::Web,
            base_vertices: 44_000,
            avg_degree: 27.9,
        },
        Dataset {
            name: "web-sk-2005",
            class: GraphClass::Web,
            base_vertices: 52_000,
            avg_degree: 38.5,
        },
        Dataset {
            name: "soc-livejournal",
            class: GraphClass::Social,
            base_vertices: 16_000,
            avg_degree: 17.4,
        },
        Dataset {
            name: "soc-orkut",
            class: GraphClass::Social,
            base_vertices: 8_000,
            avg_degree: 76.2,
        },
        Dataset {
            name: "road-asia",
            class: GraphClass::Road,
            base_vertices: 48_000,
            avg_degree: 2.1,
        },
        Dataset {
            name: "road-europe",
            class: GraphClass::Road,
            base_vertices: 100_000,
            avg_degree: 2.1,
        },
        Dataset {
            name: "kmer-a2a",
            class: GraphClass::Kmer,
            base_vertices: 120_000,
            avg_degree: 2.1,
        },
        Dataset {
            name: "kmer-v1r",
            class: GraphClass::Kmer,
            base_vertices: 150_000,
            avg_degree: 2.2,
        },
    ]
}

/// A four-graph subset — one per class — for quick experiments and
/// integration tests.
pub fn quick_suite() -> Vec<Dataset> {
    suite()
        .into_iter()
        .filter(|d| {
            matches!(
                d.name,
                "web-indochina" | "soc-livejournal" | "road-asia" | "kmer-a2a"
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_thirteen_named_entries() {
        let s = suite();
        assert_eq!(s.len(), 13);
        let mut names: Vec<_> = s.iter().map(|d| d.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 13, "duplicate dataset names");
    }

    #[test]
    fn quick_suite_covers_all_classes() {
        let q = quick_suite();
        assert_eq!(q.len(), 4);
        let classes: std::collections::HashSet<_> = q.iter().map(|d| d.class).collect();
        assert_eq!(classes.len(), 4);
    }

    #[test]
    fn generated_degree_tracks_table2() {
        for d in quick_suite() {
            let g = d.generate(0.25, 1);
            let s = gve_graph::props::stats(&g);
            assert!(s.vertices > 0, "{}", d.name);
            // R-MAT dedup and lattice pruning lose some edges; allow a
            // generous band around the Table 2 target.
            let ratio = s.avg_degree / d.avg_degree;
            assert!(
                (0.4..=1.5).contains(&ratio),
                "{}: avg degree {} vs target {}",
                d.name,
                s.avg_degree,
                d.avg_degree
            );
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let d = &suite()[0];
        assert_eq!(d.generate(0.1, 5), d.generate(0.1, 5));
        assert_ne!(d.generate(0.1, 5), d.generate(0.1, 6));
    }

    #[test]
    fn scale_shrinks_vertices() {
        let d = &suite()[10];
        assert!(d.vertices(0.1) < d.vertices(1.0));
        assert_eq!(d.vertices(0.0), 64, "floor applies");
    }
}
