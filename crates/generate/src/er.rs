//! Erdős–Rényi `G(n, m)` random graphs.
//!
//! Structureless noise graphs: no planted communities, Poisson degrees.
//! Used as the "no community structure" control in tests — modularity
//! optimizers should return low scores here, and any detector claiming
//! strong communities on ER noise is broken.

use crate::stream_seed;
use gve_graph::{CsrGraph, GraphBuilder, VertexId};
use gve_prim::Xorshift32;
use rayon::prelude::*;

/// Generates an undirected `G(n, m)` graph: `m` edges with endpoints
/// drawn uniformly (self-loops rejected, duplicates merged).
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> CsrGraph {
    assert!(n >= 2 || m == 0, "need at least two vertices for edges");
    let edges: Vec<(VertexId, VertexId, f32)> = (0..m as u64)
        .into_par_iter()
        .map(|i| {
            let mut rng = Xorshift32::new(stream_seed(seed, i));
            let u = rng.next_bounded(n as u32);
            let mut v = rng.next_bounded(n as u32);
            while v == u {
                v = rng.next_bounded(n as u32);
            }
            (u, v, 1.0)
        })
        .collect();
    let mut builder = GraphBuilder::new().with_vertices(n);
    builder.extend(edges);
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape() {
        let g = erdos_renyi(500, 2000, 1);
        assert_eq!(g.num_vertices(), 500);
        assert!(g.is_symmetric());
        // Duplicates merge, so arcs ≤ 2m; collisions are rare at this
        // density so we retain most edges.
        assert!(g.num_arcs() <= 4000);
        assert!(g.num_arcs() > 3800);
    }

    #[test]
    fn deterministic() {
        assert_eq!(erdos_renyi(100, 300, 7), erdos_renyi(100, 300, 7));
        assert_ne!(erdos_renyi(100, 300, 7), erdos_renyi(100, 300, 8));
    }

    #[test]
    fn no_self_loops() {
        let g = erdos_renyi(50, 500, 3);
        for u in 0..50u32 {
            assert!(!g.neighbors(u).contains(&u));
        }
    }

    #[test]
    fn zero_edges() {
        let g = erdos_renyi(10, 0, 0);
        assert_eq!(g.num_arcs(), 0);
    }
}
