//! Minimal command-line argument parsing shared by the fig/table
//! binaries. Hand-rolled to keep the dependency set to the approved
//! list.

/// Common experiment options.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Dataset scale multiplier (1.0 = the suite's base sizes).
    pub scale: f64,
    /// Timing repetitions to average over (the paper uses 5).
    pub reps: usize,
    /// Base RNG seed for dataset generation.
    pub seed: u64,
    /// Optional CSV output path.
    pub csv: Option<String>,
    /// Optional JSON output path (machine-readable results).
    pub json: Option<String>,
    /// Optional rayon thread count override (builds the global pool).
    pub threads: Option<usize>,
    /// Run only the quick four-graph suite instead of all 13.
    pub quick: bool,
    /// Fail the run if any variant's steady-state (post-warm-up) run
    /// performs more than this many heap allocations. Only meaningful
    /// in binaries that install the counting global allocator (the
    /// `kernels` runner); the CI bench-smoke job uses it as the
    /// zero-steady-state-allocation regression gate.
    pub assert_steady_allocs: Option<u64>,
    /// Fail the `kernels` run unless, on every suite graph, the best v3
    /// variant is strictly faster than the v1 reference — the kernel-v3
    /// performance gate enforced by CI bench-smoke.
    pub assert_v3_beats_v1: bool,
    /// Noise allowance for the v3 gate: the gate passes a graph when
    /// `best_v3 < v1 * tolerance`. Defaults to 1.0 (strictly faster);
    /// CI runs on shared runners where min-of-reps wall times still
    /// jitter a few percent, so its jobs pass a small margin (1.02)
    /// rather than letting a scheduler hiccup block unrelated merges.
    pub v3_tolerance: f64,
}

impl Default for BenchArgs {
    fn default() -> Self {
        Self {
            scale: 1.0,
            reps: 1,
            seed: 42,
            csv: None,
            json: None,
            threads: None,
            quick: false,
            assert_steady_allocs: None,
            assert_v3_beats_v1: false,
            v3_tolerance: 1.0,
        }
    }
}

impl BenchArgs {
    /// Parses `std::env::args()`, panicking with a usage message on
    /// malformed input.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses an explicit token stream (testable entry point).
    pub fn parse_from(tokens: impl IntoIterator<Item = String>) -> Self {
        let mut args = Self::default();
        let mut it = tokens.into_iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .unwrap_or_else(|| panic!("missing value for {name}"))
            };
            match flag.as_str() {
                "--scale" => args.scale = value("--scale").parse().expect("bad --scale"),
                "--reps" => args.reps = value("--reps").parse().expect("bad --reps"),
                "--seed" => args.seed = value("--seed").parse().expect("bad --seed"),
                "--csv" => args.csv = Some(value("--csv")),
                "--json" => args.json = Some(value("--json")),
                "--threads" => {
                    args.threads = Some(value("--threads").parse().expect("bad --threads"))
                }
                "--quick" => args.quick = true,
                "--assert-v3-beats-v1" => args.assert_v3_beats_v1 = true,
                "--v3-tolerance" => {
                    args.v3_tolerance = value("--v3-tolerance").parse().expect("bad --v3-tolerance")
                }
                "--assert-steady-allocs" => {
                    args.assert_steady_allocs = Some(
                        value("--assert-steady-allocs")
                            .parse()
                            .expect("bad --assert-steady-allocs"),
                    )
                }
                "--help" | "-h" => {
                    eprintln!(
                        "options: --scale <f64> --reps <n> --seed <n> --csv <path> --json <path> \
                         --threads <n> --quick --assert-steady-allocs <n> \
                         --assert-v3-beats-v1 --v3-tolerance <f64>"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other}"),
            }
        }
        assert!(args.reps >= 1, "--reps must be at least 1");
        assert!(args.scale > 0.0, "--scale must be positive");
        assert!(
            args.v3_tolerance >= 1.0,
            "--v3-tolerance must be at least 1.0"
        );
        args
    }

    /// Applies the `--threads` override to the global rayon pool. Call
    /// once, before any parallel work.
    pub fn install_threads(&self) {
        if let Some(t) = self.threads {
            rayon::ThreadPoolBuilder::new()
                .num_threads(t)
                .build_global()
                .expect("global rayon pool already initialized");
        }
    }

    /// The dataset suite selected by `--quick`.
    pub fn suite(&self) -> Vec<gve_generate::Dataset> {
        if self.quick {
            gve_generate::suite::quick_suite()
        } else {
            gve_generate::suite()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> BenchArgs {
        BenchArgs::parse_from(tokens.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]);
        assert_eq!(a.scale, 1.0);
        assert_eq!(a.reps, 1);
        assert_eq!(a.seed, 42);
        assert!(a.csv.is_none());
        assert!(!a.quick);
    }

    #[test]
    fn full_flag_set() {
        let a = parse(&[
            "--scale",
            "0.5",
            "--reps",
            "3",
            "--seed",
            "7",
            "--csv",
            "/tmp/x.csv",
            "--json",
            "/tmp/x.json",
            "--threads",
            "4",
            "--quick",
        ]);
        assert_eq!(a.scale, 0.5);
        assert_eq!(a.reps, 3);
        assert_eq!(a.seed, 7);
        assert_eq!(a.csv.as_deref(), Some("/tmp/x.csv"));
        assert_eq!(a.json.as_deref(), Some("/tmp/x.json"));
        assert_eq!(a.threads, Some(4));
        assert!(a.quick);
    }

    #[test]
    fn steady_alloc_gate_flag() {
        assert_eq!(parse(&[]).assert_steady_allocs, None);
        let a = parse(&["--assert-steady-allocs", "64"]);
        assert_eq!(a.assert_steady_allocs, Some(64));
    }

    #[test]
    fn v3_gate_flag() {
        assert!(!parse(&[]).assert_v3_beats_v1);
        assert!(parse(&["--assert-v3-beats-v1"]).assert_v3_beats_v1);
    }

    #[test]
    fn v3_tolerance_flag() {
        assert_eq!(parse(&[]).v3_tolerance, 1.0);
        let a = parse(&["--v3-tolerance", "1.02"]);
        assert_eq!(a.v3_tolerance, 1.02);
    }

    #[test]
    #[should_panic(expected = "--v3-tolerance must be at least 1.0")]
    fn v3_tolerance_below_one_rejected() {
        parse(&["--v3-tolerance", "0.9"]);
    }

    #[test]
    #[should_panic(expected = "bad --assert-steady-allocs")]
    fn steady_alloc_gate_rejects_garbage() {
        parse(&["--assert-steady-allocs", "lots"]);
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn rejects_unknown() {
        parse(&["--bogus"]);
    }

    #[test]
    #[should_panic(expected = "missing value")]
    fn rejects_missing_value() {
        parse(&["--scale"]);
    }

    #[test]
    fn suite_selection() {
        assert_eq!(parse(&[]).suite().len(), 13);
        assert_eq!(parse(&["--quick"]).suite().len(), 4);
    }
}
