//! Figure 9: strong scaling of GVE-Leiden and its phases.
//!
//! Varies the thread count in powers of two and reports the overall
//! speedup over one thread plus the per-phase speedups. The paper sees
//! ≈1.6× per thread doubling up to 32 threads, with NUMA effects
//! flattening the curve at 64.
//!
//! ```text
//! cargo run --release -p gve-bench --bin fig9_scaling -- --quick
//! ```

use gve_bench::{report::Table, BenchArgs};
use gve_leiden::PhaseTimings;
use std::time::Instant;

fn thread_counts() -> Vec<usize> {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    // Sweep at least to 4 threads so the multi-threaded code paths are
    // exercised even on small hosts; beyond the hardware count the
    // numbers measure oversubscription, not scaling (flagged below).
    let max = hw.max(4);
    let mut counts = Vec::new();
    let mut t = 1;
    while t <= max {
        counts.push(t);
        t *= 2;
    }
    if *counts.last().unwrap() != max {
        counts.push(max);
    }
    if hw < max {
        eprintln!(
            "note: host exposes only {hw} hardware thread(s); rows beyond {hw} threads \
             measure oversubscription overhead, not strong scaling"
        );
    }
    counts
}

fn main() {
    let args = BenchArgs::parse();
    // NOTE: --threads is ignored here; this binary sweeps thread counts.
    let counts = thread_counts();

    let mut table = Table::new(
        "Figure 9: strong scaling of GVE-Leiden (speedup over 1 thread)",
        &[
            "Graph",
            "Threads",
            "Time",
            "Overall",
            "Local-move",
            "Refine",
            "Aggregate",
        ],
    );
    // Average speedup per doubling, across graphs.
    let mut doubling_factors: Vec<f64> = Vec::new();

    for dataset in args.suite() {
        let graph = dataset.generate(args.scale, args.seed);
        let mut baseline: Option<(f64, PhaseTimings)> = None;
        let mut prev_time: Option<f64> = None;
        for &threads in &counts {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("failed to build thread pool");
            let mut total = 0.0;
            let mut timings = PhaseTimings::default();
            for _ in 0..args.reps {
                let start = Instant::now();
                let result = pool.install(|| gve_leiden::leiden(&graph));
                total += start.elapsed().as_secs_f64();
                timings.accumulate(&result.timings);
            }
            let seconds = total / args.reps as f64;
            let (base_time, base_timings) =
                baseline.get_or_insert_with(|| (seconds, timings.clone()));
            let phase_speedup = |sel: fn(&PhaseTimings) -> f64| -> String {
                let base = sel(base_timings);
                let now = sel(&timings);
                if now > 0.0 && base > 0.0 {
                    format!("{:.2}x", base / now)
                } else {
                    "-".to_string()
                }
            };
            table.push(vec![
                dataset.name.to_string(),
                threads.to_string(),
                gve_bench::report::fmt_secs(seconds),
                format!("{:.2}x", *base_time / seconds),
                phase_speedup(|t| t.local_move.as_secs_f64()),
                phase_speedup(|t| t.refinement.as_secs_f64()),
                phase_speedup(|t| t.aggregation.as_secs_f64()),
            ]);
            if let Some(prev) = prev_time {
                if threads > 1 {
                    doubling_factors.push(prev / seconds);
                }
            }
            prev_time = Some(seconds);
        }
    }
    table.print();

    if !doubling_factors.is_empty() {
        let geo = (doubling_factors.iter().map(|f| f.ln()).sum::<f64>()
            / doubling_factors.len() as f64)
            .exp();
        println!("Average speedup per thread doubling: {geo:.2}x (paper: ~1.6x up to 32 threads)");
    }

    if let Some(csv) = &args.csv {
        table.write_csv(csv).expect("failed to write CSV");
    }
}
