//! Figure 6(a–d) and Table 1: the implementation comparison matrix.
//!
//! Runs every implementation on every suite graph and reports
//! (a) runtime, (b) GVE-Leiden's speedup over each comparator,
//! (c) modularity, and (d) the fraction of internally-disconnected
//! communities. Finishes with the Table 1 summary of average speedups.
//!
//! cuGraph Leiden (GPU) has no CPU stand-in and is omitted — see the
//! substitution table in DESIGN.md.
//!
//! ```text
//! cargo run --release -p gve-bench --bin fig6_compare -- --reps 3
//! ```

use gve_bench::{implementations, measure, report, report::Table, BarChart, BenchArgs};
use gve_serve::json::Json;

fn main() {
    let args = BenchArgs::parse();
    args.install_threads();
    let imps = implementations();
    let gve_index = imps.len() - 1; // gve-leiden is last

    let mut fig6 = Table::new(
        "Figure 6(a-d): runtime / speedup vs gve-leiden / modularity / disconnected fraction",
        &[
            "Graph",
            "Implementation",
            "Time",
            "Speedup",
            "Modularity",
            "Disconnected",
        ],
    );
    // Per-implementation geometric-mean speedup accumulators (Table 1).
    let mut log_speedup_sum = vec![0.0f64; imps.len()];
    let mut modularity_sum = vec![0.0f64; imps.len()];
    let mut disconnected_sum = vec![0.0f64; imps.len()];
    let mut graphs = 0usize;

    let mut charts = Vec::new();
    let mut json_rows: Vec<Json> = Vec::new();
    for dataset in args.suite() {
        let graph = dataset.generate(args.scale, args.seed);
        let measured: Vec<_> = imps
            .iter()
            .map(|imp| measure(&graph, imp, args.reps))
            .collect();
        let gve_time = measured[gve_index].seconds;
        graphs += 1;
        let mut chart =
            BarChart::new(format!("runtime on {} (s, log scale)", dataset.name)).log_scale();
        for m in &measured {
            chart.push(m.name, m.seconds);
        }
        charts.push(chart);
        for (i, m) in measured.iter().enumerate() {
            let speedup = m.seconds / gve_time;
            log_speedup_sum[i] += speedup.ln();
            modularity_sum[i] += m.modularity;
            disconnected_sum[i] += m.disconnected_fraction;
            json_rows.push(Json::obj([
                ("graph", Json::from(dataset.name)),
                ("vertices", Json::from(graph.num_vertices())),
                ("arcs", Json::from(graph.num_arcs())),
                ("implementation", Json::from(m.name)),
                ("seconds", Json::from(m.seconds)),
                ("speedup_vs_gve", Json::from(speedup)),
                ("modularity", Json::from(m.modularity)),
                ("disconnected_fraction", Json::from(m.disconnected_fraction)),
            ]));
            fig6.push(vec![
                dataset.name.to_string(),
                m.name.to_string(),
                report::fmt_secs(m.seconds),
                report::fmt_speedup(speedup),
                format!("{:.4}", m.modularity),
                if m.disconnected_fraction == 0.0 {
                    "-".to_string()
                } else {
                    format!("{:.2e}", m.disconnected_fraction)
                },
            ]);
        }
    }
    fig6.print();
    println!("Figure 6(a) as bars:");
    for chart in &charts {
        print!("{}", chart.render(48));
    }
    println!();

    let mut table1 = Table::new(
        "Table 1: average speedup of gve-leiden vs each implementation (geometric mean)",
        &[
            "Implementation",
            "Parallelism",
            "GVE-Leiden speedup",
            "Avg modularity",
            "Avg disconnected",
        ],
    );
    for (i, imp) in imps.iter().enumerate() {
        table1.push(vec![
            imp.name.to_string(),
            if imp.parallel {
                "Parallel"
            } else {
                "Sequential"
            }
            .to_string(),
            report::fmt_speedup((log_speedup_sum[i] / graphs as f64).exp()),
            format!("{:.4}", modularity_sum[i] / graphs as f64),
            format!("{:.2e}", disconnected_sum[i] / graphs as f64),
        ]);
    }
    table1.print();

    if let Some(csv) = &args.csv {
        fig6.write_csv(csv).expect("failed to write CSV");
        table1.write_csv(csv).expect("failed to write CSV");
    }

    if let Some(json_path) = &args.json {
        let doc = Json::obj([
            ("figure", Json::from("fig6_compare")),
            ("scale", Json::from(args.scale)),
            ("reps", Json::from(args.reps)),
            ("seed", Json::from(args.seed)),
            ("results", Json::Arr(json_rows)),
        ]);
        std::fs::write(json_path, doc.render()).expect("failed to write JSON");
        eprintln!("wrote {json_path}");
    }
}
