//! Figure 7: phase split (left) and pass split (right) of GVE-Leiden.
//!
//! The paper finds local-moving dominates on web/road/k-mer graphs,
//! aggregation dominates on social networks, and the first pass consumes
//! ~63% of the total on average.
//!
//! ```text
//! cargo run --release -p gve-bench --bin fig7_splits
//! ```

use gve_bench::{chart::stacked_bar, report::Table, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    args.install_threads();

    let mut phase = Table::new(
        "Figure 7(a): phase split of GVE-Leiden runtime",
        &[
            "Graph",
            "Local-move %",
            "Refine %",
            "Aggregate %",
            "Others %",
        ],
    );
    let mut pass = Table::new(
        "Figure 7(b): pass split of GVE-Leiden runtime",
        &["Graph", "Passes", "Pass 1 %", "Pass 2 %", "Rest %"],
    );
    let mut avg = [0.0f64; 4];
    let mut first_pass_sum = 0.0f64;
    let mut graphs = 0usize;

    for dataset in args.suite() {
        let graph = dataset.generate(args.scale, args.seed);
        // Average the splits over the repetitions.
        let mut fractions = [0.0f64; 4];
        let mut pass_fracs = [0.0f64; 3];
        let mut passes = 0usize;
        for _ in 0..args.reps {
            let result = gve_leiden::leiden(&graph);
            let (l, r, a, o) = result.timings.fractions();
            fractions[0] += l;
            fractions[1] += r;
            fractions[2] += a;
            fractions[3] += o;
            passes = result.passes;
            let total: f64 = result
                .pass_stats
                .iter()
                .map(|p| p.duration.as_secs_f64())
                .sum();
            if total > 0.0 {
                let p1 = result
                    .pass_stats
                    .first()
                    .map(|p| p.duration.as_secs_f64())
                    .unwrap_or(0.0);
                let p2 = result
                    .pass_stats
                    .get(1)
                    .map(|p| p.duration.as_secs_f64())
                    .unwrap_or(0.0);
                pass_fracs[0] += p1 / total;
                pass_fracs[1] += p2 / total;
                pass_fracs[2] += (total - p1 - p2) / total;
            }
        }
        let reps = args.reps as f64;
        graphs += 1;
        for (slot, value) in avg.iter_mut().zip(fractions) {
            *slot += value / reps;
        }
        first_pass_sum += pass_fracs[0] / reps;
        phase.push(vec![
            dataset.name.to_string(),
            format!("{:.1}", 100.0 * fractions[0] / reps),
            format!("{:.1}", 100.0 * fractions[1] / reps),
            format!("{:.1}", 100.0 * fractions[2] / reps),
            format!("{:.1}", 100.0 * fractions[3] / reps),
        ]);
        pass.push(vec![
            dataset.name.to_string(),
            passes.to_string(),
            format!("{:.1}", 100.0 * pass_fracs[0] / reps),
            format!("{:.1}", 100.0 * pass_fracs[1] / reps),
            format!("{:.1}", 100.0 * pass_fracs[2] / reps),
        ]);
    }
    phase.print();
    println!(
        "Figure 7(a) as stacked bars (L = local-move, R = refine, A = aggregate, o = others):"
    );
    for row in &phase.rows {
        let fractions: Vec<(char, f64)> = ['L', 'R', 'A', 'o']
            .iter()
            .zip(&row[1..])
            .map(|(&c, cell)| (c, cell.parse::<f64>().unwrap_or(0.0)))
            .collect();
        println!(
            "{}",
            stacked_bar(&format!("{:<16}", row[0]), &fractions, 50)
        );
    }
    println!();
    pass.print();

    let g = graphs as f64;
    println!(
        "Average split: local-move {:.0}%, refinement {:.0}%, aggregation {:.0}%, others {:.0}%; \
         first pass {:.0}% of runtime",
        100.0 * avg[0] / g,
        100.0 * avg[1] / g,
        100.0 * avg[2] / g,
        100.0 * avg[3] / g,
        100.0 * first_pass_sum / g,
    );
    println!(
        "(Paper reference: 46% local-moving, 19% refinement, 20% aggregation, 15% others; \
         first pass 63%.)"
    );

    if let Some(csv) = &args.csv {
        phase.write_csv(csv).expect("failed to write CSV");
        pass.write_csv(csv).expect("failed to write CSV");
    }
}
