//! Extension experiment: detection accuracy on the LFR benchmark.
//!
//! The standard community-detection accuracy plot (Lancichinetti &
//! Fortunato 2009, the paper's reference \[15\]): NMI against planted
//! communities as the mixing parameter `μ` sweeps from easy (0.1) to
//! past the detectability region (0.6), for every implementation in the
//! comparison matrix.
//!
//! ```text
//! cargo run --release -p gve-bench --bin lfr_accuracy
//! ```

use gve_bench::{extended_implementations, report::Table, BenchArgs};
use gve_generate::Lfr;

fn main() {
    let args = BenchArgs::parse();
    args.install_threads();
    let n = (4000.0 * args.scale) as usize;
    let mixings = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6];

    let mut table = Table::new(
        format!("LFR accuracy: NMI vs mixing parameter (n = {n}, degree 14)"),
        &[
            "mu",
            "Implementation",
            "NMI",
            "ARI",
            "Communities (found/planted)",
        ],
    );

    for &mu in &mixings {
        let lfr = Lfr::new(n, 14.0, mu).seed(args.seed).generate();
        for imp in extended_implementations() {
            let membership = (imp.run)(&lfr.graph);
            let nmi = gve_quality::normalized_mutual_information(&membership, &lfr.labels);
            let ari = gve_quality::adjusted_rand_index(&membership, &lfr.labels);
            table.push(vec![
                format!("{mu:.1}"),
                imp.name.to_string(),
                format!("{nmi:.3}"),
                format!("{ari:.3}"),
                format!(
                    "{}/{}",
                    gve_quality::community_count(&membership),
                    lfr.communities
                ),
            ]);
        }
    }
    table.print();
    println!(
        "Expected shape: near-perfect recovery for mu <= 0.3, decay past 0.5 \
         (a property of modularity optimization, shared by all implementations)."
    );

    if let Some(csv) = &args.csv {
        table.write_csv(csv).expect("failed to write CSV");
    }
}
