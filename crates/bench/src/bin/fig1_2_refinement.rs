//! Figures 1 and 2: greedy vs random refinement, including the medium
//! and heavy variants.
//!
//! Figure 1 reports each configuration's runtime relative to
//! greedy/default (lower is better); Figure 2 reports modularity. The
//! paper's finding: greedy/default is the best on average in both.
//!
//! ```text
//! cargo run --release -p gve-bench --bin fig1_2_refinement -- --reps 3
//! ```

use gve_bench::{report, report::Table, BenchArgs};
use gve_leiden::{Leiden, LeidenConfig, RefinementStrategy, Variant};
use std::time::Instant;

fn configs() -> Vec<(&'static str, LeidenConfig)> {
    let strategies = [
        ("greedy", RefinementStrategy::Greedy),
        ("random", RefinementStrategy::Random),
    ];
    let variants = [
        ("default", Variant::Default),
        ("medium", Variant::Medium),
        ("heavy", Variant::Heavy),
    ];
    let mut out = Vec::new();
    for (sname, strategy) in strategies {
        for (vname, variant) in variants {
            let name: &'static str = Box::leak(format!("{sname}/{vname}").into_boxed_str());
            out.push((
                name,
                LeidenConfig::default()
                    .refinement(strategy)
                    .variant(variant),
            ));
        }
    }
    out
}

fn main() {
    let args = BenchArgs::parse();
    args.install_threads();
    let configs = configs();

    // Per-graph measurements.
    let mut per_graph = Table::new(
        "Figures 1-2 (per graph): runtime and modularity per refinement configuration",
        &["Graph", "Config", "Time", "Rel. time", "Modularity"],
    );
    // Averages across graphs — the quantity the figures plot.
    let mut rel_time_sum = vec![0.0f64; configs.len()];
    let mut modularity_sum = vec![0.0f64; configs.len()];
    let mut graphs = 0usize;

    for dataset in args.suite() {
        let graph = dataset.generate(args.scale, args.seed);
        let mut times = Vec::new();
        let mut mods = Vec::new();
        for (_, config) in &configs {
            let runner = Leiden::new(config.clone());
            let mut total = 0.0;
            let mut membership = Vec::new();
            for _ in 0..args.reps {
                let start = Instant::now();
                membership = runner.run(&graph).membership;
                total += start.elapsed().as_secs_f64();
            }
            times.push(total / args.reps as f64);
            mods.push(gve_quality::modularity(&graph, &membership));
        }
        let baseline = times[0]; // greedy/default
        graphs += 1;
        for (i, (name, _)) in configs.iter().enumerate() {
            let rel = times[i] / baseline;
            rel_time_sum[i] += rel;
            modularity_sum[i] += mods[i];
            per_graph.push(vec![
                dataset.name.to_string(),
                name.to_string(),
                report::fmt_secs(times[i]),
                format!("{rel:.2}"),
                format!("{:.4}", mods[i]),
            ]);
        }
    }
    per_graph.print();

    let mut summary = Table::new(
        "Figures 1-2 (averages): relative runtime (Fig. 1) and modularity (Fig. 2)",
        &["Config", "Avg rel. runtime", "Avg modularity"],
    );
    for (i, (name, _)) in configs.iter().enumerate() {
        summary.push(vec![
            name.to_string(),
            format!("{:.3}", rel_time_sum[i] / graphs as f64),
            format!("{:.4}", modularity_sum[i] / graphs as f64),
        ]);
    }
    summary.print();

    if let Some(csv) = &args.csv {
        per_graph.write_csv(csv).expect("failed to write CSV");
        summary.write_csv(csv).expect("failed to write CSV");
    }
}
