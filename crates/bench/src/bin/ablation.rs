//! Ablation study of the §4.1 optimization claims.
//!
//! Toggles each optimization off individually and reports the runtime
//! and modularity impact relative to the full configuration:
//!
//! * flag-based vertex pruning (off → every vertex rescanned each
//!   iteration);
//! * threshold scaling (off → every pass runs at the initial tolerance);
//! * aggregation tolerance (off → passes continue past the 0.8 shrink
//!   ratio);
//! * asynchronous vs color-synchronous scheduling (the deterministic
//!   Grappolo-style alternative from the paper's related work).
//!
//! ```text
//! cargo run --release -p gve-bench --bin ablation -- --quick --reps 3
//! ```

use gve_bench::{report, report::Table, BenchArgs};
use gve_leiden::{Leiden, LeidenConfig};
use std::time::Instant;

fn configs() -> Vec<(&'static str, LeidenConfig)> {
    let base = LeidenConfig::default();
    let mut no_pruning = base.clone();
    no_pruning.pruning = false;
    let mut no_scaling = base.clone();
    no_scaling.threshold_scaling = false;
    let mut no_agg_tol = base.clone();
    no_agg_tol.use_aggregation_tolerance = false;
    let color_sync = base
        .clone()
        .scheduling(gve_leiden::Scheduling::ColorSynchronous);
    let sort_reduce = base
        .clone()
        .aggregation(gve_leiden::AggregationStrategy::SortReduce);
    vec![
        ("full (paper defaults)", base),
        ("no vertex pruning", no_pruning),
        ("no threshold scaling", no_scaling),
        ("no aggregation tolerance", no_agg_tol),
        ("color-synchronous (deterministic)", color_sync),
        ("sort-reduce aggregation", sort_reduce),
    ]
}

fn main() {
    let args = BenchArgs::parse();
    args.install_threads();
    let configs = configs();

    let mut table = Table::new(
        "Ablation: each optimization toggled off, relative to the full configuration",
        &[
            "Graph",
            "Config",
            "Time",
            "Rel. time",
            "Modularity",
            "Passes",
        ],
    );
    let mut rel_sum = vec![0.0f64; configs.len()];
    let mut graphs = 0usize;

    for dataset in args.suite() {
        let graph = dataset.generate(args.scale, args.seed);
        let mut times = Vec::new();
        graphs += 1;
        for (i, (name, config)) in configs.iter().enumerate() {
            let runner = Leiden::new(config.clone());
            let mut total = 0.0;
            let mut result = None;
            for _ in 0..args.reps {
                let start = Instant::now();
                result = Some(runner.run(&graph));
                total += start.elapsed().as_secs_f64();
            }
            let seconds = total / args.reps as f64;
            times.push(seconds);
            let result = result.unwrap();
            let rel = seconds / times[0];
            rel_sum[i] += rel;
            table.push(vec![
                dataset.name.to_string(),
                name.to_string(),
                report::fmt_secs(seconds),
                format!("{rel:.2}"),
                format!("{:.4}", gve_quality::modularity(&graph, &result.membership)),
                result.passes.to_string(),
            ]);
        }
    }
    table.print();

    let mut summary = Table::new(
        "Ablation summary: average relative runtime",
        &["Config", "Avg rel. runtime"],
    );
    for (i, (name, _)) in configs.iter().enumerate() {
        summary.push(vec![
            name.to_string(),
            format!("{:.3}", rel_sum[i] / graphs as f64),
        ]);
    }
    summary.print();

    if let Some(csv) = &args.csv {
        table.write_csv(csv).expect("failed to write CSV");
        summary.write_csv(csv).expect("failed to write CSV");
    }
}
