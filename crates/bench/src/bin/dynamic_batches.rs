//! Extension experiment: dynamic Leiden strategies on a stream of edge
//! batches (the paper's §4.1 future-work direction, evaluated in the
//! style of the DF-Leiden follow-up: batch sizes swept in powers of ten,
//! quality and runtime vs a full static rerun).
//!
//! ```text
//! cargo run --release -p gve-bench --bin dynamic_batches -- --reps 3
//! ```

use gve_bench::{report, report::Table, BenchArgs};
use gve_dynamic::{apply_batch, BatchUpdate, DynamicLeiden, DynamicStrategy};
use gve_leiden::LeidenConfig;
use gve_prim::Xorshift32;
use std::time::Instant;

fn make_batch(graph: &gve_graph::CsrGraph, size: usize, seed: u32) -> BatchUpdate {
    let mut rng = Xorshift32::new(seed);
    let n = graph.num_vertices() as u32;
    let mut batch = BatchUpdate::new();
    // 60% insertions, 40% deletions — typical churn mix.
    for _ in 0..(size * 6 / 10) {
        let u = rng.next_bounded(n);
        let v = rng.next_bounded(n);
        if u != v {
            batch.insert(u, v, 1.0);
        }
    }
    for _ in 0..(size * 4 / 10) {
        let u = rng.next_bounded(n);
        let nb = graph.neighbors(u);
        if !nb.is_empty() {
            let v = nb[rng.next_bounded(nb.len() as u32) as usize];
            if u != v {
                batch.delete(u, v);
            }
        }
    }
    batch
}

fn main() {
    let args = BenchArgs::parse();
    args.install_threads();
    let strategies = [
        ("full-static", DynamicStrategy::FullStatic),
        ("naive-dynamic", DynamicStrategy::NaiveDynamic),
        ("delta-screening", DynamicStrategy::DeltaScreening),
        ("dynamic-frontier", DynamicStrategy::DynamicFrontier),
    ];
    let batch_sizes = [100usize, 1000, 10_000];

    let mut table = Table::new(
        "Dynamic Leiden: per-batch update time and quality vs full static rerun",
        &[
            "Graph",
            "Batch",
            "Strategy",
            "Time/batch",
            "Rel. time",
            "Modularity",
            "Q gap",
        ],
    );

    for dataset in args.suite() {
        let base = dataset.generate(args.scale, args.seed);
        for &batch_size in &batch_sizes {
            // Pre-generate a fixed stream of batches so every strategy
            // sees identical updates.
            let mut stream = Vec::new();
            let mut graph = base.clone();
            for step in 0..args.reps.max(3) {
                let batch = make_batch(&graph, batch_size, 7000 + step as u32);
                graph = apply_batch(&graph, &batch);
                stream.push(batch);
            }
            let final_graph = graph;
            let q_static =
                gve_quality::modularity(&final_graph, &gve_leiden::leiden(&final_graph).membership);

            let mut static_time = None;
            for (name, strategy) in strategies {
                let mut detector =
                    DynamicLeiden::new(base.clone(), LeidenConfig::default(), strategy);
                let start = Instant::now();
                for batch in &stream {
                    detector.apply(batch);
                }
                let per_batch = start.elapsed().as_secs_f64() / stream.len() as f64;
                let static_time = *static_time.get_or_insert(per_batch);
                let q = gve_quality::modularity(&final_graph, detector.membership());
                table.push(vec![
                    dataset.name.to_string(),
                    batch_size.to_string(),
                    name.to_string(),
                    report::fmt_secs(per_batch),
                    format!("{:.2}", per_batch / static_time),
                    format!("{q:.4}"),
                    format!("{:+.4}", q - q_static),
                ]);
            }
        }
    }
    table.print();

    if let Some(csv) = &args.csv {
        table.write_csv(csv).expect("failed to write CSV");
    }
}
