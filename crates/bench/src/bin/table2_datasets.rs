//! Table 2: the dataset suite — |V|, |E|, D_avg, and |Γ| as found by
//! GVE-Leiden.
//!
//! ```text
//! cargo run --release -p gve-bench --bin table2_datasets -- --scale 1.0
//! ```

use gve_bench::{report::Table, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    args.install_threads();
    let mut table = Table::new(
        format!(
            "Table 2: dataset suite (scale {}, seed {})",
            args.scale, args.seed
        ),
        &["Graph", "Class", "|V|", "|E|", "D_avg", "|Gamma|"],
    );
    for dataset in args.suite() {
        let graph = dataset.generate(args.scale, args.seed);
        let stats = gve_graph::props::stats(&graph);
        let result = gve_leiden::leiden(&graph);
        table.push(vec![
            dataset.name.to_string(),
            dataset.class.title().to_string(),
            stats.vertices.to_string(),
            stats.arcs.to_string(),
            format!("{:.1}", stats.avg_degree),
            result.num_communities.to_string(),
        ]);
    }
    table.print();
    if let Some(csv) = &args.csv {
        table.write_csv(csv).expect("failed to write CSV");
    }
}
