//! Figures 3 and 4: move-based vs refine-based super-vertex labeling.
//!
//! The paper observes both variants land at roughly the same runtime and
//! modularity, and keeps move-based (Traag et al.'s recommendation).
//!
//! ```text
//! cargo run --release -p gve-bench --bin fig3_4_labeling -- --reps 3
//! ```

use gve_bench::{report, report::Table, BenchArgs};
use gve_leiden::{Labeling, Leiden, LeidenConfig};
use std::time::Instant;

fn main() {
    let args = BenchArgs::parse();
    args.install_threads();
    let configs = [
        ("move-based", Labeling::MoveBased),
        ("refine-based", Labeling::RefineBased),
    ];

    let mut per_graph = Table::new(
        "Figures 3-4 (per graph): runtime and modularity per labeling",
        &[
            "Graph",
            "Labeling",
            "Time",
            "Rel. time",
            "Modularity",
            "Passes",
        ],
    );
    let mut rel_sum = [0.0f64; 2];
    let mut mod_sum = [0.0f64; 2];
    let mut graphs = 0usize;

    for dataset in args.suite() {
        let graph = dataset.generate(args.scale, args.seed);
        let mut times = [0.0f64; 2];
        let mut mods = [0.0f64; 2];
        let mut passes = [0usize; 2];
        for (i, (_, labeling)) in configs.iter().enumerate() {
            let runner = Leiden::new(LeidenConfig::default().labeling(*labeling));
            let mut total = 0.0;
            let mut membership = Vec::new();
            for _ in 0..args.reps {
                let start = Instant::now();
                let result = runner.run(&graph);
                total += start.elapsed().as_secs_f64();
                passes[i] = result.passes;
                membership = result.membership;
            }
            times[i] = total / args.reps as f64;
            mods[i] = gve_quality::modularity(&graph, &membership);
        }
        graphs += 1;
        for (i, (name, _)) in configs.iter().enumerate() {
            let rel = times[i] / times[0];
            rel_sum[i] += rel;
            mod_sum[i] += mods[i];
            per_graph.push(vec![
                dataset.name.to_string(),
                name.to_string(),
                report::fmt_secs(times[i]),
                format!("{rel:.2}"),
                format!("{:.4}", mods[i]),
                passes[i].to_string(),
            ]);
        }
    }
    per_graph.print();

    let mut summary = Table::new(
        "Figures 3-4 (averages): relative runtime (Fig. 3) and modularity (Fig. 4)",
        &["Labeling", "Avg rel. runtime", "Avg modularity"],
    );
    for (i, (name, _)) in configs.iter().enumerate() {
        summary.push(vec![
            name.to_string(),
            format!("{:.3}", rel_sum[i] / graphs as f64),
            format!("{:.4}", mod_sum[i] / graphs as f64),
        ]);
    }
    summary.print();

    if let Some(csv) = &args.csv {
        per_graph.write_csv(csv).expect("failed to write CSV");
        summary.write_csv(csv).expect("failed to write CSV");
    }
}
