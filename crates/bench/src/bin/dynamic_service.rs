//! Dynamic-service benchmark: sustained churn through the serving
//! tier's update path, per strategy, plus recovery-time scaling.
//!
//! Phase 1 drives identical [`ChurnStream`] windows through a resident
//! server's `POST /graphs/{name}/updates` endpoint once per dynamic
//! strategy (the partition is pre-warmed, so every batch takes the
//! incremental-refresh path) and reports sustained updates/sec plus
//! refresh latency p50/p99 — `full-static` doubling as the
//! recompute-from-scratch baseline the three incremental strategies
//! are compared against.
//!
//! Phase 2 measures durability: boot on a data dir, apply N batches,
//! drop the server, and time a cold [`Server::start`] that recovers the
//! graph from snapshot + WAL replay, for increasing WAL lengths.
//!
//! ```text
//! cargo run --release -p gve-bench --bin dynamic_service -- \
//!     --vertices 2000 --windows 16 --json BENCH_dynamic.json
//! ```
//!
//! Gates (used by the CI `dynamic-bench-smoke` job):
//! * `--assert-speedup <f>` — fail unless the best incremental
//!   strategy's p50 refresh beats f × the full-static p50.
//! * `--assert-recovery-ms <f>` — fail if the longest measured recovery
//!   exceeds the floor.

use gve_bench::report::Table;
use gve_dynamic::{collect_windows, BatchUpdate, ChurnStream};
use gve_serve::jobs::DetectRequest;
use gve_serve::registry::GraphSource;
use gve_serve::{client_request, ServeConfig, Server};
use std::fmt::Write as _;
use std::process::exit;
use std::time::{Duration, Instant};

struct Args {
    vertices: usize,
    windows: usize,
    insert_rate: f64,
    delete_rate: f64,
    window_seconds: f64,
    wal_lengths: Vec<usize>,
    json: String,
    assert_speedup: Option<f64>,
    assert_recovery_ms: Option<f64>,
}

fn parse_args() -> Args {
    let mut args = Args {
        vertices: 2000,
        windows: 16,
        insert_rate: 400.0,
        delete_rate: 100.0,
        window_seconds: 0.5,
        wal_lengths: vec![8, 32, 128],
        json: "BENCH_dynamic.json".to_string(),
        assert_speedup: None,
        assert_recovery_ms: None,
    };
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = raw.iter();
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
                .clone()
        };
        match flag.as_str() {
            "--vertices" => args.vertices = value("--vertices").parse().expect("bad --vertices"),
            "--windows" => args.windows = value("--windows").parse().expect("bad --windows"),
            "--insert-rate" => {
                args.insert_rate = value("--insert-rate").parse().expect("bad --insert-rate")
            }
            "--delete-rate" => {
                args.delete_rate = value("--delete-rate").parse().expect("bad --delete-rate")
            }
            "--window-seconds" => {
                args.window_seconds = value("--window-seconds")
                    .parse()
                    .expect("bad --window-seconds")
            }
            "--wal-lengths" => {
                args.wal_lengths = value("--wal-lengths")
                    .split(',')
                    .map(|c| c.trim().parse().expect("bad --wal-lengths"))
                    .collect();
            }
            "--json" => args.json = value("--json"),
            "--assert-speedup" => {
                args.assert_speedup = Some(value("--assert-speedup").parse().expect("bad float"))
            }
            "--assert-recovery-ms" => {
                args.assert_recovery_ms =
                    Some(value("--assert-recovery-ms").parse().expect("bad float"))
            }
            other => {
                eprintln!("unknown flag {other}");
                exit(2);
            }
        }
    }
    args
}

const STRATEGIES: [&str; 4] = [
    "full-static",
    "naive",
    "delta-screening",
    "dynamic-frontier",
];

fn boot(data_dir: Option<&str>) -> Server {
    Server::start(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        shards: 2,
        data_dir: data_dir.map(str::to_string),
        ..ServeConfig::default()
    })
    .expect("bind bench server")
}

/// Registers the planted graph and pre-warms its default partition so
/// every update batch takes the incremental-refresh path.
fn seed_graph(server: &Server, vertices: usize) {
    let planted = gve_generate::PlantedPartition::new(vertices, 10, 10.0, 0.8)
        .seed(42)
        .generate();
    server
        .state()
        .registry
        .register("bench", planted.graph, GraphSource::Generated("sbm".into()))
        .expect("register bench graph");
    if let Some(store) = &server.state().durability {
        let entry = server.state().registry.snapshot("bench").expect("entry");
        store
            .register_graph("bench", &entry.graph, &entry.source.label())
            .expect("persist bench graph");
    }
    let job = server
        .state()
        .jobs
        .submit("bench", DetectRequest::default())
        .expect("warm submit");
    let deadline = Instant::now() + Duration::from_secs(120);
    while server.state().cache.latest("bench").is_none() {
        assert!(Instant::now() < deadline, "warm detect never finished");
        assert!(
            server.state().jobs.job(job.id).is_some(),
            "warm job disappeared"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn batch_body(batch: &BatchUpdate, strategy: &str) -> String {
    let mut body = String::with_capacity(batch.len() * 16 + 64);
    body.push_str("{\"strategy\":\"");
    body.push_str(strategy);
    body.push_str("\",\"insertions\":[");
    for (i, &(u, v, w)) in batch.insertions.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        let _ = write!(body, "[{u},{v},{w}]");
    }
    body.push_str("],\"deletions\":[");
    for (i, &(u, v)) in batch.deletions.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        let _ = write!(body, "[{u},{v}]");
    }
    body.push_str("]}");
    body
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

struct StrategyReport {
    strategy: &'static str,
    updates_per_sec: f64,
    p50_ms: f64,
    p99_ms: f64,
    total_edits: usize,
}

/// One strategy's sustained-churn run on a fresh memory-only server.
fn run_strategy(strategy: &'static str, args: &Args, windows: &[BatchUpdate]) -> StrategyReport {
    let server = boot(None);
    seed_graph(&server, args.vertices);
    let addr = format!("127.0.0.1:{}", server.port());

    let mut latencies: Vec<f64> = Vec::with_capacity(windows.len());
    let mut total_edits = 0usize;
    let started = Instant::now();
    for window in windows {
        if window.is_empty() {
            continue;
        }
        total_edits += window.len();
        let body = batch_body(window, strategy);
        let sent = Instant::now();
        let (status, response) =
            client_request(&addr, "POST", "/graphs/bench/updates", Some(&body))
                .expect("update request");
        assert!(status == 200 || status == 202, "{status} {response}");
        latencies.push(sent.elapsed().as_secs_f64() * 1e3);
    }
    assert!(
        server.state().ingest.wait_idle(Duration::from_secs(120)),
        "ingest queue never drained"
    );
    let elapsed = started.elapsed().as_secs_f64();
    server.stop();

    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    StrategyReport {
        strategy,
        updates_per_sec: total_edits as f64 / elapsed,
        p50_ms: percentile(&latencies, 0.50),
        p99_ms: percentile(&latencies, 0.99),
        total_edits,
    }
}

struct RecoveryReport {
    wal_records: usize,
    recovery_ms: f64,
}

/// Applies `batches` update batches against a durable server, then
/// times a cold boot that recovers the graph from snapshot + WAL.
fn run_recovery(args: &Args, windows: &[BatchUpdate], batches: usize) -> RecoveryReport {
    let dir = std::env::temp_dir().join(format!(
        "gve-bench-dynamic-{}-{batches}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_str = dir.display().to_string();
    {
        let server = boot(Some(&dir_str));
        seed_graph(&server, args.vertices);
        let addr = format!("127.0.0.1:{}", server.port());
        for i in 0..batches {
            let window = &windows[i % windows.len()];
            if window.is_empty() {
                continue;
            }
            let body = batch_body(window, "dynamic-frontier");
            let (status, response) =
                client_request(&addr, "POST", "/graphs/bench/updates", Some(&body))
                    .expect("update request");
            assert!(status == 200 || status == 202, "{status} {response}");
        }
        assert!(server.state().ingest.wait_idle(Duration::from_secs(120)));
        server.stop();
    }
    let started = Instant::now();
    let server = boot(Some(&dir_str));
    let recovery_ms = started.elapsed().as_secs_f64() * 1e3;
    assert!(
        server.state().registry.snapshot("bench").is_ok(),
        "bench graph did not recover"
    );
    server.stop();
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
    RecoveryReport {
        wal_records: batches,
        recovery_ms,
    }
}

fn main() {
    let args = parse_args();

    // One fixed window stream so every strategy sees identical churn.
    let planted = gve_generate::PlantedPartition::new(args.vertices, 10, 10.0, 0.8)
        .seed(42)
        .generate();
    let stream = ChurnStream::new(&planted.graph, args.insert_rate, args.delete_rate, 7);
    let windows = collect_windows(stream, args.window_seconds, args.windows);

    let mut table = Table::new(
        "Dynamic service tier: sustained churn through POST /updates",
        &[
            "Strategy",
            "Updates/s",
            "p50 ms",
            "p99 ms",
            "Speedup vs static",
        ],
    );
    let reports: Vec<StrategyReport> = STRATEGIES
        .iter()
        .map(|s| run_strategy(s, &args, &windows))
        .collect();
    let static_p50 = reports
        .iter()
        .find(|r| r.strategy == "full-static")
        .map(|r| r.p50_ms)
        .unwrap_or(0.0);
    for report in &reports {
        let speedup = if report.p50_ms > 0.0 {
            static_p50 / report.p50_ms
        } else {
            0.0
        };
        table.push(vec![
            report.strategy.to_string(),
            format!("{:.0}", report.updates_per_sec),
            format!("{:.2}", report.p50_ms),
            format!("{:.2}", report.p99_ms),
            format!("{speedup:.2}x"),
        ]);
    }
    table.print();

    let mut recovery_table = Table::new(
        "Recovery time vs WAL length (snapshot + replay)",
        &["WAL records", "Recovery ms"],
    );
    let recoveries: Vec<RecoveryReport> = args
        .wal_lengths
        .iter()
        .map(|&n| run_recovery(&args, &windows, n))
        .collect();
    for r in &recoveries {
        recovery_table.push(vec![
            r.wal_records.to_string(),
            format!("{:.1}", r.recovery_ms),
        ]);
    }
    recovery_table.print();

    // ------------------------------------------------------------ JSON
    let mut json = String::from("{\n  \"bench\": \"dynamic_service\",\n");
    let _ = writeln!(json, "  \"vertices\": {},", args.vertices);
    let _ = writeln!(json, "  \"windows\": {},", args.windows);
    json.push_str("  \"strategies\": [\n");
    for (i, report) in reports.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"strategy\": \"{}\", \"updates_per_sec\": {:.1}, \"p50_ms\": {:.3}, \
             \"p99_ms\": {:.3}, \"total_edits\": {}, \"speedup_vs_full_static\": {:.3}}}",
            report.strategy,
            report.updates_per_sec,
            report.p50_ms,
            report.p99_ms,
            report.total_edits,
            if report.p50_ms > 0.0 {
                static_p50 / report.p50_ms
            } else {
                0.0
            }
        );
        json.push_str(if i + 1 < reports.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n  \"recovery\": [\n");
    for (i, r) in recoveries.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"wal_records\": {}, \"recovery_ms\": {:.2}}}",
            r.wal_records, r.recovery_ms
        );
        json.push_str(if i + 1 < recoveries.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&args.json, &json).expect("write json");
    eprintln!("wrote {}", args.json);

    // ------------------------------------------------------------ gates
    let mut failed = false;
    if let Some(floor) = args.assert_speedup {
        let best = reports
            .iter()
            .filter(|r| r.strategy != "full-static" && r.p50_ms > 0.0)
            .map(|r| static_p50 / r.p50_ms)
            .fold(0.0f64, f64::max);
        if best < floor {
            eprintln!("GATE FAIL: best incremental speedup {best:.2}x < required {floor:.2}x");
            failed = true;
        } else {
            eprintln!("gate ok: best incremental speedup {best:.2}x >= {floor:.2}x");
        }
    }
    if let Some(floor) = args.assert_recovery_ms {
        let worst = recoveries.iter().map(|r| r.recovery_ms).fold(0.0, f64::max);
        if worst > floor {
            eprintln!("GATE FAIL: worst recovery {worst:.1} ms > allowed {floor:.1} ms");
            failed = true;
        } else {
            eprintln!("gate ok: worst recovery {worst:.1} ms <= {floor:.1} ms");
        }
    }
    if failed {
        exit(1);
    }
}
