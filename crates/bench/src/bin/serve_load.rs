//! Serving-tier load benchmark: thread-per-connection accept loop vs
//! the `gve-net` event-loop reactor, on a cached-partition detect
//! workload, plus an in-flight coalescing burst measurement.
//!
//! Each backend serves the same resident graph whose default partition
//! is pre-warmed into the cache, so every `POST /graphs/bench/detect`
//! is answered from memory and the measurement isolates the *serving*
//! tier, not Leiden itself. The coalescing phase then bursts identical
//! never-seen detect configs from all clients at once and reads the
//! `gve_jobs_coalesced_total` / `gve_jobs_full_detections_total`
//! counters back out of `/metrics`.
//!
//! ```text
//! cargo run --release -p gve-bench --bin serve_load -- \
//!     --clients 8,64 --requests 200 --json BENCH_serve.json
//! ```
//!
//! Gates (used by the CI `serve-load-smoke` job):
//! * `--assert-speedup <f>`  — fail unless event-loop req/s ≥ f × threaded
//!   req/s at the highest client count.
//! * `--assert-p99-ms <f>`   — fail if the event-loop p99 at the highest
//!   client count exceeds the floor.
//! * `--assert-coalesce-rate <f>` — fail if the burst coalesce hit-rate
//!   at the highest client count falls below the floor.

use gve_bench::report::Table;
use gve_net::{run_load, LoadReport, LoadSpec, Target};
use gve_serve::jobs::{DetectRequest, JobState};
use gve_serve::registry::GraphSource;
use gve_serve::{client_request, ServeConfig, Server};
use std::fmt::Write as _;
use std::process::exit;
use std::time::Duration;

struct Args {
    clients: Vec<usize>,
    requests: usize,
    rounds: usize,
    json: String,
    assert_speedup: Option<f64>,
    assert_p99_ms: Option<f64>,
    assert_coalesce_rate: Option<f64>,
}

fn parse_args() -> Args {
    let mut args = Args {
        clients: vec![8, 64],
        requests: 200,
        rounds: 8,
        json: "BENCH_serve.json".to_string(),
        assert_speedup: None,
        assert_p99_ms: None,
        assert_coalesce_rate: None,
    };
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = raw.iter();
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
                .clone()
        };
        match flag.as_str() {
            "--clients" => {
                args.clients = value("--clients")
                    .split(',')
                    .map(|c| c.trim().parse().expect("bad --clients"))
                    .collect();
            }
            "--requests" => args.requests = value("--requests").parse().expect("bad --requests"),
            "--rounds" => args.rounds = value("--rounds").parse().expect("bad --rounds"),
            "--json" => args.json = value("--json"),
            "--assert-speedup" => {
                args.assert_speedup = Some(value("--assert-speedup").parse().expect("bad float"))
            }
            "--assert-p99-ms" => {
                args.assert_p99_ms = Some(value("--assert-p99-ms").parse().expect("bad float"))
            }
            "--assert-coalesce-rate" => {
                args.assert_coalesce_rate =
                    Some(value("--assert-coalesce-rate").parse().expect("bad float"))
            }
            other => {
                eprintln!("unknown flag {other}");
                exit(2);
            }
        }
    }
    assert!(!args.clients.is_empty(), "--clients must be nonempty");
    args
}

/// Boots a server on an ephemeral port with the bench graph loaded and
/// its default partition pre-warmed into the cache.
fn boot(event_loop: bool) -> Server {
    let server = Server::start(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        shards: 4,
        max_connections: 512,
        event_loop,
        ..ServeConfig::default()
    })
    .expect("bind bench server");
    let planted = gve_generate::PlantedPartition::new(5000, 10, 10.0, 0.8)
        .seed(42)
        .generate();
    server
        .state()
        .registry
        .register("bench", planted.graph, GraphSource::Generated("sbm".into()))
        .expect("register bench graph");
    let job = server
        .state()
        .jobs
        .submit("bench", DetectRequest::default())
        .expect("warm submit");
    let record = server
        .state()
        .jobs
        .wait(job.id, Duration::from_secs(120))
        .expect("warm job");
    assert_eq!(record.state, JobState::Done, "warm-up detection failed");
    server
}

/// Reads one un-labeled counter/gauge sample out of `/metrics`.
fn metric(addr: &str, name: &str) -> f64 {
    let (status, body) = client_request(addr, "GET", "/metrics", None).expect("GET /metrics");
    assert_eq!(status, 200);
    body.lines()
        .filter(|line| !line.starts_with('#'))
        .find_map(|line| {
            let (sample, value) = line.rsplit_once(' ')?;
            (sample == name).then(|| value.parse().ok())?
        })
        .unwrap_or(0.0)
}

fn measure(addr: &str, clients: usize, requests: usize, keep_alive: bool) -> LoadReport {
    run_load(&LoadSpec {
        addr: addr.to_string(),
        clients,
        requests_per_client: requests,
        targets: vec![Target::post("/graphs/bench/detect", "{}")],
        keep_alive,
    })
}

struct CoalesceSample {
    clients: usize,
    rounds: usize,
    submitted: u64,
    full_detections: u64,
    coalesced: u64,
    hit_rate: f64,
}

/// Bursts `rounds` never-before-seen identical detect configs from
/// `clients` concurrent connections and reports how many submits rode
/// an in-flight run instead of executing their own.
fn measure_coalesce(addr: &str, clients: usize, rounds: usize, seed_base: u64) -> CoalesceSample {
    let submitted0 = metric(addr, "gve_jobs_submitted_total");
    let full0 = metric(addr, "gve_jobs_full_detections_total");
    let coalesced0 = metric(addr, "gve_jobs_coalesced_total");
    for round in 0..rounds {
        let body = format!("{{\"seed\": {}}}", seed_base + round as u64);
        run_load(&LoadSpec {
            addr: addr.to_string(),
            clients,
            requests_per_client: 1,
            targets: vec![Target::post("/graphs/bench/detect", &body)],
            keep_alive: true,
        });
    }
    let submitted = (metric(addr, "gve_jobs_submitted_total") - submitted0) as u64;
    let full_detections = (metric(addr, "gve_jobs_full_detections_total") - full0) as u64;
    let coalesced = (metric(addr, "gve_jobs_coalesced_total") - coalesced0) as u64;
    CoalesceSample {
        clients,
        rounds,
        submitted,
        full_detections,
        coalesced,
        hit_rate: if submitted > 0 {
            coalesced as f64 / submitted as f64
        } else {
            0.0
        },
    }
}

fn main() {
    let args = parse_args();
    let max_clients = *args.clients.iter().max().expect("nonempty clients");

    let mut table = Table::new(
        "Serving tier: cached-partition detect throughput (keep-alive \
         event loop vs connection-per-request threads)",
        &[
            "Backend", "Clients", "Req/s", "p50 ms", "p99 ms", "Failed", "5xx",
        ],
    );
    let mut rows: Vec<(String, usize, LoadReport)> = Vec::new();

    for (label, event_loop) in [("threaded", false), ("event-loop", true)] {
        let server = boot(event_loop);
        let addr = format!("127.0.0.1:{}", server.port());
        eprintln!("{label}: serving on {addr} ({} backend)", server.backend());
        // The threaded baseline closes after every response, so its
        // clients reconnect per request; the event loop keeps
        // connections alive — that IS the architectural difference
        // under measurement.
        let keep_alive = event_loop;
        for &clients in &args.clients {
            let report = measure(&addr, clients, args.requests, keep_alive);
            table.push(vec![
                label.to_string(),
                clients.to_string(),
                format!("{:.0}", report.requests_per_second),
                format!("{:.3}", report.p50_ms),
                format!("{:.3}", report.p99_ms),
                report.failed.to_string(),
                report.server_errors.to_string(),
            ]);
            rows.push((label.to_string(), clients, report));
        }
        server.stop();
    }

    // Coalescing burst against a fresh event-loop server.
    let server = boot(true);
    let addr = format!("127.0.0.1:{}", server.port());
    let mut coalesce: Vec<CoalesceSample> = Vec::new();
    for (index, &clients) in args.clients.iter().enumerate() {
        coalesce.push(measure_coalesce(
            &addr,
            clients,
            args.rounds,
            90_000 + (index as u64) * 1_000,
        ));
    }
    server.stop();

    table.print();
    println!(
        "Coalescing bursts ({} rounds of identical fresh configs):",
        args.rounds
    );
    for sample in &coalesce {
        println!(
            "  {} clients: {} submits -> {} full detections, {} coalesced \
             (hit rate {:.1}%)",
            sample.clients,
            sample.submitted,
            sample.full_detections,
            sample.coalesced,
            sample.hit_rate * 100.0,
        );
    }

    let rps_at = |backend: &str, clients: usize| {
        rows.iter()
            .find(|(b, c, _)| b == backend && *c == clients)
            .map(|(_, _, r)| r.requests_per_second)
            .unwrap_or(0.0)
    };
    let speedup = rps_at("event-loop", max_clients) / rps_at("threaded", max_clients).max(1e-9);
    println!("event-loop/threaded speedup at {max_clients} clients: {speedup:.2}x");

    // ------------------------------------------------- JSON report
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"suite\": \"serve\",");
    let _ = writeln!(json, "  \"requests_per_client\": {},", args.requests);
    let _ = writeln!(json, "  \"workload\": \"cached-partition detect\",");
    json.push_str("  \"results\": [\n");
    for (index, (backend, clients, report)) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"backend\": \"{}\", \"clients\": {}, \"completed\": {}, \
             \"failed\": {}, \"server_errors\": {}, \"elapsed_seconds\": {:.6}, \
             \"requests_per_second\": {:.1}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \
             \"mean_ms\": {:.3}, \"max_ms\": {:.3}}}{}",
            backend,
            clients,
            report.completed,
            report.failed,
            report.server_errors,
            report.elapsed_seconds,
            report.requests_per_second,
            report.p50_ms,
            report.p99_ms,
            report.mean_ms,
            report.max_ms,
            if index + 1 < rows.len() { "," } else { "" },
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"coalesce\": [\n");
    for (index, sample) in coalesce.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"clients\": {}, \"rounds\": {}, \"submitted\": {}, \
             \"full_detections\": {}, \"coalesced\": {}, \"hit_rate\": {:.4}}}{}",
            sample.clients,
            sample.rounds,
            sample.submitted,
            sample.full_detections,
            sample.coalesced,
            sample.hit_rate,
            if index + 1 < coalesce.len() { "," } else { "" },
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"speedup_at_max_clients\": {speedup:.3},\n  \"max_clients\": {max_clients}"
    );
    json.push_str("}\n");
    std::fs::write(&args.json, json).expect("failed to write JSON report");
    println!("report written to {}", args.json);

    // -------------------------------------------------- regression gates
    let mut failures = Vec::new();
    if let Some(floor) = args.assert_speedup {
        if speedup < floor {
            failures.push(format!(
                "speedup {speedup:.2}x at {max_clients} clients below the {floor:.2}x floor"
            ));
        }
    }
    if let Some(floor) = args.assert_p99_ms {
        let p99 = rows
            .iter()
            .find(|(b, c, _)| b == "event-loop" && *c == max_clients)
            .map(|(_, _, r)| r.p99_ms)
            .unwrap_or(f64::INFINITY);
        if p99 > floor {
            failures.push(format!(
                "event-loop p99 {p99:.3} ms at {max_clients} clients above the {floor:.3} ms floor"
            ));
        }
    }
    if let Some(floor) = args.assert_coalesce_rate {
        let rate = coalesce
            .iter()
            .find(|s| s.clients == max_clients)
            .map(|s| s.hit_rate)
            .unwrap_or(0.0);
        if rate < floor {
            failures.push(format!(
                "coalesce hit-rate {rate:.3} at {max_clients} clients below the {floor:.3} floor"
            ));
        }
    }
    if !failures.is_empty() {
        for failure in &failures {
            eprintln!("REGRESSION: {failure}");
        }
        exit(1);
    }
}
