//! Kernel v1 vs v2 comparison runner — the reproducible counterpart of
//! `benches/kernels.rs`. Runs full GVE-Leiden under each kernel variant
//! on an R-MAT web graph (skewed degrees) and a planted-partition SBM
//! (near-uniform degrees), takes the **minimum** wall time over `--reps`
//! repetitions (the stable statistic on a shared box), and emits a
//! machine-readable JSON report.
//!
//! ```text
//! cargo run --release -p gve-bench --bin kernels -- --reps 5
//! cargo run --release -p gve-bench --bin kernels -- --quick --reps 2 --json BENCH_kernels.json
//! ```
//!
//! Without `--json` the report is written to `BENCH_kernels.json` in the
//! working directory. Variants:
//!
//! * `v1` — two-pass table-only scan (the reference kernel);
//! * `v2` — fused degree-aware scan (the default);
//! * `v2_interleaved` — v2 plus the interleaved `(target, weight)` CSR
//!   edge layout;
//! * `v2_degree` — v2 plus degree-descending vertex relabeling;
//! * `v2_bfs` — v2 plus BFS vertex relabeling.

use gve_bench::{report, report::Table, BenchArgs};
use gve_graph::CsrGraph;
use gve_leiden::{EdgeLayout, KernelVersion, Leiden, LeidenConfig, VertexOrdering};
use std::fmt::Write as _;
use std::time::Instant;

fn variants() -> Vec<(&'static str, LeidenConfig)> {
    let base = LeidenConfig::default();
    vec![
        ("v1", base.clone().kernel(KernelVersion::V1)),
        ("v2", base.clone().kernel(KernelVersion::V2)),
        (
            "v2_interleaved",
            base.clone()
                .kernel(KernelVersion::V2)
                .layout(EdgeLayout::Interleaved),
        ),
        (
            "v2_degree",
            base.clone()
                .kernel(KernelVersion::V2)
                .ordering(VertexOrdering::DegreeDesc),
        ),
        (
            "v2_bfs",
            base.clone()
                .kernel(KernelVersion::V2)
                .ordering(VertexOrdering::Bfs),
        ),
    ]
}

fn graphs(args: &BenchArgs) -> Vec<(String, CsrGraph)> {
    // --quick halves the R-MAT scale and the SBM size on top of --scale.
    let rmat_scale = if args.quick { 12 } else { 14 } + (args.scale.log2().round() as i32).max(-8);
    let sbm_n = (((if args.quick { 20_000 } else { 100_000 }) as f64) * args.scale) as usize;
    vec![
        (
            format!("rmat_web_{rmat_scale}"),
            gve_generate::rmat::Rmat::web(rmat_scale.max(8) as u32, 8.0)
                .seed(args.seed)
                .generate(),
        ),
        (
            format!("sbm_{sbm_n}"),
            gve_generate::PlantedPartition::new(sbm_n.max(1000), sbm_n.max(1000) / 250, 8.0, 2.0)
                .seed(args.seed)
                .generate()
                .graph,
        ),
    ]
}

struct Row {
    graph: String,
    vertices: usize,
    arcs: usize,
    variant: &'static str,
    seconds: f64,
    modularity: f64,
    passes: usize,
    phases: [f64; 4], // local_move, refinement, aggregation, other
}

fn main() {
    let args = BenchArgs::parse();
    args.install_threads();

    let mut rows: Vec<Row> = Vec::new();
    let mut table = Table::new(
        "Kernel v1 vs v2 (min wall time over reps)",
        &["Graph", "Variant", "Time", "vs v1", "Modularity", "Passes"],
    );

    for (graph_name, graph) in graphs(&args) {
        // Round-robin the repetitions across variants (after one warmup
        // run each) so slow drift on a shared box biases every variant
        // equally instead of whichever ran last.
        let runners: Vec<(&'static str, Leiden)> = variants()
            .into_iter()
            .map(|(name, config)| (name, Leiden::new(config)))
            .collect();
        let mut best = vec![f64::INFINITY; runners.len()];
        let mut results = Vec::new();
        for (_, runner) in &runners {
            results.push(runner.run(&graph)); // warmup, keep the result
        }
        for _ in 0..args.reps {
            for (i, (_, runner)) in runners.iter().enumerate() {
                let start = Instant::now();
                let result = runner.run(&graph);
                let seconds = start.elapsed().as_secs_f64();
                if seconds < best[i] {
                    best[i] = seconds;
                    results[i] = result; // keep the min-time rep's stats
                }
            }
        }
        let mut v1_seconds = f64::NAN;
        for (i, (variant, _)) in runners.iter().enumerate() {
            let variant = *variant;
            let best = best[i];
            let result = &results[i];
            if variant == "v1" {
                v1_seconds = best;
            }
            let modularity = gve_quality::modularity(&graph, &result.membership);
            table.push(vec![
                graph_name.clone(),
                variant.to_string(),
                report::fmt_secs(best),
                report::fmt_speedup(v1_seconds / best),
                format!("{modularity:.4}"),
                result.passes.to_string(),
            ]);
            rows.push(Row {
                graph: graph_name.clone(),
                vertices: graph.num_vertices(),
                arcs: graph.num_arcs(),
                variant,
                seconds: best,
                modularity,
                passes: result.passes,
                phases: [
                    result.timings.local_move.as_secs_f64(),
                    result.timings.refinement.as_secs_f64(),
                    result.timings.aggregation.as_secs_f64(),
                    result.timings.other.as_secs_f64(),
                ],
            });
        }
    }
    table.print();
    if let Some(csv) = &args.csv {
        table.write_csv(csv).expect("failed to write CSV");
    }

    // Hand-rolled JSON (the dependency set has no serde).
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"suite\": \"kernels\",");
    let _ = writeln!(json, "  \"reps\": {},", args.reps);
    let _ = writeln!(json, "  \"seed\": {},", args.seed);
    let _ = writeln!(json, "  \"scale\": {},", args.scale);
    let _ = writeln!(json, "  \"quick\": {},", args.quick);
    let _ = writeln!(json, "  \"statistic\": \"min\",");
    json.push_str("  \"results\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"graph\": \"{}\", \"vertices\": {}, \"arcs\": {}, \"variant\": \"{}\", \
             \"seconds\": {:.6}, \"modularity\": {:.6}, \"passes\": {}, \
             \"local_move\": {:.6}, \"refinement\": {:.6}, \"aggregation\": {:.6}, \
             \"other\": {:.6}}}{comma}",
            row.graph,
            row.vertices,
            row.arcs,
            row.variant,
            row.seconds,
            row.modularity,
            row.passes,
            row.phases[0],
            row.phases[1],
            row.phases[2],
            row.phases[3],
        );
    }
    json.push_str("  ]\n}\n");

    let path = args.json.as_deref().unwrap_or("BENCH_kernels.json");
    std::fs::write(path, json).expect("failed to write JSON report");
    eprintln!("wrote {path}");
}
