//! Kernel v1/v2/v3 comparison runner — the reproducible counterpart of
//! `benches/kernels.rs`. Runs full GVE-Leiden under each kernel variant
//! on an R-MAT web graph (skewed degrees), a planted-partition SBM
//! (near-uniform degrees), and a Barabási–Albert power-law graph
//! (heavy hub skew), takes the **minimum** wall time over `--reps`
//! repetitions (the stable statistic on a shared box), and emits a
//! machine-readable JSON report.
//!
//! ```text
//! cargo run --release -p gve-bench --bin kernels -- --reps 5
//! cargo run --release -p gve-bench --bin kernels -- --quick --reps 2 --json BENCH_kernels.json
//! ```
//!
//! Without `--json` the report is written to `BENCH_kernels.json` in the
//! working directory. Variants:
//!
//! * `v1` — two-pass table-only scan (the reference kernel);
//! * `v2` — fused degree-aware scan (the default);
//! * `v2_interleaved` — v2 plus the interleaved `(target, weight)` CSR
//!   edge layout;
//! * `v2_degree` — v2 plus degree-descending vertex relabeling;
//! * `v2_bfs` — v2 plus BFS vertex relabeling;
//! * `v3` — lane-chunked accumulate + lane-parallel choose over the
//!   interleaved layout (static chunking);
//! * `v3_guided` — v3 under guided (arc-balanced, shrinking-chunk)
//!   scheduling;
//! * `v3_steal` — v3 under per-worker-deque work stealing.
//!
//! `--assert-v3-beats-v1` turns the comparison into a hard gate: on
//! every suite graph the best v3 variant must be strictly faster than
//! the v1 reference (exit 1 otherwise). `--v3-tolerance <f64>` relaxes
//! the gate to `best < v1 * tolerance` so CI on noisy shared runners
//! can grant a small margin (e.g. 1.02) instead of failing on jitter.
//!
//! This binary installs the counting global allocator and runs every
//! variant inside one pass-resident [`PassWorkspace`], so the report
//! also carries the preallocation discipline's receipts: allocations
//! and bytes of the first (cold) run vs the steady state, plus the
//! live-byte high-water mark. `--assert-steady-allocs <n>` turns the
//! steady-state column into a hard gate (exit 1 on violation) — run it
//! with `--threads 1`, where the rayon shim executes parallel regions
//! inline; at higher thread counts the shim spawns scoped OS threads
//! per region and those spawns are counted too.

use gve_bench::{report, report::Table, BenchArgs};
use gve_graph::CsrGraph;
use gve_leiden::{
    ChunkScheduling, EdgeLayout, KernelVersion, Leiden, LeidenConfig, PassWorkspace, VertexOrdering,
};
use gve_prim::alloc_count::{self, CountingAllocator};
use std::fmt::Write as _;
use std::time::Instant;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn variants() -> Vec<(&'static str, LeidenConfig)> {
    let base = LeidenConfig::default();
    vec![
        ("v1", base.clone().kernel(KernelVersion::V1)),
        ("v2", base.clone().kernel(KernelVersion::V2)),
        (
            "v2_interleaved",
            base.clone()
                .kernel(KernelVersion::V2)
                .layout(EdgeLayout::Interleaved),
        ),
        (
            "v2_degree",
            base.clone()
                .kernel(KernelVersion::V2)
                .ordering(VertexOrdering::DegreeDesc),
        ),
        (
            "v2_bfs",
            base.clone()
                .kernel(KernelVersion::V2)
                .ordering(VertexOrdering::Bfs),
        ),
        // v3 rows run the default split layout, like v1, so the gate
        // compares kernels — not kernel+layout bundles (the interleaved
        // materialization is a separately measured option above).
        ("v3", base.clone().kernel(KernelVersion::V3)),
        (
            "v3_guided",
            base.clone()
                .kernel(KernelVersion::V3)
                .chunking(ChunkScheduling::Guided),
        ),
        (
            "v3_steal",
            base.clone()
                .kernel(KernelVersion::V3)
                .chunking(ChunkScheduling::Stealing),
        ),
    ]
}

fn graphs(args: &BenchArgs) -> Vec<(String, CsrGraph)> {
    // --quick halves the R-MAT scale and the SBM size on top of --scale.
    let rmat_scale = if args.quick { 12 } else { 14 } + (args.scale.log2().round() as i32).max(-8);
    let sbm_n = (((if args.quick { 20_000 } else { 100_000 }) as f64) * args.scale) as usize;
    let pld_n = (((if args.quick { 15_000 } else { 75_000 }) as f64) * args.scale) as usize;
    vec![
        (
            format!("rmat_web_{rmat_scale}"),
            gve_generate::rmat::Rmat::web(rmat_scale.max(8) as u32, 8.0)
                .seed(args.seed)
                .generate(),
        ),
        (
            format!("sbm_{sbm_n}"),
            gve_generate::PlantedPartition::new(sbm_n.max(1000), sbm_n.max(1000) / 250, 8.0, 2.0)
                .seed(args.seed)
                .generate()
                .graph,
        ),
        // Power-law-degree graph with heavy hub skew: preferential
        // attachment concentrates a large fraction of the arcs on a few
        // early vertices, which is exactly what guided/stealing
        // scheduling (and the v3 hub-gather path) are built for.
        (
            format!("pld_cross_web_{pld_n}"),
            gve_generate::ba::barabasi_albert(pld_n.max(1000), 8, args.seed),
        ),
    ]
}

struct Row {
    graph: String,
    vertices: usize,
    arcs: usize,
    variant: &'static str,
    seconds: f64,
    modularity: f64,
    passes: usize,
    phases: [f64; 4], // local_move, refinement, aggregation, other
    allocs_fresh: u64,
    allocs_steady: u64,
    alloc_bytes_fresh: u64,
    alloc_bytes_steady: u64,
    peak_bytes: u64,
}

fn main() {
    let args = BenchArgs::parse();
    args.install_threads();

    let mut rows: Vec<Row> = Vec::new();
    let mut table = Table::new(
        "Kernel v1 vs v2 vs v3 (min wall time over reps)",
        &[
            "Graph",
            "Variant",
            "Time",
            "vs v1",
            "Modularity",
            "Passes",
            "Allocs fresh\u{2192}steady",
        ],
    );

    for (graph_name, graph) in graphs(&args) {
        // Round-robin the repetitions across variants (after one warmup
        // run each) so slow drift on a shared box biases every variant
        // equally instead of whichever ran last. Every variant owns one
        // pass-resident arena for the whole graph, so the warmup run is
        // the *cold* allocation measurement and every timed rep is a
        // *steady-state* one.
        let runners: Vec<(&'static str, Leiden)> = variants()
            .into_iter()
            .map(|(name, config)| (name, Leiden::new(config)))
            .collect();
        let mut workspaces: Vec<PassWorkspace> =
            runners.iter().map(|_| PassWorkspace::new()).collect();
        let mut best = vec![f64::INFINITY; runners.len()];
        // (allocs, bytes) of the cold run; (allocs, bytes, peak) of the
        // quietest steady rep.
        let mut fresh = vec![(0u64, 0u64); runners.len()];
        let mut steady = vec![(u64::MAX, 0u64, 0u64); runners.len()];
        let mut results = Vec::new();
        for (i, (_, runner)) in runners.iter().enumerate() {
            let before = alloc_count::snapshot();
            results.push(runner.run_in(&graph, &mut workspaces[i])); // warmup, keep the result
            let after = alloc_count::snapshot();
            fresh[i] = (after.allocs_since(&before), after.bytes_since(&before));
        }
        for _ in 0..args.reps {
            for (i, (_, runner)) in runners.iter().enumerate() {
                // Scope the live-byte high-water mark to this rep. The
                // base includes whatever is resident (the graph and all
                // variants' arenas), which is exactly the footprint a
                // resident service would carry.
                alloc_count::reset_watermarks();
                let before = alloc_count::snapshot();
                let start = Instant::now();
                let result = runner.run_in(&graph, &mut workspaces[i]);
                let seconds = start.elapsed().as_secs_f64();
                let after = alloc_count::snapshot();
                if seconds < best[i] {
                    best[i] = seconds;
                    results[i] = result; // keep the min-time rep's stats
                }
                let allocs = after.allocs_since(&before);
                if allocs < steady[i].0 {
                    steady[i] = (allocs, after.bytes_since(&before), after.peak);
                }
            }
        }
        let mut v1_seconds = f64::NAN;
        for (i, (variant, _)) in runners.iter().enumerate() {
            let variant = *variant;
            let best = best[i];
            let result = &results[i];
            if variant == "v1" {
                v1_seconds = best;
            }
            let modularity = gve_quality::modularity(&graph, &result.membership);
            table.push(vec![
                graph_name.clone(),
                variant.to_string(),
                report::fmt_secs(best),
                report::fmt_speedup(v1_seconds / best),
                format!("{modularity:.4}"),
                result.passes.to_string(),
                format!("{}\u{2192}{}", fresh[i].0, steady[i].0),
            ]);
            rows.push(Row {
                graph: graph_name.clone(),
                vertices: graph.num_vertices(),
                arcs: graph.num_arcs(),
                variant,
                seconds: best,
                modularity,
                passes: result.passes,
                phases: [
                    result.timings.local_move.as_secs_f64(),
                    result.timings.refinement.as_secs_f64(),
                    result.timings.aggregation.as_secs_f64(),
                    result.timings.other.as_secs_f64(),
                ],
                allocs_fresh: fresh[i].0,
                allocs_steady: steady[i].0,
                alloc_bytes_fresh: fresh[i].1,
                alloc_bytes_steady: steady[i].1,
                peak_bytes: steady[i].2,
            });
        }
    }
    table.print();
    if let Some(csv) = &args.csv {
        table.write_csv(csv).expect("failed to write CSV");
    }

    // Hand-rolled JSON (the dependency set has no serde).
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"suite\": \"kernels\",");
    let _ = writeln!(json, "  \"reps\": {},", args.reps);
    let _ = writeln!(json, "  \"seed\": {},", args.seed);
    let _ = writeln!(json, "  \"scale\": {},", args.scale);
    let _ = writeln!(json, "  \"quick\": {},", args.quick);
    let _ = writeln!(json, "  \"statistic\": \"min\",");
    json.push_str("  \"results\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"graph\": \"{}\", \"vertices\": {}, \"arcs\": {}, \"variant\": \"{}\", \
             \"seconds\": {:.6}, \"modularity\": {:.6}, \"passes\": {}, \
             \"local_move\": {:.6}, \"refinement\": {:.6}, \"aggregation\": {:.6}, \
             \"other\": {:.6}, \
             \"allocs_fresh\": {}, \"allocs_steady\": {}, \
             \"alloc_bytes_fresh\": {}, \"alloc_bytes_steady\": {}, \
             \"peak_bytes\": {}}}{comma}",
            row.graph,
            row.vertices,
            row.arcs,
            row.variant,
            row.seconds,
            row.modularity,
            row.passes,
            row.phases[0],
            row.phases[1],
            row.phases[2],
            row.phases[3],
            row.allocs_fresh,
            row.allocs_steady,
            row.alloc_bytes_fresh,
            row.alloc_bytes_steady,
            row.peak_bytes,
        );
    }
    json.push_str("  ]\n}\n");

    let path = args.json.as_deref().unwrap_or("BENCH_kernels.json");
    std::fs::write(path, json).expect("failed to write JSON report");
    eprintln!("wrote {path}");

    // The zero-steady-state-allocation regression gate (CI bench-smoke).
    if let Some(bound) = args.assert_steady_allocs {
        let mut violated = false;
        for row in &rows {
            if row.allocs_steady > bound {
                violated = true;
                eprintln!(
                    "alloc gate FAILED: {}/{} performed {} steady-state allocations \
                     (bound {bound}, cold run {})",
                    row.graph, row.variant, row.allocs_steady, row.allocs_fresh
                );
            }
        }
        if violated {
            std::process::exit(1);
        }
        eprintln!(
            "alloc gate passed: every steady-state run stayed within \
             {bound} allocations"
        );
    }

    // The kernel-v3 performance gate (CI bench-smoke): on every graph
    // the best v3 variant must beat v1 within the configured noise
    // tolerance (`best < v1 * tolerance`; tolerance 1.0 = strictly
    // faster). CI passes a small margin so a scheduler hiccup on a
    // shared runner can't fail the gate nondeterministically.
    if args.assert_v3_beats_v1 {
        let tolerance = args.v3_tolerance;
        let mut graphs: Vec<&str> = rows.iter().map(|r| r.graph.as_str()).collect();
        graphs.dedup();
        let mut violated = false;
        for graph in graphs {
            let v1 = rows
                .iter()
                .find(|r| r.graph == graph && r.variant == "v1")
                .expect("v1 row missing")
                .seconds;
            let (best_variant, best) = rows
                .iter()
                .filter(|r| r.graph == graph && r.variant.starts_with("v3"))
                .map(|r| (r.variant, r.seconds))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("v3 rows missing");
            if best < v1 * tolerance {
                eprintln!(
                    "v3 gate: {graph}: {best_variant} {} vs v1 {} ({:.2}x)",
                    report::fmt_secs(best),
                    report::fmt_secs(v1),
                    v1 / best
                );
            } else {
                violated = true;
                eprintln!(
                    "v3 gate FAILED: {graph}: best v3 variant {best_variant} {} \
                     is not faster than v1 {} (tolerance {tolerance:.2})",
                    report::fmt_secs(best),
                    report::fmt_secs(v1)
                );
            }
        }
        if violated {
            std::process::exit(1);
        }
        eprintln!(
            "v3 gate passed: v3 beats v1 on every suite graph \
             (tolerance {tolerance:.2})"
        );
    }
}
