//! Extension experiment: convergence curves of the local-moving phase.
//!
//! Prints each pass's per-iteration objective gain (the `ΔQ` of
//! Algorithm 2's convergence check) for the default configuration vs the
//! medium variant (no threshold scaling). This is the data behind the
//! threshold-scaling design: the first pass's gains decay geometrically,
//! so a loose initial tolerance cuts the long tail, and later passes run
//! tighter where iterations are cheap.
//!
//! ```text
//! cargo run --release -p gve-bench --bin convergence_curve
//! ```

use gve_bench::{report::Table, BarChart, BenchArgs};
use gve_leiden::{Leiden, LeidenConfig, Variant};

fn main() {
    let args = BenchArgs::parse();
    args.install_threads();
    // One representative graph per class keeps the output readable.
    let suite = gve_generate::suite::quick_suite();

    for dataset in suite {
        let graph = dataset.generate(args.scale, args.seed);
        let mut table = Table::new(
            format!(
                "convergence on {}: per-iteration gain per pass",
                dataset.name
            ),
            &["Config", "Pass", "Tolerance", "Iteration gains"],
        );
        for (name, variant) in [("default", Variant::Default), ("medium", Variant::Medium)] {
            let config = LeidenConfig::default().variant(variant);
            let result = Leiden::new(config.clone()).run(&graph);
            let mut tolerance = config.initial_tolerance;
            for stats in &result.pass_stats {
                let gains: Vec<String> = stats
                    .iteration_gains
                    .iter()
                    .map(|g| format!("{g:.4}"))
                    .collect();
                table.push(vec![
                    name.to_string(),
                    stats.pass.to_string(),
                    format!("{tolerance:.0e}"),
                    gains.join(" "),
                ]);
                if config.threshold_scaling {
                    tolerance /= config.tolerance_drop;
                }
            }
        }
        table.print();

        // First-pass decay as a chart.
        let result = Leiden::default().run(&graph);
        if let Some(first) = result.pass_stats.first() {
            let mut chart = BarChart::new(format!(
                "{}: first-pass gain decay (iteration vs ΔQ)",
                dataset.name
            ));
            for (i, &g) in first.iteration_gains.iter().enumerate() {
                chart.push(format!("iter {i}"), g);
            }
            print!("{}", chart.render(40));
            println!();
        }
    }
    println!(
        "Expected shape: geometric decay within each pass; the default variant stops \
         each pass once the gain falls under the (scaled) tolerance."
    );

    if let Some(csv) = &args.csv {
        eprintln!("note: convergence tables are printed only (no CSV writer wired): {csv}");
    }
}
