//! Figure 8: runtime / |E| factor of GVE-Leiden per graph.
//!
//! The paper's observation: low-degree graphs (road, k-mer) and graphs
//! with poor community structure (social) cost more time *per edge* than
//! dense, well-clusterable web crawls.
//!
//! ```text
//! cargo run --release -p gve-bench --bin fig8_rate
//! ```

use gve_bench::{report, report::Table, BenchArgs};
use std::time::Instant;

fn main() {
    let args = BenchArgs::parse();
    args.install_threads();

    let mut table = Table::new(
        "Figure 8: runtime/|E| factor with GVE-Leiden (ns per arc; lower is better)",
        &["Graph", "Class", "|E|", "Time", "ns per arc", "Edges/s"],
    );
    let mut by_class: std::collections::BTreeMap<&str, (f64, usize)> = Default::default();

    for dataset in args.suite() {
        let graph = dataset.generate(args.scale, args.seed);
        let mut total = 0.0;
        for _ in 0..args.reps {
            let start = Instant::now();
            let _ = gve_leiden::leiden(&graph);
            total += start.elapsed().as_secs_f64();
        }
        let seconds = total / args.reps as f64;
        let arcs = graph.num_arcs();
        let per_arc_ns = seconds * 1e9 / arcs as f64;
        let entry = by_class.entry(dataset.class.title()).or_default();
        entry.0 += per_arc_ns;
        entry.1 += 1;
        table.push(vec![
            dataset.name.to_string(),
            dataset.class.title().to_string(),
            arcs.to_string(),
            report::fmt_secs(seconds),
            format!("{per_arc_ns:.1}"),
            format!("{:.2}M", arcs as f64 / seconds / 1e6),
        ]);
    }
    table.print();

    println!("Per-class average ns/arc (paper: road & k-mer highest, web lowest):");
    for (class, (sum, count)) in by_class {
        println!("  {class}: {:.1}", sum / count as f64);
    }

    if let Some(csv) = &args.csv {
        table.write_csv(csv).expect("failed to write CSV");
    }
}
