//! Markdown/CSV table emission for experiment results.

use std::io::Write;

/// A simple result table: title, column headers, string rows.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Table caption, printed as a markdown heading.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows; each must have `headers.len()` cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics when the cell count does not match the header count.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} != header width {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Renders as a github-flavoured markdown table with aligned pipes.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            format!("| {} |\n", padded.join(" | "))
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let dashes: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&fmt_row(&dashes, &widths));
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Prints the markdown rendering to stdout.
    pub fn print(&self) {
        print!("{}", self.to_markdown());
        println!();
    }

    /// Renders as CSV (headers + rows, comma-separated, quotes around
    /// cells containing commas).
    pub fn to_csv(&self) -> String {
        let quote = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| quote(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Appends the CSV rendering to a file (creating it if needed),
    /// prefixed by a `# title` comment line.
    pub fn write_csv(&self, path: &str) -> std::io::Result<()> {
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        writeln!(file, "# {}", self.title)?;
        file.write_all(self.to_csv().as_bytes())
    }
}

/// Formats a duration in seconds with adaptive precision.
pub fn fmt_secs(seconds: f64) -> String {
    if seconds < 1e-3 {
        format!("{:.1}us", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2}ms", seconds * 1e3)
    } else {
        format!("{seconds:.3}s")
    }
}

/// Formats a speedup factor.
pub fn fmt_speedup(factor: f64) -> String {
    format!("{factor:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_rendering() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.push(vec!["a".into(), "1".into()]);
        t.push(vec!["longer".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.starts_with("### demo"));
        assert!(md.contains("| name   | value |"));
        assert!(md.contains("| longer | 2     |"));
    }

    #[test]
    fn csv_rendering_with_quotes() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push(vec!["x,y".into(), "plain".into()]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n\"x,y\",plain\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push(vec!["only-one".into()]);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_secs(0.0000005), "0.5us");
        assert_eq!(fmt_secs(0.005), "5.00ms");
        assert_eq!(fmt_secs(2.5), "2.500s");
        assert_eq!(fmt_speedup(3.14511), "3.15x");
    }

    #[test]
    fn csv_file_roundtrip() {
        let path = std::env::temp_dir().join("gve-bench-report-test.csv");
        let path = path.to_str().unwrap().to_string();
        let _ = std::fs::remove_file(&path);
        let mut t = Table::new("demo", &["a"]);
        t.push(vec!["1".into()]);
        t.write_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("# demo"));
        assert!(content.contains("a\n1\n"));
        let _ = std::fs::remove_file(&path);
    }
}
