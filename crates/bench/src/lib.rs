//! Experiment harness for the GVE-Leiden reproduction.
//!
//! One binary per table/figure of the paper's evaluation section (see
//! DESIGN.md §4 for the full index):
//!
//! | binary | reproduces |
//! |---|---|
//! | `table2_datasets` | Table 2 (dataset statistics + `\|Γ\|`) |
//! | `fig1_2_refinement` | Figures 1–2 (greedy vs random × variants) |
//! | `fig3_4_labeling` | Figures 3–4 (move- vs refine-based labeling) |
//! | `fig6_compare` | Figure 6(a–d) + Table 1 (implementation matrix) |
//! | `fig7_splits` | Figure 7 (phase and pass splits) |
//! | `fig8_rate` | Figure 8 (runtime /\|E\| factor) |
//! | `fig9_scaling` | Figure 9 (strong scaling with phase splits) |
//! | `ablation` | §4.1 optimization claims (pruning, hashtable, tolerances) |
//!
//! Every binary accepts `--scale <f>` (dataset size multiplier),
//! `--reps <n>` (timing repetitions, paper uses 5), `--seed <n>`, and
//! `--csv <path>` (also emit CSV). Output is a markdown table whose rows
//! mirror the series of the corresponding figure.

#![warn(missing_docs)]

pub mod args;
pub mod chart;
pub mod report;
pub mod runner;

pub use args::BenchArgs;
pub use chart::BarChart;
pub use report::Table;
pub use runner::{extended_implementations, implementations, measure, Implementation, Measured};
