//! Terminal bar charts — the paper's figures are bar charts, so the
//! harness can render the same visual shape directly in the terminal.

/// A horizontal bar chart with labeled rows.
#[derive(Debug, Clone, Default)]
pub struct BarChart {
    /// Chart caption.
    pub title: String,
    /// `(label, value)` rows in display order.
    pub rows: Vec<(String, f64)>,
    /// Use a logarithmic value axis (the paper's runtime figures are
    /// log-scale).
    pub log_scale: bool,
}

impl BarChart {
    /// Creates an empty chart.
    pub fn new(title: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            rows: Vec::new(),
            log_scale: false,
        }
    }

    /// Switches the value axis to log scale.
    pub fn log_scale(mut self) -> Self {
        self.log_scale = true;
        self
    }

    /// Appends a row.
    pub fn push(&mut self, label: impl Into<String>, value: f64) {
        self.rows.push((label.into(), value));
    }

    /// Renders the chart with bars up to `width` characters.
    pub fn render(&self, width: usize) -> String {
        let mut out = format!("{}\n", self.title);
        if self.rows.is_empty() {
            return out;
        }
        let label_width = self.rows.iter().map(|(l, _)| l.len()).max().unwrap();
        let transform = |v: f64| -> f64 {
            if self.log_scale {
                // Map onto log axis anchored at the minimum positive value.
                let min = self
                    .rows
                    .iter()
                    .map(|&(_, v)| v)
                    .filter(|&v| v > 0.0)
                    .fold(f64::INFINITY, f64::min);
                if v <= 0.0 || !min.is_finite() {
                    0.0
                } else {
                    (v / min).ln() + 1.0
                }
            } else {
                v.max(0.0)
            }
        };
        let max = self
            .rows
            .iter()
            .map(|&(_, v)| transform(v))
            .fold(0.0f64, f64::max);
        for (label, value) in &self.rows {
            let scaled = if max > 0.0 {
                (transform(*value) / max * width as f64).round() as usize
            } else {
                0
            };
            out.push_str(&format!(
                "  {label:<label_width$} |{} {value:.4}\n",
                "#".repeat(scaled)
            ));
        }
        out
    }
}

/// A stacked 100%-bar (the Figure 7 phase-split shape): each row is
/// split into labeled segments proportional to its fractions.
pub fn stacked_bar(label: &str, fractions: &[(char, f64)], width: usize) -> String {
    let mut bar = String::new();
    let total: f64 = fractions.iter().map(|&(_, f)| f).sum();
    if total <= 0.0 {
        return format!("  {label} |{}|", " ".repeat(width));
    }
    let mut used = 0usize;
    for (i, &(symbol, fraction)) in fractions.iter().enumerate() {
        let cells = if i + 1 == fractions.len() {
            width.saturating_sub(used)
        } else {
            ((fraction / total) * width as f64).round() as usize
        };
        bar.push_str(&symbol.to_string().repeat(cells));
        used += cells;
    }
    bar.truncate(width);
    format!("  {label} |{bar}|")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_bars_scale_proportionally() {
        let mut chart = BarChart::new("demo");
        chart.push("a", 1.0);
        chart.push("bb", 2.0);
        let text = chart.render(10);
        assert!(text.starts_with("demo\n"));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        let hashes = |s: &str| s.matches('#').count();
        assert_eq!(hashes(lines[1]), 5);
        assert_eq!(hashes(lines[2]), 10);
        // Labels padded to equal width.
        assert!(lines[1].contains("a  |"));
    }

    #[test]
    fn log_scale_compresses_ratios() {
        let mut chart = BarChart::new("log").log_scale();
        chart.push("small", 1.0);
        chart.push("big", 1000.0);
        let text = chart.render(40);
        let lines: Vec<&str> = text.lines().collect();
        let hashes = |s: &str| s.matches('#').count();
        // Log scale: the 1000× bar is not 1000× longer.
        assert!(hashes(lines[2]) <= 40);
        assert!(hashes(lines[1]) >= 4, "{text}");
    }

    #[test]
    fn empty_chart_renders_title_only() {
        let chart = BarChart::new("empty");
        assert_eq!(chart.render(10), "empty\n");
    }

    #[test]
    fn zero_values_render_no_bar() {
        let mut chart = BarChart::new("zeros");
        chart.push("z", 0.0);
        let text = chart.render(10);
        assert!(!text.lines().nth(1).unwrap().contains('#'));
    }

    #[test]
    fn stacked_bar_fills_width() {
        let bar = stacked_bar("g", &[('L', 0.5), ('R', 0.3), ('A', 0.2)], 20);
        let inner = bar.split('|').nth(1).unwrap();
        assert_eq!(inner.len(), 20);
        assert_eq!(inner.matches('L').count(), 10);
        assert_eq!(inner.matches('R').count(), 6);
        assert_eq!(inner.matches('A').count(), 4);
    }

    #[test]
    fn stacked_bar_handles_zero_total() {
        let bar = stacked_bar("g", &[('L', 0.0)], 8);
        assert!(bar.contains("|        |"));
    }
}
