//! Uniform measurement of every community-detection implementation.

use gve_graph::CsrGraph;
use gve_graph::VertexId;
use std::time::Instant;

/// Boxed detection routine: graph in, membership vector out.
pub type DetectFn = Box<dyn Fn(&CsrGraph) -> Vec<VertexId> + Sync>;

/// A community-detection implementation under test.
pub struct Implementation {
    /// Display name used in tables.
    pub name: &'static str,
    /// Whether the implementation is parallel (for Table 1's column).
    pub parallel: bool,
    /// Runs detection and returns the membership vector.
    pub run: DetectFn,
}

/// The five implementations of the Figure 6 comparison, in the paper's
/// order. The external systems map to local stand-ins as documented in
/// DESIGN.md (cuGraph has none):
///
/// * *Original Leiden* → `seq-leiden` (queue-driven, randomized refine)
/// * *igraph Leiden* → `seq-louvain`-style sequential engine is not a
///   Leiden, so igraph's role is also covered by `seq-leiden`; we keep
///   sequential Louvain in the matrix as the disconnected-communities
///   producer
/// * *NetworKit Leiden* → `nk-leiden` (global queues + locks)
/// * plus the paper's own substrate `gve-louvain` and the contribution
///   `gve-leiden`.
pub fn implementations() -> Vec<Implementation> {
    vec![
        Implementation {
            name: "seq-leiden",
            parallel: false,
            run: Box::new(|g| gve_baselines::seq::sequential_leiden(g).membership),
        },
        Implementation {
            name: "seq-louvain",
            parallel: false,
            run: Box::new(|g| gve_louvain::seq::sequential_louvain(g, 1e-6, 10).membership),
        },
        Implementation {
            name: "nk-leiden",
            parallel: true,
            run: Box::new(|g| gve_baselines::nk::nk_leiden(g).membership),
        },
        Implementation {
            name: "gve-louvain",
            parallel: true,
            run: Box::new(|g| gve_louvain::louvain(g).membership),
        },
        Implementation {
            name: "gve-leiden",
            parallel: true,
            run: Box::new(|g| gve_leiden::leiden(g).membership),
        },
    ]
}

/// The paper's five implementations plus RAK label propagation — the
/// cheap quality floor, used by the extension experiments.
pub fn extended_implementations() -> Vec<Implementation> {
    let mut imps = implementations();
    imps.insert(
        0,
        Implementation {
            name: "lpa-rak",
            parallel: true,
            run: Box::new(|g| gve_baselines::lpa::label_propagation(g).membership),
        },
    );
    imps
}

/// One measured run: averaged wall time plus quality metrics.
#[derive(Debug, Clone)]
pub struct Measured {
    /// Implementation name.
    pub name: &'static str,
    /// Mean wall-clock seconds over the repetitions.
    pub seconds: f64,
    /// Modularity of the last repetition's partition (Figure 6(c)).
    pub modularity: f64,
    /// Number of communities (last repetition).
    pub communities: usize,
    /// Worst fraction of internally-disconnected communities observed
    /// over the repetitions (Figure 6(d)): a correct Leiden must keep
    /// this at exactly zero on every run, so the maximum is the honest
    /// statistic.
    pub disconnected_fraction: f64,
}

/// Times `imp` on `graph` over `reps` repetitions (the paper averages
/// over five) and evaluates every resulting partition.
pub fn measure(graph: &CsrGraph, imp: &Implementation, reps: usize) -> Measured {
    assert!(reps >= 1);
    let mut total = 0.0;
    let mut membership = Vec::new();
    let mut worst_disconnected = 0.0f64;
    for _ in 0..reps {
        let start = Instant::now();
        membership = (imp.run)(graph);
        total += start.elapsed().as_secs_f64();
        let report = gve_quality::disconnected_communities(graph, &membership);
        worst_disconnected = worst_disconnected.max(report.fraction());
    }
    let modularity = gve_quality::modularity(graph, &membership);
    Measured {
        name: imp.name,
        seconds: total / reps as f64,
        modularity,
        communities: gve_quality::community_count(&membership),
        disconnected_fraction: worst_disconnected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_five_in_paper_order() {
        let imps = implementations();
        let names: Vec<_> = imps.iter().map(|i| i.name).collect();
        assert_eq!(
            names,
            vec![
                "seq-leiden",
                "seq-louvain",
                "nk-leiden",
                "gve-louvain",
                "gve-leiden"
            ]
        );
        assert!(!imps[0].parallel);
        assert!(imps[4].parallel);
    }

    #[test]
    fn measure_produces_consistent_metrics() {
        let g = gve_generate::sbm::PlantedPartition::new(400, 4, 10.0, 1.0)
            .seed(3)
            .generate()
            .graph;
        for imp in implementations() {
            let m = measure(&g, &imp, 1);
            assert!(m.seconds > 0.0, "{}", imp.name);
            assert!(
                (-0.5..=1.0).contains(&m.modularity),
                "{}: Q = {}",
                imp.name,
                m.modularity
            );
            assert!(m.communities >= 1, "{}", imp.name);
            assert!((0.0..=1.0).contains(&m.disconnected_fraction));
            // Well-separated SBM: everything should find decent structure.
            assert!(m.modularity > 0.3, "{}: Q = {}", imp.name, m.modularity);
        }
    }
}
