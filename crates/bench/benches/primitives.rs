//! Criterion micro-benchmarks of the primitive substrate: the
//! collision-free hashtable against `std::collections::HashMap` (the
//! §4.1 hashtable claim) and sequential vs parallel prefix sums.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gve_prim::scan::{exclusive_scan_in_place, parallel_exclusive_scan};
use gve_prim::CommunityMap;
use std::collections::HashMap;
use std::hint::black_box;

fn bench_hashtable(c: &mut Criterion) {
    let mut group = c.benchmark_group("hashtable_accumulate");
    // Simulated neighbourhood scan: 64 accumulations over 16 distinct
    // communities out of a 100k id space — the local-moving hot loop.
    let keys: Vec<u32> = (0..64u32).map(|i| (i % 16) * 6151).collect();
    group.bench_function("collision_free", |b| {
        let mut map = CommunityMap::new(100_000);
        b.iter(|| {
            map.clear();
            for &k in &keys {
                map.add(k, 1.0);
            }
            black_box(map.max_key())
        });
    });
    group.bench_function("std_hashmap", |b| {
        let mut map: HashMap<u32, f64> = HashMap::new();
        b.iter(|| {
            map.clear();
            for &k in &keys {
                *map.entry(k).or_insert(0.0) += 1.0;
            }
            black_box(
                map.iter()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .map(|(&k, &v)| (k, v)),
            )
        });
    });
    group.finish();
}

fn bench_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("exclusive_scan");
    for size in [1 << 14, 1 << 20] {
        let input: Vec<u64> = (0..size as u64).map(|i| i % 17).collect();
        group.bench_with_input(BenchmarkId::new("sequential", size), &input, |b, input| {
            b.iter_batched(
                || input.clone(),
                |mut v| black_box(exclusive_scan_in_place(&mut v)),
                criterion::BatchSize::LargeInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("parallel", size), &input, |b, input| {
            b.iter_batched(
                || input.clone(),
                |mut v| black_box(parallel_exclusive_scan(&mut v)),
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_hashtable, bench_scan
}
criterion_main!(benches);
