//! End-to-end Criterion comparison of every implementation on one graph
//! per dataset class — the microbench companion to `fig6_compare`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_implementations(c: &mut Criterion) {
    let mut group = c.benchmark_group("implementations");
    group.sample_size(10);
    for dataset in gve_generate::suite::quick_suite() {
        // Quarter scale keeps the full 5-implementation matrix quick.
        let graph = dataset.generate(0.25, 42);
        for imp in gve_bench::implementations() {
            group.bench_with_input(
                BenchmarkId::new(imp.name, dataset.name),
                &graph,
                |b, graph| {
                    b.iter(|| black_box((imp.run)(graph)));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_implementations);
criterion_main!(benches);
