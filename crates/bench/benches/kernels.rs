//! Criterion microbenchmarks of the v1 (two-pass, table-only) versus v2
//! (fused, degree-aware) scan kernels, on an R-MAT web graph (skewed
//! degrees — exercises the two-tier dispatch) and a planted-partition
//! SBM (near-uniform degrees — almost every vertex rides the stack
//! tier). Also measures the edge-layout and vertex-ordering variants of
//! the full pipeline. The machine-readable counterpart of this suite is
//! the `kernels` binary, which emits `BENCH_kernels.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use gve_graph::props::vertex_weights;
use gve_graph::CsrGraph;
use gve_leiden::{
    localmove, EdgeLayout, KernelVersion, Leiden, LeidenConfig, Objective, VertexOrdering,
};
use gve_prim::atomics::atomic_f64_from_slice;
use gve_prim::{AtomicBitset, CommunityMap, PerThread};
use std::hint::black_box;
use std::sync::atomic::AtomicU32;

fn graphs() -> Vec<(&'static str, CsrGraph)> {
    vec![
        (
            "rmat13",
            gve_generate::rmat::Rmat::web(13, 8.0).seed(1).generate(),
        ),
        (
            "sbm10k",
            gve_generate::PlantedPartition::new(10_000, 40, 8.0, 2.0)
                .seed(1)
                .generate()
                .graph,
        ),
    ]
}

fn kernel_configs() -> Vec<(&'static str, LeidenConfig)> {
    let base = LeidenConfig::default();
    vec![
        ("v1", base.clone().kernel(KernelVersion::V1)),
        ("v2", base.clone().kernel(KernelVersion::V2)),
    ]
}

/// One full local-moving phase from singletons, per kernel and graph.
fn bench_local_move(c: &mut Criterion) {
    for (graph_name, graph) in graphs() {
        let n = graph.num_vertices();
        let weights = vertex_weights(&graph);
        let coeffs = Objective::default().coeffs(graph.total_arc_weight() / 2.0);
        let tables = PerThread::new(move || CommunityMap::new(n));
        for (kernel_name, config) in kernel_configs() {
            c.bench_function(
                format!("kernel/local_move/{kernel_name}/{graph_name}"),
                |b| {
                    b.iter(|| {
                        let membership: Vec<AtomicU32> =
                            (0..n as u32).map(AtomicU32::new).collect();
                        let sigma = atomic_f64_from_slice(&weights);
                        let unprocessed = AtomicBitset::new_all_set(n);
                        black_box(localmove::local_move(
                            &graph,
                            &membership,
                            &weights,
                            &sigma,
                            coeffs,
                            config.initial_tolerance,
                            &config,
                            &tables,
                            &unprocessed,
                        ))
                    });
                },
            );
        }
    }
}

/// Full detection runs, including the layout and ordering variants that
/// only pay off (or cost) across whole passes.
fn bench_full_runs(c: &mut Criterion) {
    let variants: Vec<(&'static str, LeidenConfig)> = {
        let base = LeidenConfig::default();
        vec![
            ("v1", base.clone().kernel(KernelVersion::V1)),
            ("v2", base.clone().kernel(KernelVersion::V2)),
            (
                "v2_interleaved",
                base.clone()
                    .kernel(KernelVersion::V2)
                    .layout(EdgeLayout::Interleaved),
            ),
            (
                "v2_degree",
                base.clone()
                    .kernel(KernelVersion::V2)
                    .ordering(VertexOrdering::DegreeDesc),
            ),
        ]
    };
    for (graph_name, graph) in graphs() {
        for (variant, config) in &variants {
            let runner = Leiden::new(config.clone());
            c.bench_function(format!("kernel/full/{variant}/{graph_name}"), |b| {
                b.iter(|| black_box(runner.run(&graph)));
            });
        }
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_local_move, bench_full_runs
}
criterion_main!(benches);
