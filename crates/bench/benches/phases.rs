//! Criterion benchmarks of the individual Leiden phases on a fixed
//! R-MAT graph: the local-moving phase (Algorithm 2), the aggregation
//! phase (Algorithm 4), and full single-pass vs multi-pass runs.

use criterion::{criterion_group, criterion_main, Criterion};
use gve_graph::props::vertex_weights;
use gve_leiden::{aggregate, localmove, Leiden, LeidenConfig, Objective};
use gve_prim::atomics::atomic_f64_from_slice;
use gve_prim::{AtomicBitset, CommunityMap, PerThread};
use std::hint::black_box;
use std::sync::atomic::AtomicU32;

fn bench_local_move(c: &mut Criterion) {
    let graph = gve_generate::rmat::Rmat::web(13, 8.0).seed(1).generate();
    let n = graph.num_vertices();
    let weights = vertex_weights(&graph);
    let coeffs = Objective::default().coeffs(graph.total_arc_weight() / 2.0);
    let config = LeidenConfig::default();
    let tables = PerThread::new(move || CommunityMap::new(n));
    c.bench_function("phase/local_move/web13", |b| {
        b.iter(|| {
            let membership: Vec<AtomicU32> = (0..n as u32).map(AtomicU32::new).collect();
            let sigma = atomic_f64_from_slice(&weights);
            let unprocessed = AtomicBitset::new_all_set(n);
            black_box(localmove::local_move(
                &graph,
                &membership,
                &weights,
                &sigma,
                coeffs,
                config.initial_tolerance,
                &config,
                &tables,
                &unprocessed,
            ))
        });
    });
}

fn bench_aggregate(c: &mut Criterion) {
    let graph = gve_generate::rmat::Rmat::web(13, 8.0).seed(1).generate();
    let n = graph.num_vertices();
    // A realistic post-refinement partition, obtained from one Leiden
    // pass.
    let config = LeidenConfig {
        max_passes: 1,
        ..LeidenConfig::default()
    };
    let partition = Leiden::new(config).run(&graph).membership;
    let k = gve_quality::community_count(&partition);
    let tables = PerThread::new(move || CommunityMap::new(n));
    c.bench_function("phase/aggregate/web13", |b| {
        b.iter(|| {
            let atomic: Vec<AtomicU32> = partition.iter().map(|&c| AtomicU32::new(c)).collect();
            black_box(aggregate::aggregate(
                &graph, &atomic, &partition, k, 512, &tables, None,
            ))
        });
    });
}

fn bench_full_runs(c: &mut Criterion) {
    let graph = gve_generate::rmat::Rmat::web(13, 8.0).seed(1).generate();
    c.bench_function("leiden/full/web13", |b| {
        b.iter(|| black_box(gve_leiden::leiden(&graph)));
    });
    let one_pass = LeidenConfig {
        max_passes: 1,
        ..LeidenConfig::default()
    };
    let runner = Leiden::new(one_pass);
    c.bench_function("leiden/single_pass/web13", |b| {
        b.iter(|| black_box(runner.run(&graph)));
    });
    c.bench_function("louvain/full/web13", |b| {
        b.iter(|| black_box(gve_louvain::louvain(&graph)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_local_move, bench_aggregate, bench_full_runs
}
criterion_main!(benches);
