//! Criterion benchmark of the dynamic update strategies: per-batch
//! refresh cost for each strategy at a fixed batch size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gve_dynamic::{apply_batch, BatchUpdate, DynamicLeiden, DynamicStrategy};
use gve_leiden::LeidenConfig;
use gve_prim::Xorshift32;
use std::hint::black_box;

fn make_batch(graph: &gve_graph::CsrGraph, size: usize, seed: u32) -> BatchUpdate {
    let mut rng = Xorshift32::new(seed);
    let n = graph.num_vertices() as u32;
    let mut batch = BatchUpdate::new();
    for _ in 0..size {
        let u = rng.next_bounded(n);
        let v = rng.next_bounded(n);
        if u != v {
            batch.insert(u, v, 1.0);
        }
    }
    batch
}

fn bench_strategies(c: &mut Criterion) {
    let base = gve_generate::PlantedPartition::new(8000, 20, 14.0, 1.0)
        .seed(1)
        .generate()
        .graph;
    let batch = make_batch(&base, 500, 7);
    let mut group = c.benchmark_group("dynamic_refresh");
    group.sample_size(10);
    for (name, strategy) in [
        ("full_static", DynamicStrategy::FullStatic),
        ("naive_dynamic", DynamicStrategy::NaiveDynamic),
        ("delta_screening", DynamicStrategy::DeltaScreening),
        ("dynamic_frontier", DynamicStrategy::DynamicFrontier),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &strategy, |b, &s| {
            b.iter_batched(
                || DynamicLeiden::new(base.clone(), LeidenConfig::default(), s),
                |mut detector| black_box(detector.apply(&batch)),
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();

    c.bench_function("dynamic_refresh/apply_batch_only", |b| {
        b.iter(|| black_box(apply_batch(&base, &batch)));
    });
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
