//! Criterion benchmarks of the dataset generators and graph builders —
//! the substrate costs that sit in front of every experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use gve_generate::{rmat::Rmat, PlantedPartition};
use gve_graph::GraphBuilder;
use std::hint::black_box;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.sample_size(10);
    group.bench_function("rmat_web_scale13", |b| {
        b.iter(|| black_box(Rmat::web(13, 8.0).seed(1).generate()));
    });
    group.bench_function("planted_partition_16k", |b| {
        b.iter(|| {
            black_box(
                PlantedPartition::new(16_000, 32, 12.0, 2.0)
                    .seed(1)
                    .generate(),
            )
        });
    });
    group.bench_function("road_grid_40k", |b| {
        b.iter(|| black_box(gve_generate::grid::road_grid(200, 200, 2.1, 1)));
    });
    group.bench_function("kmer_chains_50k", |b| {
        b.iter(|| black_box(gve_generate::kmer::kmer_chains(50_000, 16, 0.05, 1)));
    });
    group.finish();
}

fn bench_builder(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_builder");
    group.sample_size(10);
    // A fixed raw edge list with duplicates, exercised through the full
    // normalize pipeline (symmetrize + sort + dedup).
    let mut edges = Vec::with_capacity(200_000);
    let mut state = 42u64;
    for _ in 0..200_000 {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let u = ((state >> 16) % 20_000) as u32;
        let v = ((state >> 40) % 20_000) as u32;
        edges.push((u, v, 1.0f32));
    }
    group.bench_function("normalize_200k_edges", |b| {
        b.iter(|| black_box(GraphBuilder::from_edges(20_000, &edges)));
    });
    let graph = GraphBuilder::from_edges(20_000, &edges);
    group.bench_function("binary_encode_decode", |b| {
        b.iter(|| {
            let bytes = gve_graph::io::binary::encode(&graph);
            black_box(gve_graph::io::binary::decode(&bytes).unwrap())
        });
    });
    group.bench_function("connected_components", |b| {
        b.iter(|| black_box(gve_graph::traversal::connected_components(&graph)));
    });
    group.finish();
}

criterion_group!(benches, bench_generators, bench_builder);
criterion_main!(benches);
