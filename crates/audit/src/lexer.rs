//! A minimal Rust lexer — just enough syntax awareness for auditing.
//!
//! The workspace builds in network-less containers, so `syn` is not
//! available; the lint rules do not need a full AST anyway. What they
//! *do* need, and what a plain `grep` cannot give them, is to tell
//! code from comments and string literals: `"unsafe"` inside a string,
//! `Relaxed` inside a doc comment, or `unwrap` in `// unwrap is fine
//! here` must never count as code. This lexer produces a flat token
//! stream with line numbers, classifying comments (which the rules
//! read for `SAFETY:` / ordering justifications) separately from code
//! tokens (which the rules pattern-match).
//!
//! Handled: line/block comments (nested), doc comments, string
//! literals with escapes, raw strings `r#"…"#` (any `#` depth), byte
//! and C strings, char literals vs. lifetimes, identifiers (including
//! raw `r#ident`), numbers, and punctuation. Not handled (not needed):
//! float literal edge cases, shebangs, `macro_rules!` matcher depth.

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `Ordering`, `unwrap`, ...).
    Ident,
    /// Single punctuation byte (`.`, `(`, `{`, `:`, ...).
    Punct,
    /// Literal: string/char/number. Text is not preserved verbatim for
    /// strings (rules never need it), only a placeholder.
    Literal,
    /// `//` or `/* */` comment, including doc comments. Text holds the
    /// full comment body (without the final newline).
    Comment,
}

/// One token with its starting line (1-based).
#[derive(Debug, Clone)]
pub struct Tok {
    /// Classification.
    pub kind: TokKind,
    /// Token text (comments keep their body; strings are collapsed).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// True for a code identifier equal to `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True for a punctuation token equal to `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// Lexes `source` into a token stream. Never fails: unterminated
/// constructs consume to end of input (the audit still sees everything
/// before the defect, and rustc will reject the file anyway).
pub fn lex(source: &str) -> Vec<Tok> {
    let bytes = source.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Byte-level scanning with manual line counting keeps the lexer
    // simple; token text is sliced back out of `source` (always on
    // char boundaries because every branch advances past full chars).
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Comment,
                    text: source[start..i].to_string(),
                    line,
                });
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                let start_line = line;
                let mut depth = 1u32;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                toks.push(Tok {
                    kind: TokKind::Comment,
                    text: source[start..i].to_string(),
                    line: start_line,
                });
            }
            b'"' => {
                // Capture the line *before* the body scan: a multiline
                // string must report where it starts, not where it ends.
                let start_line = line;
                i = skip_string(bytes, i + 1, &mut line);
                toks.push(Tok {
                    kind: TokKind::Literal,
                    text: "\"…\"".to_string(),
                    line: start_line,
                });
            }
            // Raw / byte / C strings: r"…", r#"…"#, b"…", br#"…"#, c"…".
            b'r' | b'b' | b'c' if starts_string_prefix(bytes, i) => {
                let (next, start_line) = skip_prefixed_string(bytes, i, &mut line);
                i = next;
                toks.push(Tok {
                    kind: TokKind::Literal,
                    text: "\"…\"".to_string(),
                    line: start_line,
                });
            }
            b'\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                if is_lifetime(bytes, i) {
                    let start = i;
                    i += 1;
                    while i < bytes.len() && is_ident_byte(bytes[i]) {
                        i += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::Ident,
                        text: source[start..i].to_string(),
                        line,
                    });
                } else {
                    i += 1;
                    if bytes.get(i) == Some(&b'\\') {
                        i += 2; // escape + escaped byte
                    } else if i < bytes.len() {
                        // Skip one full (possibly multi-byte) char.
                        i += utf8_len(bytes[i]);
                    }
                    while i < bytes.len() && bytes[i] != b'\'' {
                        i += 1; // tolerate '\u{1F600}' style payloads
                    }
                    i += 1;
                    toks.push(Tok {
                        kind: TokKind::Literal,
                        text: "'…'".to_string(),
                        line,
                    });
                }
            }
            c if is_ident_start(c) => {
                let start = i;
                // Raw identifier r#ident.
                if c == b'r'
                    && bytes.get(i + 1) == Some(&b'#')
                    && bytes.get(i + 2).copied().is_some_and(is_ident_start)
                {
                    i += 2;
                }
                i += 1;
                while i < bytes.len() && is_ident_byte(bytes[i]) {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: source[start..i].to_string(),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (is_ident_byte(bytes[i]) || bytes[i] == b'.') {
                    // Stop a number's `.` from eating a method call:
                    // `1.max(2)` — only consume the dot when a digit
                    // follows it.
                    if bytes[i] == b'.' && !bytes.get(i + 1).is_some_and(u8::is_ascii_digit) {
                        break;
                    }
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Literal,
                    text: source[start..i].to_string(),
                    line,
                });
            }
            _ => {
                let len = utf8_len(b);
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: source[i..i + len].to_string(),
                    line,
                });
                i += len;
            }
        }
    }
    toks
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn utf8_len(b: u8) -> usize {
    match b {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// At `bytes[i] ∈ {r, b, c}` — does a string prefix start here
/// (`r"`, `r#`, `b"`, `br"`, `br#`, `c"`, ...)? Identifier characters
/// before a quote (like `weird"`) can't occur in valid Rust, so looking
/// one or two bytes ahead is enough.
fn starts_string_prefix(bytes: &[u8], i: usize) -> bool {
    matches!(
        (bytes[i], bytes.get(i + 1), bytes.get(i + 2)),
        (b'r' | b'c', Some(b'"'), _)
            | (b'r', Some(b'#'), Some(b'"' | b'#'))
            | (b'b', Some(b'"'), _)
            | (b'b', Some(b'r'), Some(b'"' | b'#'))
            | (b'b', Some(b'\''), _)
    )
}

/// Consumes a plain (escaped) string body starting *after* the opening
/// quote; returns the index after the closing quote.
fn skip_string(bytes: &[u8], mut i: usize, line: &mut u32) -> usize {
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Consumes `r#*"…"#*`, `b"…"`, `br#"…"#`, `b'…'`, `c"…"` starting at
/// the prefix; returns (index-after, starting line).
fn skip_prefixed_string(bytes: &[u8], mut i: usize, line: &mut u32) -> (usize, u32) {
    let start_line = *line;
    let mut raw = false;
    // Consume the prefix letters.
    while i < bytes.len() && matches!(bytes[i], b'r' | b'b' | b'c') {
        if bytes[i] == b'r' {
            raw = true;
        }
        i += 1;
        if i < bytes.len() && (bytes[i] == b'"' || bytes[i] == b'#' || bytes[i] == b'\'') {
            break;
        }
    }
    if i < bytes.len() && bytes[i] == b'\'' {
        // Byte char literal b'x' / b'\n'.
        i += 1;
        if bytes.get(i) == Some(&b'\\') {
            i += 2;
        } else {
            i += 1;
        }
        while i < bytes.len() && bytes[i] != b'\'' {
            i += 1;
        }
        return (i + 1, start_line);
    }
    let mut hashes = 0usize;
    while i < bytes.len() && bytes[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if i < bytes.len() && bytes[i] == b'"' {
        i += 1;
    }
    if raw {
        // Scan for `"` followed by `hashes` `#`s; no escapes in raw strings.
        while i < bytes.len() {
            if bytes[i] == b'\n' {
                *line += 1;
                i += 1;
            } else if bytes[i] == b'"' && bytes[i + 1..].iter().take(hashes).all(|&b| b == b'#') {
                return (i + 1 + hashes, start_line);
            } else {
                i += 1;
            }
        }
        (i, start_line)
    } else {
        (skip_string(bytes, i, line), start_line)
    }
}

/// At a `'`: lifetime if followed by an identifier NOT closed by a
/// quote right after (`'a,` vs `'a'`), or `'static`, `'_`.
fn is_lifetime(bytes: &[u8], i: usize) -> bool {
    let Some(&next) = bytes.get(i + 1) else {
        return false;
    };
    if !is_ident_start(next) {
        return false;
    }
    // Find the end of the identifier run; a closing quote means char.
    let mut j = i + 2;
    while j < bytes.len() && is_ident_byte(bytes[j]) {
        j += 1;
    }
    bytes.get(j) != Some(&b'\'')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn code_words_in_strings_and_comments_are_not_idents() {
        let src = r###"
            let x = "unsafe unwrap"; // unsafe in a comment
            /* Ordering::Relaxed in a block comment */
            let y = r#"panic!()"#;
        "###;
        let ids = idents(src);
        assert!(ids.contains(&"let".to_string()));
        assert!(!ids.contains(&"unsafe".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"Relaxed".to_string()));
        assert!(!ids.contains(&"panic".to_string()));
    }

    #[test]
    fn comments_carry_their_text_and_line() {
        let toks = lex("let a = 1;\n// SAFETY: fine\nunsafe { }\n");
        let c = toks.iter().find(|t| t.kind == TokKind::Comment).unwrap();
        assert_eq!(c.line, 2);
        assert!(c.text.contains("SAFETY:"));
        let u = toks.iter().find(|t| t.is_ident("unsafe")).unwrap();
        assert_eq!(u.line, 3);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(toks.iter().any(|t| t.is_ident("'a")));
        assert_eq!(
            toks.iter().filter(|t| t.text == "'…'").count(),
            1,
            "exactly one char literal"
        );
    }

    #[test]
    fn escaped_chars_and_raw_strings_round_trip() {
        let toks = lex(r###"let c = '\n'; let s = r##"a "# b"##; let t = b"x\"y";"###);
        // Everything after must still lex: 3 `let`s seen.
        assert_eq!(toks.iter().filter(|t| t.is_ident("let")).count(), 3);
    }

    #[test]
    fn nested_block_comments() {
        let toks = lex("/* outer /* inner */ still comment */ unsafe");
        assert!(toks[0].kind == TokKind::Comment);
        assert!(toks[1].is_ident("unsafe"));
    }

    #[test]
    fn multiline_strings_advance_lines() {
        let toks = lex("let s = \"line1\nline2\";\nunsafe");
        let u = toks.iter().find(|t| t.is_ident("unsafe")).unwrap();
        assert_eq!(u.line, 3);
    }

    #[test]
    fn float_literals_do_not_eat_method_calls() {
        let ids = idents("let x = 1.0f64.max(2.5); let y = 1.max(2);");
        assert_eq!(ids.iter().filter(|s| *s == "max").count(), 2);
    }

    #[test]
    fn raw_strings_skip_code_words_at_every_hash_depth() {
        for src in [
            "let a = r\"unsafe\"; done",
            "let a = r#\"unsafe \"quoted\" unwrap\"#; done",
            "let a = r##\"panic! \"# still in\"##; done",
            "let a = r####\"Ordering::Relaxed \"###\"####; done",
        ] {
            let ids = idents(src);
            assert!(ids.contains(&"done".to_string()), "{src}: lexer lost sync");
            assert!(!ids.contains(&"unsafe".to_string()), "{src}");
            assert!(!ids.contains(&"unwrap".to_string()), "{src}");
            assert!(!ids.contains(&"panic".to_string()), "{src}");
            assert!(!ids.contains(&"Relaxed".to_string()), "{src}");
        }
    }

    #[test]
    fn nested_block_comments_track_depth_not_first_terminator() {
        let toks = lex("/* a /* b /* c */ */ unsafe-still-comment */ code");
        assert_eq!(toks[0].kind, TokKind::Comment);
        assert!(toks[0].text.contains("unsafe-still-comment"));
        assert!(toks.iter().any(|t| t.is_ident("code")));
        assert!(!toks.iter().any(|t| t.is_ident("unsafe")));
    }

    #[test]
    fn byte_and_c_strings_hide_their_contents() {
        for src in [
            "let a = b\"unsafe unwrap\"; done",
            "let a = br#\"panic!()\"#; done",
            "let a = c\"Ordering::Relaxed\"; done",
            "let a = b'\\n'; let b = b'x'; done",
        ] {
            let ids = idents(src);
            assert!(ids.contains(&"done".to_string()), "{src}: lexer lost sync");
            assert!(!ids.contains(&"unsafe".to_string()), "{src}");
            assert!(!ids.contains(&"panic".to_string()), "{src}");
            assert!(!ids.contains(&"Relaxed".to_string()), "{src}");
        }
    }

    #[test]
    fn multiline_literals_report_their_starting_line() {
        let toks = lex("let s = \"line1\nline2\nline3\";\nlet r = r#\"a\nb\"#;");
        let lits: Vec<&Tok> = toks.iter().filter(|t| t.text == "\"…\"").collect();
        assert_eq!(lits.len(), 2);
        assert_eq!(lits[0].line, 1, "plain string starts on line 1");
        assert_eq!(lits[1].line, 4, "raw string starts on line 4");
        // And the code after them lands on the right lines.
        let lets: Vec<u32> = toks
            .iter()
            .filter(|t| t.is_ident("let"))
            .map(|t| t.line)
            .collect();
        assert_eq!(lets, vec![1, 4]);
    }
}
