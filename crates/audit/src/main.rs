//! `gve-audit` CLI: lint the workspace, exit non-zero on findings.
//!
//! ```text
//! cargo run -p gve-audit            # audit the enclosing workspace
//! gve-audit --root /path/to/repo    # audit an explicit checkout
//! gve-audit --policy custom.policy  # override the policy file
//! gve-audit --json                  # machine-readable findings
//! ```

use gve_audit::{audit_workspace, find_workspace_root, Policy};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: Option<PathBuf>,
    policy: Option<PathBuf>,
    json: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        policy: None,
        json: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root = Some(PathBuf::from(
                    it.next().ok_or("--root needs a path".to_string())?,
                ));
            }
            "--policy" => {
                args.policy = Some(PathBuf::from(
                    it.next().ok_or("--policy needs a path".to_string())?,
                ));
            }
            "--json" => args.json = true,
            "--help" | "-h" => {
                println!(
                    "gve-audit: workspace concurrency/soundness lints\n\n\
                     USAGE: gve-audit [--root DIR] [--policy FILE] [--json]\n\n\
                     Exit status: 0 clean, 1 findings, 2 tool error."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}' (try --help)")),
        }
    }
    Ok(args)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let root = match args.root {
        Some(r) => r,
        None => {
            let start = std::env::current_dir().map_err(|e| format!("cwd: {e}"))?;
            find_workspace_root(&start)
                .or_else(|| {
                    // Fall back to the source checkout this binary was
                    // built from (covers `cargo run` from odd cwds).
                    find_workspace_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
                })
                .ok_or("cannot locate workspace root (use --root)".to_string())?
        }
    };
    let policy = match &args.policy {
        Some(p) => Policy::load(p)?,
        None => {
            let default_file = root.join("audit.policy");
            if default_file.is_file() {
                Policy::load(&default_file)?
            } else {
                Policy::default_workspace()
            }
        }
    };
    let findings = audit_workspace(&root, &policy)?;
    if args.json {
        println!("[");
        for (i, v) in findings.iter().enumerate() {
            let comma = if i + 1 == findings.len() { "" } else { "," };
            println!(
                "  {{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"message\":\"{}\"}}{comma}",
                v.rule,
                json_escape(&v.path),
                v.line,
                json_escape(&v.message)
            );
        }
        println!("]");
    } else {
        for v in &findings {
            println!("{v}");
        }
        if findings.is_empty() {
            eprintln!("gve-audit: workspace clean ({})", root.display());
        } else {
            eprintln!("gve-audit: {} finding(s)", findings.len());
        }
    }
    Ok(findings.is_empty())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("gve-audit: error: {e}");
            ExitCode::from(2)
        }
    }
}
