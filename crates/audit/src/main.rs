//! `gve-audit` CLI: lint the workspace, exit non-zero on findings.
//!
//! ```text
//! cargo run -p gve-audit                 # audit the enclosing workspace
//! gve-audit --root /path/to/repo         # audit an explicit checkout
//! gve-audit --policy custom.policy       # override the policy file
//! gve-audit --json                       # machine-readable findings on stdout
//! gve-audit --sarif out.sarif            # SARIF 2.1.0 for code scanning
//! gve-audit --incremental                # cache per-file results by content hash
//! gve-audit --strict-suppressions        # stale suppressions become errors
//! ```
//!
//! Findings (text or `--json`) are the only thing written to stdout —
//! all diagnostics go to stderr, so `gve-audit --json | jq .` always
//! parses.

use gve_audit::cache::fnv1a;
use gve_audit::{audit_workspace_with, find_workspace_root, sarif, AuditOptions, Policy, Severity};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: Option<PathBuf>,
    policy: Option<PathBuf>,
    json: bool,
    sarif: Option<PathBuf>,
    incremental: bool,
    cache: Option<PathBuf>,
    strict_suppressions: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        policy: None,
        json: false,
        sarif: None,
        incremental: false,
        cache: None,
        strict_suppressions: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root = Some(PathBuf::from(
                    it.next().ok_or("--root needs a path".to_string())?,
                ));
            }
            "--policy" => {
                args.policy = Some(PathBuf::from(
                    it.next().ok_or("--policy needs a path".to_string())?,
                ));
            }
            "--json" => args.json = true,
            "--sarif" => {
                args.sarif = Some(PathBuf::from(
                    it.next().ok_or("--sarif needs a path".to_string())?,
                ));
            }
            "--incremental" => args.incremental = true,
            "--cache" => {
                args.cache = Some(PathBuf::from(
                    it.next().ok_or("--cache needs a path".to_string())?,
                ));
                args.incremental = true;
            }
            "--strict-suppressions" => args.strict_suppressions = true,
            "--help" | "-h" => {
                println!(
                    "gve-audit: workspace concurrency/soundness lints\n\n\
                     USAGE: gve-audit [--root DIR] [--policy FILE] [--json]\n\
                            [--sarif FILE] [--incremental] [--cache FILE]\n\
                            [--strict-suppressions]\n\n\
                     Exit status: 0 clean (warnings allowed), 1 errors, 2 tool error."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}' (try --help)")),
        }
    }
    Ok(args)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let root = match args.root {
        Some(r) => r,
        None => {
            let start = std::env::current_dir().map_err(|e| format!("cwd: {e}"))?;
            find_workspace_root(&start)
                .or_else(|| {
                    // Fall back to the source checkout this binary was
                    // built from (covers `cargo run` from odd cwds).
                    find_workspace_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
                })
                .ok_or("cannot locate workspace root (use --root)".to_string())?
        }
    };
    let policy_file = match &args.policy {
        Some(p) => Some(p.clone()),
        None => {
            let default_file = root.join("audit.policy");
            default_file.is_file().then_some(default_file)
        }
    };
    let (policy, policy_text) = match &policy_file {
        Some(p) => {
            let text = std::fs::read_to_string(p)
                .map_err(|e| format!("cannot read {}: {e}", p.display()))?;
            (Policy::load(p)?, text)
        }
        None => (
            Policy::default_workspace(),
            gve_audit::policy::DEFAULT_POLICY.to_string(),
        ),
    };
    let opts = AuditOptions {
        cache_path: if args.incremental {
            Some(
                args.cache
                    .clone()
                    .unwrap_or_else(|| root.join("target/audit-cache.json")),
            )
        } else {
            None
        },
        policy_fingerprint: fnv1a(policy_text.as_bytes()),
        strict_suppressions: args.strict_suppressions,
    };
    let report = audit_workspace_with(&root, &policy, &opts)?;
    let findings = &report.findings;
    if let Some(path) = &args.sarif {
        std::fs::write(path, sarif::to_sarif(findings))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        eprintln!("gve-audit: wrote SARIF to {}", path.display());
    }
    if args.json {
        println!("[");
        for (i, v) in findings.iter().enumerate() {
            let comma = if i + 1 == findings.len() { "" } else { "," };
            let sev = match v.severity {
                Severity::Warning => "warning",
                Severity::Error => "error",
            };
            println!(
                "  {{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"severity\":\"{sev}\",\"message\":\"{}\"}}{comma}",
                v.rule,
                json_escape(&v.path),
                v.line,
                json_escape(&v.message)
            );
        }
        println!("]");
    } else {
        for v in findings {
            println!("{v}");
        }
    }
    let errors = findings
        .iter()
        .filter(|v| v.severity == Severity::Error)
        .count();
    let warnings = findings.len() - errors;
    if args.incremental {
        eprintln!(
            "gve-audit: scanned {} file(s), {} from cache",
            report.files_scanned, report.cache_hits
        );
    }
    if findings.is_empty() {
        eprintln!("gve-audit: workspace clean ({})", root.display());
    } else {
        eprintln!("gve-audit: {errors} error(s), {warnings} warning(s)");
    }
    Ok(errors == 0)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("gve-audit: error: {e}");
            ExitCode::from(2)
        }
    }
}
