//! The workspace-wide lock acquisition graph and the `lock-order` rule.
//!
//! [`crate::scopes`] contributes one edge per observed nested
//! acquisition — lock `from` held while acquiring lock `to`. This
//! module judges the union of every file's edges against the policy's
//! declared `lock-order` hierarchy:
//!
//! * an edge that *inverts* a declared order (the declaration's
//!   transitive closure contains `to before from`) is a violation;
//! * an edge covered by the closure (`from before to`) is fine;
//! * any other edge is an **undeclared nested acquisition** — the
//!   hierarchy in `audit.policy` must name every nesting the workspace
//!   performs, so a new nesting is a reviewable policy diff, not a
//!   silent fact;
//! * any cycle in the observed graph is a **potential deadlock**,
//!   reported with the full lock chain and the site of each edge.
//!
//! Vertex names are the canonical lock names produced by the scope
//! walk (receiver-derived, wrapper-derived, `lock-fn` mappings, all
//! after `lock-alias` rewriting) — so `update_gate`, `entry`, `table`,
//! `cache_inner`, not variable names.

use crate::policy::Policy;
use crate::rules::{violation_at, Severity, Violation};

/// One observed nested acquisition: `from` held while taking `to`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEdge {
    /// Lock already held.
    pub from: String,
    /// Lock being acquired under it.
    pub to: String,
    /// Workspace-relative file of the inner acquisition.
    pub path: String,
    /// 1-based line of the inner acquisition.
    pub line: u32,
}

/// Judges observed edges against the declared hierarchy and reports
/// order inversions, undeclared nestings, and cycles.
pub fn analyze(edges: &[LockEdge], policy: &Policy) -> Vec<Violation> {
    const RULE: &str = "lock-order";
    // Dedupe observed edges by (from, to), keeping the first site.
    let mut observed: Vec<&LockEdge> = Vec::new();
    for e in edges {
        if !observed.iter().any(|o| o.from == e.from && o.to == e.to) {
            observed.push(e);
        }
    }

    // Name universe: declared + observed.
    let mut names: Vec<&str> = Vec::new();
    for o in &policy.lock_orders {
        for n in [o.before.as_str(), o.after.as_str()] {
            if !names.contains(&n) {
                names.push(n);
            }
        }
    }
    for e in &observed {
        for n in [e.from.as_str(), e.to.as_str()] {
            if !names.contains(&n) {
                names.push(n);
            }
        }
    }
    let n = names.len();
    let idx = |s: &str| names.iter().position(|m| *m == s).unwrap();

    // Transitive closure of the declared order.
    let mut declared = vec![false; n * n];
    for o in &policy.lock_orders {
        declared[idx(&o.before) * n + idx(&o.after)] = true;
    }
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                if declared[i * n + k] && declared[k * n + j] {
                    declared[i * n + j] = true;
                }
            }
        }
    }

    let mut out = Vec::new();
    for e in &observed {
        let (fi, ti) = (idx(&e.from), idx(&e.to));
        if declared[ti * n + fi] {
            out.push(violation_at(
                &e.path,
                RULE,
                e.line,
                Severity::Error,
                format!(
                    "`{}` held while acquiring `{}`, but the policy declares \
                     `lock-order {} before {}` — this inversion can deadlock \
                     against a conforming thread",
                    e.from, e.to, e.to, e.from
                ),
            ));
        } else if !declared[fi * n + ti] {
            out.push(violation_at(
                &e.path,
                RULE,
                e.line,
                Severity::Error,
                format!(
                    "undeclared nested lock acquisition: `{}` held while acquiring \
                     `{}` — declare `lock-order {} before {}` in audit.policy or \
                     restructure to drop the outer guard first",
                    e.from, e.to, e.from, e.to
                ),
            ));
        }
    }

    // Cycles in the *observed* graph are potential deadlocks regardless
    // of declarations. DFS with an explicit stack-trace per start
    // vertex; cycles are canonicalized (rotated to their minimum
    // vertex) so each is reported once.
    let mut adj = vec![Vec::new(); n];
    for e in &observed {
        adj[idx(&e.from)].push(idx(&e.to));
    }
    let mut reported: Vec<Vec<usize>> = Vec::new();
    for start in 0..n {
        let mut stack = vec![(start, 0usize)];
        let mut path = vec![start];
        while let Some(&(v, next)) = stack.last() {
            if next < adj[v].len() {
                stack.last_mut().expect("nonempty").1 += 1;
                let w = adj[v][next];
                if let Some(pos) = path.iter().position(|&p| p == w) {
                    let cycle = canonical_cycle(&path[pos..]);
                    if !reported.contains(&cycle) {
                        reported.push(cycle.clone());
                        let chain: Vec<&str> = cycle
                            .iter()
                            .chain(cycle.first())
                            .map(|&i| names[i])
                            .collect();
                        let sites: Vec<String> = cycle
                            .iter()
                            .zip(cycle.iter().cycle().skip(1))
                            .filter_map(|(&a, &b)| {
                                observed
                                    .iter()
                                    .find(|e| idx(&e.from) == a && idx(&e.to) == b)
                                    .map(|e| format!("{}:{}", e.path, e.line))
                            })
                            .collect();
                        let anchor = observed
                            .iter()
                            .find(|e| idx(&e.from) == cycle[0])
                            .expect("cycle edges are observed");
                        out.push(violation_at(
                            &anchor.path,
                            RULE,
                            anchor.line,
                            Severity::Error,
                            format!(
                                "potential deadlock: lock acquisition cycle {} \
                                 (held-while-acquiring edges at {})",
                                chain.join(" → "),
                                sites.join(", ")
                            ),
                        ));
                    }
                } else if path.len() <= n {
                    stack.push((w, 0));
                    path.push(w);
                }
            } else {
                stack.pop();
                path.pop();
            }
        }
    }
    out.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.message.as_str()).cmp(&(
            b.path.as_str(),
            b.line,
            b.message.as_str(),
        ))
    });
    out
}

/// Rotates a cycle so it starts at its minimum vertex.
fn canonical_cycle(cycle: &[usize]) -> Vec<usize> {
    let min_pos = cycle
        .iter()
        .enumerate()
        .min_by_key(|(_, &v)| v)
        .map(|(i, _)| i)
        .unwrap_or(0);
    let mut out = Vec::with_capacity(cycle.len());
    out.extend_from_slice(&cycle[min_pos..]);
    out.extend_from_slice(&cycle[..min_pos]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(from: &str, to: &str, line: u32) -> LockEdge {
        LockEdge {
            from: from.to_string(),
            to: to.to_string(),
            path: "crates/x/src/lib.rs".to_string(),
            line,
        }
    }

    #[test]
    fn declared_edges_pass_including_transitively() {
        let p = Policy::parse("lock-order a before b -- r\nlock-order b before c -- r\n").unwrap();
        let found = analyze(&[edge("a", "b", 1), edge("a", "c", 2)], &p);
        assert!(found.is_empty(), "{found:#?}");
    }

    #[test]
    fn inversion_of_declared_order_is_an_error() {
        let p = Policy::parse("lock-order a before b -- r\n").unwrap();
        let found = analyze(&[edge("b", "a", 7)], &p);
        assert_eq!(found.len(), 1, "{found:#?}");
        assert!(found[0].message.contains("inversion"), "{found:#?}");
        assert_eq!(found[0].line, 7);
    }

    #[test]
    fn undeclared_nesting_is_an_error_naming_the_fix() {
        let found = analyze(&[edge("x", "y", 3)], &Policy::default());
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("lock-order x before y"));
    }

    #[test]
    fn two_lock_cycle_is_reported_once_as_deadlock() {
        let p = Policy::parse("lock-order a before b -- r\n").unwrap();
        let found = analyze(&[edge("a", "b", 1), edge("b", "a", 2)], &p);
        let cycles: Vec<&Violation> = found
            .iter()
            .filter(|v| v.message.contains("potential deadlock"))
            .collect();
        assert_eq!(cycles.len(), 1, "{found:#?}");
        assert!(cycles[0].message.contains("a → b → a"));
        // The inversion is also reported in its own right.
        assert!(found.iter().any(|v| v.message.contains("inversion")));
    }

    #[test]
    fn three_lock_cycle_lists_every_site() {
        let found = analyze(
            &[edge("a", "b", 1), edge("b", "c", 2), edge("c", "a", 3)],
            &Policy::default(),
        );
        let cycle = found
            .iter()
            .find(|v| v.message.contains("potential deadlock"))
            .expect("cycle reported");
        assert!(cycle.message.contains("a → b → c → a"), "{cycle:#?}");
        assert!(cycle.message.contains(":1"));
        assert!(cycle.message.contains(":2"));
        assert!(cycle.message.contains(":3"));
    }

    #[test]
    fn duplicate_edges_collapse_to_one_finding() {
        let found = analyze(&[edge("x", "y", 3), edge("x", "y", 9)], &Policy::default());
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 3, "first site wins");
    }
}
