//! The per-file view every rule works from: the code-token stream,
//! per-line comment text, raw lines, brace-matched test regions, and
//! the `audit:allow` suppression ledger.
//!
//! v2 replaced the v1 "earliest test attribute onward" heuristic with
//! real region tracking: a `#[test]` / `#[cfg(test)]` attribute exempts
//! exactly the item it is attached to (to the matching close brace, or
//! the terminating `;`). Files that interleave production code between
//! test modules — `prim/smallmap.rs` keeps `HashScanMap` between two
//! `#[cfg(test)]` mods — are now fully audited outside those regions.
//!
//! Suppressions are a ledger, not just a predicate: every
//! `audit:allow(<rule>)` marker found in comments is recorded, and
//! [`FileView::suppressed`] marks the matching marker *used* when a
//! rule consults it. The workspace driver reports markers that silenced
//! nothing as `stale-suppression` findings.

use crate::lexer::{lex, Tok, TokKind};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};

/// Everything the audit derives from one source file before the rules
/// run.
pub(crate) struct FileView<'a> {
    pub(crate) path: &'a str,
    pub(crate) code: Vec<Tok>,
    pub(crate) comments: BTreeMap<u32, String>,
    pub(crate) lines: Vec<&'a str>,
    /// Line ranges (inclusive) of test-only code.
    test_regions: Vec<(u32, u32)>,
    /// `(comment line, rule)` of every `audit:allow` marker in the file.
    markers: Vec<(u32, String)>,
    /// Markers that have silenced at least one finding.
    used: RefCell<BTreeSet<(u32, String)>>,
}

impl<'a> FileView<'a> {
    pub(crate) fn new(path: &'a str, source: &'a str) -> Self {
        let toks = lex(source);
        let mut code = Vec::new();
        let mut comments: BTreeMap<u32, String> = BTreeMap::new();
        for t in toks {
            if t.kind == TokKind::Comment {
                let entry = comments.entry(t.line).or_default();
                entry.push(' ');
                entry.push_str(&t.text);
            } else {
                code.push(t);
            }
        }
        let mut test_regions = find_test_regions(&code);
        // Integration tests, benches and examples are test code wholesale.
        if path.contains("/tests/") || path.contains("/benches/") || path.contains("/examples/") {
            test_regions = vec![(0, u32::MAX)];
        }
        let mut markers = Vec::new();
        for (&line, text) in &comments {
            let mut rest = text.as_str();
            while let Some(pos) = rest.find("audit:allow(") {
                rest = &rest[pos + "audit:allow(".len()..];
                if let Some(end) = rest.find(')') {
                    // Only a real rule id is a suppression — prose that
                    // merely *describes* the syntax (placeholder names
                    // like `<rule-id>`) is not, and a typo'd id is
                    // self-correcting because the finding it meant to
                    // silence still fires.
                    if let Some(rule) = crate::rules::canonical_rule_id(rest[..end].trim()) {
                        markers.push((line, rule.to_string()));
                    }
                    rest = &rest[end..];
                } else {
                    break;
                }
            }
        }
        Self {
            path,
            code,
            comments,
            lines: source.lines().collect(),
            test_regions,
            markers,
            used: RefCell::new(BTreeSet::new()),
        }
    }

    pub(crate) fn in_tests(&self, line: u32) -> bool {
        self.test_regions
            .iter()
            .any(|&(lo, hi)| lo <= line && line <= hi)
    }

    /// Any comment on lines `[line - span, line]` satisfying `pred`.
    pub(crate) fn comment_near(&self, line: u32, span: u32, pred: impl Fn(&str) -> bool) -> bool {
        let lo = line.saturating_sub(span);
        self.comments
            .range(lo..=line)
            .any(|(_, text)| pred(text.as_str()))
    }

    /// `audit:allow(rule)` on the line or the line above. Marks the
    /// matching marker as used for stale-suppression accounting.
    pub(crate) fn suppressed(&self, line: u32, rule: &str) -> bool {
        let lo = line.saturating_sub(1);
        let mut hit = false;
        for &(mline, ref mrule) in &self.markers {
            if mrule == rule && (lo..=line).contains(&mline) {
                self.used.borrow_mut().insert((mline, mrule.clone()));
                hit = true;
            }
        }
        hit
    }

    /// Every `audit:allow` marker in the file: `(comment line, rule)`.
    pub(crate) fn markers(&self) -> Vec<(u32, String)> {
        self.markers.clone()
    }

    /// Markers that silenced at least one finding so far.
    pub(crate) fn used_markers(&self) -> Vec<(u32, String)> {
        self.used.borrow().iter().cloned().collect()
    }

    /// Text of the contiguous comment/attribute block ending just above
    /// `line` (doc comments, `//` comments, attributes, blank lines;
    /// bounded at 60 lines). Used by `unsafe-safety`, whose `# Safety`
    /// doc section may sit above a pile of attributes.
    pub(crate) fn block_above(&self, line: u32) -> String {
        let mut out = String::new();
        let mut l = line.saturating_sub(1);
        let mut budget = 60;
        while l >= 1 && budget > 0 {
            let raw = self.lines.get(l as usize - 1).copied().unwrap_or("").trim();
            let attached = raw.is_empty()
                || raw.starts_with("//")
                || raw.starts_with("#[")
                || raw.starts_with("#![")
                || raw == "]" // tail of a multi-line attribute
                || raw == ")]";
            if !attached {
                break;
            }
            out.push_str(raw);
            out.push('\n');
            l -= 1;
            budget -= 1;
        }
        out
    }
}

/// Line ranges (inclusive) covered by `#[test]`-like attributes and the
/// items they attach to. An attribute is a test attribute when it
/// contains the ident `test` outside a `not(...)` group, so
/// `#[cfg(not(test))]` does *not* exempt its item.
fn find_test_regions(code: &[Tok]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i + 1 < code.len() {
        if !(code[i].is_punct("#") && code[i + 1].is_punct("[")) {
            i += 1;
            continue;
        }
        let attr_line = code[i].line;
        let mut depth = 1i32;
        let mut j = i + 2;
        let mut is_test = false;
        while j < code.len() && depth > 0 {
            if code[j].is_punct("[") {
                depth += 1;
            } else if code[j].is_punct("]") {
                depth -= 1;
            } else if code[j].is_ident("test")
                && !(j >= 2 && code[j - 1].is_punct("(") && code[j - 2].is_ident("not"))
            {
                is_test = true;
            }
            j += 1;
        }
        if !is_test {
            i = j;
            continue;
        }
        // The attached item: skip any further attributes, then run to
        // the matching close brace of the first body brace — or to the
        // terminating `;` for brace-less items (`mod tests;`).
        let mut k = j;
        while k + 1 < code.len() && code[k].is_punct("#") && code[k + 1].is_punct("[") {
            let mut d = 1i32;
            k += 2;
            while k < code.len() && d > 0 {
                if code[k].is_punct("[") {
                    d += 1;
                } else if code[k].is_punct("]") {
                    d -= 1;
                }
                k += 1;
            }
        }
        let mut end_line = code.get(k).map(|t| t.line).unwrap_or(attr_line);
        let mut brace = 0i32;
        while k < code.len() {
            let t = &code[k];
            if t.is_punct("{") {
                brace += 1;
            } else if t.is_punct("}") {
                brace -= 1;
                if brace == 0 {
                    end_line = t.line;
                    break;
                }
            } else if t.is_punct(";") && brace == 0 {
                end_line = t.line;
                break;
            }
            end_line = t.line;
            k += 1;
        }
        regions.push((attr_line, end_line));
        i = k.max(j);
    }
    regions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_region_ends_at_the_matching_brace() {
        let src = "fn real() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t() {}\n\
                   }\n\
                   fn also_real() {}\n\
                   #[cfg(test)]\n\
                   mod more {\n\
                       fn u() {}\n\
                   }\n";
        let v = FileView::new("crates/x/src/lib.rs", src);
        assert!(!v.in_tests(1), "code before the test mod");
        assert!(v.in_tests(3) && v.in_tests(5), "inside first test mod");
        assert!(!v.in_tests(6), "code BETWEEN test mods is production");
        assert!(v.in_tests(8), "inside second test mod");
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nfn prod() { let x = 1; }\n";
        let v = FileView::new("crates/x/src/lib.rs", src);
        assert!(!v.in_tests(2));
    }

    #[test]
    fn attributes_between_test_attr_and_item_are_covered() {
        let src = "#[test]\n#[ignore]\nfn t() {\n    body();\n}\nfn real() {}\n";
        let v = FileView::new("crates/x/src/lib.rs", src);
        assert!(v.in_tests(4));
        assert!(!v.in_tests(6));
    }

    #[test]
    fn integration_test_files_are_test_code_wholesale() {
        let v = FileView::new("crates/x/tests/it.rs", "fn helper() {}\n");
        assert!(v.in_tests(1));
    }

    #[test]
    fn markers_are_collected_and_usage_tracked() {
        let src = "// audit:allow(hotpath-panic): fine\nfn f() {}\n// audit:allow(unsafe-safety)\nfn g() {}\n";
        let v = FileView::new("crates/x/src/lib.rs", src);
        assert_eq!(v.markers().len(), 2);
        assert!(v.suppressed(2, "hotpath-panic"));
        assert!(!v.suppressed(2, "unsafe-safety"), "wrong rule");
        assert_eq!(v.used_markers(), vec![(1, "hotpath-panic".to_string())]);
    }
}
