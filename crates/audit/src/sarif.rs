//! SARIF 2.1.0 output for GitHub code scanning.
//!
//! The shape follows the subset `github/codeql-action/upload-sarif`
//! consumes: one run, `tool.driver` naming the tool and its rule
//! catalog, and one `result` per finding with `ruleId`, `level`,
//! `message.text`, and a single physical location
//! (`artifactLocation.uri` + `region.startLine`). URIs are the
//! workspace-relative slash paths the audit already reports.

use crate::mini_json::{n, obj, s, Json};
use crate::rules::{Severity, Violation, RULE_IDS};

/// Static one-line description per rule, surfaced in the SARIF rule
/// catalog (and the code-scanning UI's rule index).
fn rule_description(rule: &str) -> &'static str {
    match rule {
        "unsafe-safety" => "unsafe block without a SAFETY comment or # Safety doc section",
        "atomic-ordering" => "Ordering::Relaxed outside files the policy marks relaxed-ok",
        "hotpath-panic" => "panic/unwrap/expect/assert in a declared hot path",
        "rayon-blocking" => "blocking call inside a parallel iterator closure",
        "lock-order" => {
            "nested lock acquisition that inverts, escapes, or cycles the declared lock hierarchy"
        }
        "hotpath-alloc" => "allocating construct in a declared allocation-free hot path",
        "guard-across-blocking" => "lock guard held across a blocking call",
        "stale-suppression" => "audit:allow marker or policy entry that no longer matches anything",
        _ => "gve-audit finding",
    }
}

fn level(sev: Severity) -> &'static str {
    match sev {
        Severity::Warning => "warning",
        Severity::Error => "error",
    }
}

/// Renders findings as a SARIF 2.1.0 document.
pub fn to_sarif(findings: &[Violation]) -> String {
    let rules: Vec<Json> = RULE_IDS
        .iter()
        .map(|id| {
            obj(vec![
                ("id", s(id)),
                ("name", s(id)),
                (
                    "shortDescription",
                    obj(vec![("text", s(rule_description(id)))]),
                ),
            ])
        })
        .collect();
    let results: Vec<Json> = findings
        .iter()
        .map(|v| {
            obj(vec![
                ("ruleId", s(v.rule)),
                ("level", s(level(v.severity))),
                ("message", obj(vec![("text", s(&v.message))])),
                (
                    "locations",
                    Json::Arr(vec![obj(vec![(
                        "physicalLocation",
                        obj(vec![
                            ("artifactLocation", obj(vec![("uri", s(&v.path))])),
                            ("region", obj(vec![("startLine", n(v.line.max(1) as u64))])),
                        ]),
                    )])]),
                ),
            ])
        })
        .collect();
    let doc = obj(vec![
        (
            "$schema",
            s("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
        ),
        ("version", s("2.1.0")),
        (
            "runs",
            Json::Arr(vec![obj(vec![
                (
                    "tool",
                    obj(vec![(
                        "driver",
                        obj(vec![
                            ("name", s("gve-audit")),
                            ("informationUri", s("https://example.invalid/gve-audit")),
                            ("rules", Json::Arr(rules)),
                        ]),
                    )]),
                ),
                ("results", Json::Arr(results)),
            ])]),
        ),
    ]);
    doc.to_json()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::violation_at;

    #[test]
    fn sarif_document_has_the_2_1_0_shape() {
        let findings = vec![
            violation_at(
                "crates/x/src/lib.rs",
                "lock-order",
                7,
                Severity::Error,
                "cycle a → b → a".to_string(),
            ),
            violation_at(
                "audit.policy",
                "stale-suppression",
                3,
                Severity::Warning,
                "unused".to_string(),
            ),
        ];
        let doc = Json::parse(&to_sarif(&findings)).expect("valid json");
        assert_eq!(doc.get("version").and_then(Json::as_str), Some("2.1.0"));
        assert!(doc
            .get("$schema")
            .and_then(Json::as_str)
            .expect("schema")
            .contains("sarif-schema-2.1.0"));
        let runs = doc.get("runs").and_then(Json::as_arr).expect("runs");
        assert_eq!(runs.len(), 1);
        let driver = runs[0]
            .get("tool")
            .and_then(|t| t.get("driver"))
            .expect("driver");
        assert_eq!(driver.get("name").and_then(Json::as_str), Some("gve-audit"));
        let rules = driver.get("rules").and_then(Json::as_arr).expect("rules");
        assert_eq!(rules.len(), RULE_IDS.len(), "catalog covers every rule");
        let results = runs[0]
            .get("results")
            .and_then(Json::as_arr)
            .expect("results");
        assert_eq!(results.len(), 2);
        assert_eq!(
            results[0].get("ruleId").and_then(Json::as_str),
            Some("lock-order")
        );
        assert_eq!(
            results[0].get("level").and_then(Json::as_str),
            Some("error")
        );
        assert_eq!(
            results[1].get("level").and_then(Json::as_str),
            Some("warning")
        );
        let loc = results[0]
            .get("locations")
            .and_then(Json::as_arr)
            .and_then(|a| a.first())
            .and_then(|l| l.get("physicalLocation"))
            .expect("location");
        assert_eq!(
            loc.get("artifactLocation")
                .and_then(|a| a.get("uri"))
                .and_then(Json::as_str),
            Some("crates/x/src/lib.rs")
        );
        assert_eq!(
            loc.get("region")
                .and_then(|r| r.get("startLine"))
                .and_then(Json::as_u64),
            Some(7)
        );
    }

    #[test]
    fn every_rule_id_has_a_description() {
        for id in RULE_IDS {
            assert_ne!(rule_description(id), "gve-audit finding", "{id}");
        }
    }
}
