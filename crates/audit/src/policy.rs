//! The audit policy: which files are hot paths, where `Relaxed` is
//! allowed wholesale, and which atomics are cross-thread *publishes*
//! that must use Release/Acquire or stronger.
//!
//! The policy ships in `audit.policy` at the workspace root so it is
//! reviewable next to the code it governs; [`Policy::default_workspace`]
//! embeds the same table as a fallback for running the engine against a
//! bare checkout. Format (one entry per line, `#` comments):
//!
//! ```text
//! hotpath    <path-substring>
//! relaxed-ok <path-substring> -- <reason>
//! publish    <path-substring> <field>.<method> <Ordering>[,<Ordering>] -- <reason>
//! skip       <path-substring>
//! ```
//!
//! * `hotpath` — rule `hotpath-panic` bans `unwrap`/`expect`/`panic!`/
//!   `assert!`/`todo!`/`unimplemented!`/`get_unchecked` in these files
//!   (tests exempt; `debug_assert!` allowed).
//! * `relaxed-ok` — rule `atomic-ordering` accepts *undocumented*
//!   `Ordering::Relaxed` in these files. Prefer inline justification
//!   comments; this escape hatch exists for generated or vendored code.
//! * `publish` — accesses of fields whose name contains `<field>` via
//!   `<method>` must use one of the listed orderings. This is the
//!   machine-checked half of the ordering policy table: values other
//!   threads *synchronize on* (not mere counters) may not be demoted to
//!   `Relaxed` without editing the policy in the same diff.
//! * `skip` — files the engine never scans (stand-in shims, fixtures).

use std::fmt;
use std::path::Path;

/// A `publish` table entry.
#[derive(Debug, Clone)]
pub struct PublishRule {
    /// Path substring selecting the files this entry covers.
    pub path: String,
    /// Field-name substring (`shutdown` matches `shutdown_flag`).
    pub field: String,
    /// Method the rule constrains (`store`, `load`, `fetch_add`, ...).
    pub method: String,
    /// Orderings the access may use.
    pub allowed: Vec<String>,
    /// Why this site is ordering-sensitive.
    pub reason: String,
}

/// An allowlist entry with its justification.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Path substring.
    pub path: String,
    /// Why `Relaxed` is blanket-acceptable there.
    pub reason: String,
}

/// The full audit policy.
#[derive(Debug, Clone, Default)]
pub struct Policy {
    /// Files under the `hotpath-panic` rule.
    pub hot_paths: Vec<String>,
    /// Files where undocumented `Relaxed` is allowed.
    pub relaxed_ok: Vec<AllowEntry>,
    /// Ordering-sensitive publish sites.
    pub publish: Vec<PublishRule>,
    /// Path substrings excluded from scanning entirely.
    pub skip: Vec<String>,
}

/// A policy-file parse error with its line number.
#[derive(Debug)]
pub struct PolicyError {
    /// 1-based line in the policy file.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "policy line {}: {}", self.line, self.message)
    }
}

const ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

impl Policy {
    /// Parses the `audit.policy` text format.
    pub fn parse(text: &str) -> Result<Self, PolicyError> {
        let mut policy = Policy::default();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |message: String| PolicyError {
                line: idx + 1,
                message,
            };
            let (body, reason) = match line.split_once("--") {
                Some((b, r)) => (b.trim(), r.trim().to_string()),
                None => (line, String::new()),
            };
            let mut fields = body.split_whitespace();
            let keyword = fields.next().unwrap_or_default();
            match keyword {
                "hotpath" => {
                    let path = fields
                        .next()
                        .ok_or_else(|| err("hotpath needs a path".into()))?;
                    policy.hot_paths.push(path.to_string());
                }
                "relaxed-ok" => {
                    let path = fields
                        .next()
                        .ok_or_else(|| err("relaxed-ok needs a path".into()))?;
                    if reason.is_empty() {
                        return Err(err(format!(
                            "relaxed-ok {path} needs a `-- reason` justification"
                        )));
                    }
                    policy.relaxed_ok.push(AllowEntry {
                        path: path.to_string(),
                        reason,
                    });
                }
                "publish" => {
                    let path = fields
                        .next()
                        .ok_or_else(|| err("publish needs a path".into()))?;
                    let access = fields
                        .next()
                        .ok_or_else(|| err("publish needs <field>.<method>".into()))?;
                    let (field, method) = access
                        .split_once('.')
                        .ok_or_else(|| err(format!("bad access spec '{access}'")))?;
                    let orderings = fields
                        .next()
                        .ok_or_else(|| err("publish needs allowed orderings".into()))?;
                    let allowed: Vec<String> =
                        orderings.split(',').map(|s| s.trim().to_string()).collect();
                    for o in &allowed {
                        if !ORDERINGS.contains(&o.as_str()) {
                            return Err(err(format!("unknown ordering '{o}'")));
                        }
                    }
                    if reason.is_empty() {
                        return Err(err(format!("publish {access} needs a `-- reason`")));
                    }
                    policy.publish.push(PublishRule {
                        path: path.to_string(),
                        field: field.to_string(),
                        method: method.to_string(),
                        allowed,
                        reason,
                    });
                }
                "skip" => {
                    let path = fields
                        .next()
                        .ok_or_else(|| err("skip needs a path".into()))?;
                    policy.skip.push(path.to_string());
                }
                other => return Err(err(format!("unknown policy keyword '{other}'"))),
            }
            if let Some(extra) = fields.next() {
                return Err(err(format!("trailing field '{extra}'")));
            }
        }
        Ok(policy)
    }

    /// Loads a policy file from disk.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Self::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// The repository's canonical policy — mirrors `audit.policy` at the
    /// workspace root.
    pub fn default_workspace() -> Self {
        Self::parse(DEFAULT_POLICY).expect("embedded policy must parse")
    }

    /// True when `path` (a `/`-separated relative path) is a hot path.
    pub fn is_hot_path(&self, path: &str) -> bool {
        self.hot_paths.iter().any(|p| path.contains(p.as_str()))
    }

    /// Allowlist entry covering `path`, if any.
    pub fn relaxed_ok_for(&self, path: &str) -> Option<&AllowEntry> {
        self.relaxed_ok
            .iter()
            .find(|e| path.contains(e.path.as_str()))
    }

    /// Publish rules applying to `path`.
    pub fn publish_rules_for<'a>(
        &'a self,
        path: &'a str,
    ) -> impl Iterator<Item = &'a PublishRule> + 'a {
        self.publish
            .iter()
            .filter(move |r| path.contains(r.path.as_str()))
    }

    /// True when the engine must not scan `path` at all.
    pub fn is_skipped(&self, path: &str) -> bool {
        self.skip.iter().any(|p| path.contains(p.as_str()))
    }
}

/// Embedded copy of the workspace policy (kept in sync with
/// `audit.policy`; the root file wins when present).
pub const DEFAULT_POLICY: &str = r#"
# ---- gve-audit workspace policy -------------------------------------
# Hot paths: no unwrap/expect/panic!/assert!/todo!/unimplemented!/
# get_unchecked outside tests (debug_assert! is allowed). These are the
# phase kernels the service runs per request plus the request loop.
hotpath crates/core/src/localmove.rs
hotpath crates/core/src/refine.rs
hotpath crates/core/src/aggregate.rs
hotpath crates/core/src/kernel.rs
hotpath crates/prim/src/simd.rs
hotpath crates/prim/src/sched.rs
hotpath crates/serve/src/http.rs
hotpath crates/net/src/server.rs
hotpath crates/net/src/poller.rs

# Ordering policy table: values other threads synchronize on. The
# shutdown flag gates joining worker/accept threads: the store must be
# Release (publish everything before the signal) and loads Acquire.
publish crates/serve/src/jobs.rs shutdown.store Release,SeqCst -- workers observe queue + records writes made before shutdown
publish crates/serve/src/jobs.rs shutdown.load Acquire,SeqCst -- pairs with the Release store above
publish crates/serve/src/http.rs shutdown.store Release,SeqCst -- accept loop must see listener state preceding the signal
publish crates/serve/src/http.rs shutdown.load Acquire,SeqCst -- pairs with the Release store above
publish crates/net/src/server.rs stopping.store Release,SeqCst -- reactor must see all pre-stop writes before it begins draining
publish crates/net/src/server.rs stopping.load Acquire,SeqCst -- pairs with the Release store above

# Blanket Relaxed allowlists. Everything else needs an inline
# justification comment mentioning "relaxed" within 8 lines.
relaxed-ok shims/ -- offline stand-ins for third-party crates; not our code to annotate
relaxed-ok crates/prim/src/alloc_count.rs -- advisory allocator statistics read at measurement boundaries; never synchronization

# Never scanned: shims are API stand-ins, fixtures are deliberately bad.
skip shims/
skip crates/audit/tests/fixtures/
skip target/
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_parses_and_covers_hot_paths() {
        let p = Policy::default_workspace();
        assert!(p.is_hot_path("crates/core/src/localmove.rs"));
        assert!(p.is_hot_path("crates/serve/src/http.rs"));
        assert!(!p.is_hot_path("crates/core/src/config.rs"));
        assert!(p.is_skipped("shims/rayon/src/lib.rs"));
        assert!(p.is_skipped("crates/audit/tests/fixtures/bad.rs"));
        assert!(p
            .publish_rules_for("crates/serve/src/jobs.rs")
            .any(|r| r.field == "shutdown" && r.method == "store"));
    }

    #[test]
    fn parse_rejects_malformed_entries() {
        assert!(Policy::parse("hotpath").is_err());
        assert!(
            Policy::parse("relaxed-ok foo.rs").is_err(),
            "missing reason"
        );
        assert!(Policy::parse("publish a.rs shutdown.store Bogus -- r").is_err());
        assert!(Policy::parse("publish a.rs shutdownstore Release -- r").is_err());
        assert!(Policy::parse("frobnicate x").is_err());
        assert!(Policy::parse("hotpath a.rs extra").is_err());
    }

    #[test]
    fn parse_accepts_reasons_and_ordering_lists() {
        let p = Policy::parse(
            "publish x.rs flag.store Release,SeqCst -- because\nrelaxed-ok y.rs -- counters only\n",
        )
        .unwrap();
        assert_eq!(p.publish[0].allowed, vec!["Release", "SeqCst"]);
        assert_eq!(p.relaxed_ok[0].reason, "counters only");
    }
}
