//! The audit policy: which files are hot paths, where `Relaxed` is
//! allowed wholesale, which atomics are cross-thread *publishes* that
//! must use Release/Acquire or stronger — and, since v2, the declared
//! lock hierarchy plus the tables that teach the scope-aware rules
//! about this workspace's lock wrappers and long-running calls.
//!
//! The policy ships in `audit.policy` at the workspace root so it is
//! reviewable next to the code it governs; [`Policy::default_workspace`]
//! embeds the same table as a fallback for running the engine against a
//! bare checkout. Format (one entry per line, `#` comments):
//!
//! ```text
//! hotpath       <path-substring>
//! relaxed-ok    <path-substring> -- <reason>
//! publish       <path-substring> <field>.<method> <Ordering>[,<Ordering>] -- <reason>
//! skip          <path-substring>
//! lock-order    <A> before <B> -- <reason>
//! lock-fn       [<recv>.]<callee> <lock> [-- <reason>]
//! lock-wrapper  <callee> [-- <reason>]
//! lock-alias    <path-substring> <derived> <canonical> [-- <reason>]
//! lock-allows-blocking <lock> -- <reason>
//! blocking-call <callee> -- <reason>
//! hotpath-alloc <path-substring> [fn=<name>[,<name>]*]
//! ```
//!
//! * `hotpath` — rule `hotpath-panic` bans `unwrap`/`expect`/`panic!`/
//!   `assert!`/`todo!`/`unimplemented!`/`get_unchecked` in these files
//!   (tests exempt; `debug_assert!` allowed).
//! * `relaxed-ok` — rule `atomic-ordering` accepts *undocumented*
//!   `Ordering::Relaxed` in these files. Prefer inline justification
//!   comments; this escape hatch exists for generated or vendored code.
//! * `publish` — accesses of fields whose name contains `<field>` via
//!   `<method>` must use one of the listed orderings. This is the
//!   machine-checked half of the ordering policy table: values other
//!   threads *synchronize on* (not mere counters) may not be demoted to
//!   `Relaxed` without editing the policy in the same diff.
//! * `skip` — files the engine never scans (stand-in shims, fixtures).
//! * `lock-order` — declares that lock `<A>` may be held while
//!   acquiring `<B>` (and, transitively, anything `<B>` precedes). The
//!   `lock-order` rule reports observed nested acquisitions that invert
//!   a declared order, every undeclared nested acquisition, and any
//!   cycle in the observed acquisition graph.
//! * `lock-fn` — calling `<callee>` (optionally only as a method on a
//!   receiver whose last path segment is `<recv>`) acquires `<lock>`.
//!   This names acquisitions hidden behind constructors like
//!   `begin_update()` or accessors like `cache.get(..)`.
//! * `lock-wrapper` — `<callee>(&some.lock_field)` acquires the lock
//!   named by the last identifier of its first argument. Covers
//!   poison-recovering helpers like `lock_clean` / `lock_table`.
//! * `lock-alias` — within files matching `<path-substring>`, a lock
//!   whose derived name is `<derived>` is really `<canonical>`. Keeps
//!   the graph's vertex names stable when a local variable hides the
//!   field name (`cell.lock()` → the registry `entry` mutex).
//! * `lock-allows-blocking` — `guard-across-blocking` accepts guards of
//!   `<lock>` across blocking calls; for gates *designed* to be held
//!   across long compute (the registry `update_gate`).
//! * `blocking-call` — `<callee>(..)` counts as blocking for the
//!   `guard-across-blocking` rule, in addition to the built-in set
//!   (`recv`, `join`, `sleep`, ...). Names long compute like
//!   `apply_batch`.
//! * `hotpath-alloc` — rule `hotpath-alloc` bans allocating constructs
//!   in these files (tests exempt); with `fn=a,b,c` only the named
//!   functions' bodies are checked (for files whose setup paths may
//!   allocate freely while the steady-state loop may not).

use std::fmt;
use std::path::Path;

/// A `publish` table entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PublishRule {
    /// Path substring selecting the files this entry covers.
    pub path: String,
    /// Field-name substring (`shutdown` matches `shutdown_flag`).
    pub field: String,
    /// Method the rule constrains (`store`, `load`, `fetch_add`, ...).
    pub method: String,
    /// Orderings the access may use.
    pub allowed: Vec<String>,
    /// Why this site is ordering-sensitive.
    pub reason: String,
}

/// An allowlist entry with its justification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Path substring.
    pub path: String,
    /// Why `Relaxed` is blanket-acceptable there.
    pub reason: String,
    /// 1-based policy-file line (stale-suppression reporting).
    pub line: usize,
}

/// A `skip` entry with its policy-file line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkipEntry {
    /// Path substring.
    pub path: String,
    /// 1-based policy-file line (stale-suppression reporting).
    pub line: usize,
}

/// A declared `lock-order <before> before <after>` pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockOrder {
    /// Lock that may be held first.
    pub before: String,
    /// Lock that may be acquired under it.
    pub after: String,
    /// Why the hierarchy runs this way.
    pub reason: String,
}

/// A `lock-fn` entry: calling `callee` acquires `lock`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockFn {
    /// Required receiver name (`cache.get` → `Some("cache")`), or any.
    pub receiver: Option<String>,
    /// Callee identifier.
    pub callee: String,
    /// Lock the call acquires.
    pub lock: String,
}

/// A path-scoped lock rename.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockAlias {
    /// Path substring the alias applies to.
    pub path: String,
    /// Derived (lexical) name.
    pub from: String,
    /// Canonical graph name.
    pub to: String,
}

/// A `hotpath-alloc` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotAlloc {
    /// Path substring.
    pub path: String,
    /// Function names to check; empty = the whole file.
    pub fns: Vec<String>,
}

/// The full audit policy.
#[derive(Debug, Clone, Default)]
pub struct Policy {
    /// Files under the `hotpath-panic` rule.
    pub hot_paths: Vec<String>,
    /// Files where undocumented `Relaxed` is allowed.
    pub relaxed_ok: Vec<AllowEntry>,
    /// Ordering-sensitive publish sites.
    pub publish: Vec<PublishRule>,
    /// Path substrings excluded from scanning entirely.
    pub skip: Vec<SkipEntry>,
    /// Declared lock hierarchy.
    pub lock_orders: Vec<LockOrder>,
    /// Calls that acquire a named lock.
    pub lock_fns: Vec<LockFn>,
    /// Wrappers acquiring the lock named by their first argument.
    pub lock_wrappers: Vec<String>,
    /// Path-scoped lock renames.
    pub lock_aliases: Vec<LockAlias>,
    /// Locks that may be held across blocking calls by design.
    pub lock_blocking_ok: Vec<String>,
    /// Extra callees the blocking rule treats as blocking.
    pub blocking_calls: Vec<String>,
    /// Files (or functions) under the `hotpath-alloc` rule.
    pub hotpath_alloc: Vec<HotAlloc>,
}

/// A policy-file parse error with its line number.
#[derive(Debug)]
pub struct PolicyError {
    /// 1-based line in the policy file.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "policy line {}: {}", self.line, self.message)
    }
}

const ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

impl Policy {
    /// Parses the `audit.policy` text format.
    pub fn parse(text: &str) -> Result<Self, PolicyError> {
        let mut policy = Policy::default();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |message: String| PolicyError {
                line: idx + 1,
                message,
            };
            let (body, reason) = match line.split_once("--") {
                Some((b, r)) => (b.trim(), r.trim().to_string()),
                None => (line, String::new()),
            };
            let mut fields = body.split_whitespace();
            let keyword = fields.next().unwrap_or_default();
            match keyword {
                "hotpath" => {
                    let path = fields
                        .next()
                        .ok_or_else(|| err("hotpath needs a path".into()))?;
                    policy.hot_paths.push(path.to_string());
                }
                "relaxed-ok" => {
                    let path = fields
                        .next()
                        .ok_or_else(|| err("relaxed-ok needs a path".into()))?;
                    if reason.is_empty() {
                        return Err(err(format!(
                            "relaxed-ok {path} needs a `-- reason` justification"
                        )));
                    }
                    policy.relaxed_ok.push(AllowEntry {
                        path: path.to_string(),
                        reason,
                        line: idx + 1,
                    });
                }
                "publish" => {
                    let path = fields
                        .next()
                        .ok_or_else(|| err("publish needs a path".into()))?;
                    let access = fields
                        .next()
                        .ok_or_else(|| err("publish needs <field>.<method>".into()))?;
                    let (field, method) = access
                        .split_once('.')
                        .ok_or_else(|| err(format!("bad access spec '{access}'")))?;
                    let orderings = fields
                        .next()
                        .ok_or_else(|| err("publish needs allowed orderings".into()))?;
                    let allowed: Vec<String> =
                        orderings.split(',').map(|s| s.trim().to_string()).collect();
                    for o in &allowed {
                        if !ORDERINGS.contains(&o.as_str()) {
                            return Err(err(format!("unknown ordering '{o}'")));
                        }
                    }
                    if reason.is_empty() {
                        return Err(err(format!("publish {access} needs a `-- reason`")));
                    }
                    policy.publish.push(PublishRule {
                        path: path.to_string(),
                        field: field.to_string(),
                        method: method.to_string(),
                        allowed,
                        reason,
                    });
                }
                "skip" => {
                    let path = fields
                        .next()
                        .ok_or_else(|| err("skip needs a path".into()))?;
                    policy.skip.push(SkipEntry {
                        path: path.to_string(),
                        line: idx + 1,
                    });
                }
                "lock-order" => {
                    let before = fields
                        .next()
                        .ok_or_else(|| err("lock-order needs `<A> before <B>`".into()))?;
                    let kw = fields.next();
                    let after = fields.next();
                    let (Some("before"), Some(after)) = (kw, after) else {
                        return Err(err("lock-order needs `<A> before <B>`".into()));
                    };
                    if reason.is_empty() {
                        return Err(err(format!(
                            "lock-order {before} before {after} needs a `-- reason`"
                        )));
                    }
                    policy.lock_orders.push(LockOrder {
                        before: before.to_string(),
                        after: after.to_string(),
                        reason,
                    });
                }
                "lock-fn" => {
                    let callee = fields
                        .next()
                        .ok_or_else(|| err("lock-fn needs `[recv.]callee lock`".into()))?;
                    let lock = fields
                        .next()
                        .ok_or_else(|| err("lock-fn needs the lock name".into()))?;
                    let (receiver, callee) = match callee.split_once('.') {
                        Some((r, c)) => (Some(r.to_string()), c.to_string()),
                        None => (None, callee.to_string()),
                    };
                    policy.lock_fns.push(LockFn {
                        receiver,
                        callee,
                        lock: lock.to_string(),
                    });
                }
                "lock-wrapper" => {
                    let callee = fields
                        .next()
                        .ok_or_else(|| err("lock-wrapper needs a callee".into()))?;
                    policy.lock_wrappers.push(callee.to_string());
                }
                "lock-alias" => {
                    let path = fields
                        .next()
                        .ok_or_else(|| err("lock-alias needs `path derived canonical`".into()))?;
                    let from = fields
                        .next()
                        .ok_or_else(|| err("lock-alias needs the derived name".into()))?;
                    let to = fields
                        .next()
                        .ok_or_else(|| err("lock-alias needs the canonical name".into()))?;
                    policy.lock_aliases.push(LockAlias {
                        path: path.to_string(),
                        from: from.to_string(),
                        to: to.to_string(),
                    });
                }
                "lock-allows-blocking" => {
                    let lock = fields
                        .next()
                        .ok_or_else(|| err("lock-allows-blocking needs a lock name".into()))?;
                    if reason.is_empty() {
                        return Err(err(format!(
                            "lock-allows-blocking {lock} needs a `-- reason`"
                        )));
                    }
                    policy.lock_blocking_ok.push(lock.to_string());
                }
                "blocking-call" => {
                    let callee = fields
                        .next()
                        .ok_or_else(|| err("blocking-call needs a callee".into()))?;
                    if reason.is_empty() {
                        return Err(err(format!("blocking-call {callee} needs a `-- reason`")));
                    }
                    policy.blocking_calls.push(callee.to_string());
                }
                "hotpath-alloc" => {
                    let path = fields
                        .next()
                        .ok_or_else(|| err("hotpath-alloc needs a path".into()))?;
                    let mut fns = Vec::new();
                    if let Some(spec) = fields.next() {
                        let names = spec
                            .strip_prefix("fn=")
                            .ok_or_else(|| err(format!("expected `fn=a,b,...`, got '{spec}'")))?;
                        fns = names
                            .split(',')
                            .filter(|s| !s.is_empty())
                            .map(str::to_string)
                            .collect();
                        if fns.is_empty() {
                            return Err(err("fn= needs at least one function name".into()));
                        }
                    }
                    policy.hotpath_alloc.push(HotAlloc {
                        path: path.to_string(),
                        fns,
                    });
                }
                other => return Err(err(format!("unknown policy keyword '{other}'"))),
            }
            if let Some(extra) = fields.next() {
                return Err(err(format!("trailing field '{extra}'")));
            }
        }
        if let Some(cycle) = declared_order_cycle(&policy.lock_orders) {
            return Err(PolicyError {
                line: 0,
                message: format!("declared lock-order hierarchy is cyclic through `{cycle}`"),
            });
        }
        Ok(policy)
    }

    /// Loads a policy file from disk.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Self::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// The repository's canonical policy — mirrors `audit.policy` at the
    /// workspace root.
    pub fn default_workspace() -> Self {
        Self::parse(DEFAULT_POLICY).expect("embedded policy must parse")
    }

    /// True when `path` (a `/`-separated relative path) is a hot path.
    pub fn is_hot_path(&self, path: &str) -> bool {
        self.hot_paths.iter().any(|p| path.contains(p.as_str()))
    }

    /// Allowlist entry covering `path`, if any.
    pub fn relaxed_ok_for(&self, path: &str) -> Option<&AllowEntry> {
        self.relaxed_ok
            .iter()
            .find(|e| path.contains(e.path.as_str()))
    }

    /// Publish rules applying to `path`.
    pub fn publish_rules_for<'a>(
        &'a self,
        path: &'a str,
    ) -> impl Iterator<Item = &'a PublishRule> + 'a {
        self.publish
            .iter()
            .filter(move |r| path.contains(r.path.as_str()))
    }

    /// True when the engine must not scan `path` at all.
    pub fn is_skipped(&self, path: &str) -> bool {
        self.skip.iter().any(|p| path.contains(p.path.as_str()))
    }

    /// The `skip` entry matching `path`, if any.
    pub fn skip_entry_for(&self, path: &str) -> Option<&SkipEntry> {
        self.skip.iter().find(|p| path.contains(p.path.as_str()))
    }

    /// The `hotpath-alloc` entry covering `path`, if any.
    pub fn hot_alloc_for(&self, path: &str) -> Option<&HotAlloc> {
        self.hotpath_alloc
            .iter()
            .find(|e| path.contains(e.path.as_str()))
    }

    /// Canonical name of a lexically-derived lock name within `path`.
    pub fn canonical_lock<'a>(&'a self, path: &str, derived: &'a str) -> &'a str {
        self.lock_aliases
            .iter()
            .find(|a| path.contains(a.path.as_str()) && a.from == derived)
            .map(|a| a.to.as_str())
            .unwrap_or(derived)
    }

    /// True when guards of `lock` may be held across blocking calls.
    pub fn lock_allows_blocking(&self, lock: &str) -> bool {
        self.lock_blocking_ok.iter().any(|l| l == lock)
    }
}

/// A lock name on a cycle in the declared `lock-order` relation, if the
/// declarations are not a partial order.
fn declared_order_cycle(orders: &[LockOrder]) -> Option<String> {
    let mut names: Vec<&str> = Vec::new();
    for o in orders {
        for n in [o.before.as_str(), o.after.as_str()] {
            if !names.contains(&n) {
                names.push(n);
            }
        }
    }
    let idx = |n: &str| names.iter().position(|m| *m == n).unwrap();
    let n = names.len();
    let mut reach = vec![false; n * n];
    for o in orders {
        reach[idx(&o.before) * n + idx(&o.after)] = true;
    }
    // Transitive closure, then any self-reachable vertex is on a cycle.
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                if reach[i * n + k] && reach[k * n + j] {
                    reach[i * n + j] = true;
                }
            }
        }
    }
    (0..n)
        .find(|&i| reach[i * n + i])
        .map(|i| names[i].to_string())
}

/// Embedded copy of the workspace policy (kept in sync with
/// `audit.policy`; the root file wins when present). The engine test
/// `policy_file_on_disk_matches_embedded_default` enforces the sync.
pub const DEFAULT_POLICY: &str = r#"# ---- gve-audit workspace policy -------------------------------------
# Hot paths: no unwrap/expect/panic!/assert!/todo!/unimplemented!/
# get_unchecked outside tests (debug_assert! is allowed). These are the
# phase kernels the service runs per request plus the request loop.
hotpath crates/core/src/localmove.rs
hotpath crates/core/src/refine.rs
hotpath crates/core/src/aggregate.rs
hotpath crates/core/src/kernel.rs
hotpath crates/prim/src/simd.rs
hotpath crates/prim/src/sched.rs
hotpath crates/serve/src/http.rs
hotpath crates/net/src/server.rs
hotpath crates/net/src/poller.rs

# Ordering policy table: values other threads synchronize on. The
# shutdown flag gates joining worker/accept threads: the store must be
# Release (publish everything before the signal) and loads Acquire.
publish crates/serve/src/jobs.rs shutdown.store Release,SeqCst -- workers observe queue + records writes made before shutdown
publish crates/serve/src/jobs.rs shutdown.load Acquire,SeqCst -- pairs with the Release store above
publish crates/serve/src/http.rs shutdown.store Release,SeqCst -- accept loop must see listener state preceding the signal
publish crates/serve/src/http.rs shutdown.load Acquire,SeqCst -- pairs with the Release store above
publish crates/net/src/server.rs stopping.store Release,SeqCst -- reactor must see all pre-stop writes before it begins draining
publish crates/net/src/server.rs stopping.load Acquire,SeqCst -- pairs with the Release store above

# Blanket Relaxed allowlists. Everything else needs an inline
# justification comment mentioning "relaxed" within 8 lines.
relaxed-ok crates/prim/src/alloc_count.rs -- advisory allocator statistics read at measurement boundaries; never synchronization

# Never scanned: shims are API stand-ins, fixtures are deliberately bad.
skip shims/
skip crates/audit/tests/fixtures/

# ---- lock model ------------------------------------------------------
# Teach the scope tracker about this workspace's lock wrappers: the
# poison-recovering helpers acquire the lock named by their argument,
# and the named constructors/accessors acquire a specific lock.
lock-wrapper lock_clean
lock-wrapper lock_table
lock-fn begin_update update_gate -- GraphCell::begin_update claims the per-graph update gate
lock-fn cache.get cache_inner -- ResultCache::get takes the single cache mutex
lock-fn cache.insert cache_inner -- ResultCache::insert takes the single cache mutex
lock-fn sender.send shard_queue -- modelled: a shard channel send publishes under the shard queue
lock-fn try_begin_update update_gate -- GraphCell::try_begin_update try-claims the per-graph update gate
lock-fn lock_shard ingest_shard -- ingest queue's poison-recovering shard lock helper
lock-alias crates/serve/src/handlers.rs cell entry -- handler-local GraphCell variable is the registry entry mutex
lock-alias crates/serve/src/registry.rs cell entry -- registry-local GraphCell variable is the entry mutex
lock-alias crates/serve/src/cache.rs inner cache_inner -- ResultCache's single inner mutex
lock-alias crates/serve/src/wal.rs wal graph_wal -- per-graph WAL mutex serializes appends and compaction
lock-alias crates/serve/src/delta.rs inner delta_ring -- DeltaRing's single map mutex

# Declared lock hierarchy. Observed nested acquisitions must follow
# these (transitively); anything else is a lock-order finding.
lock-order update_gate before entry -- updates claim the gate, then briefly the entry mutex to publish
lock-order update_gate before cache_inner -- incremental refresh publishes the recomputed partition to the cache under the gate
lock-order update_gate before ingest_shard -- the inline ingest fast path claims the gate, then checks the shard's pending map
lock-order update_gate before graph_wal -- batch WAL appends happen under the update gate, before publish
lock-order cache_inner before delta_ring -- the cache insert listener records the membership delta after the insert
lock-order cache_inner before graph_wal -- the cache insert listener logs the partition record after the insert
lock-order table before cache_inner -- submit consults the cache while holding the job table
lock-order table before shard_queue -- submit enqueues shard work while holding the job table

# Blocking model for guard-across-blocking: apply_batch is long graph
# compute; the update gate alone is designed to be held across it.
blocking-call apply_batch -- batch mutation replays the whole update set
lock-allows-blocking update_gate -- serializes writers per graph; designed to be held across batch compute
lock-allows-blocking graph_wal -- WAL appends fsync by design; only the per-graph WAL mutex is held

# ---- hot-path allocation lint ----------------------------------------
# Static complement of the PR 5 counting-allocator gate: no allocating
# constructs in the kernels (whole files) or the reactor's steady-state
# functions (fn-scoped: setup/accept paths may allocate).
hotpath-alloc crates/core/src/kernel.rs
hotpath-alloc crates/prim/src/simd.rs
hotpath-alloc crates/prim/src/smallmap.rs
hotpath-alloc crates/prim/src/sched.rs
hotpath-alloc crates/net/src/poller.rs fn=wait
hotpath-alloc crates/net/src/server.rs fn=conn_ready,read_conn,advance_parser,start_write,flush_write,apply_completions,expire_deadlines,poll_timeout_ms,close_conn
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_parses_and_covers_hot_paths() {
        let p = Policy::default_workspace();
        assert!(p.is_hot_path("crates/core/src/localmove.rs"));
        assert!(p.is_hot_path("crates/serve/src/http.rs"));
        assert!(!p.is_hot_path("crates/core/src/config.rs"));
        assert!(p.is_skipped("shims/rayon/src/lib.rs"));
        assert!(p.is_skipped("crates/audit/tests/fixtures/bad.rs"));
        assert!(p
            .publish_rules_for("crates/serve/src/jobs.rs")
            .any(|r| r.field == "shutdown" && r.method == "store"));
    }

    #[test]
    fn default_policy_declares_the_serve_lock_hierarchy() {
        let p = Policy::default_workspace();
        assert!(p
            .lock_orders
            .iter()
            .any(|o| o.before == "update_gate" && o.after == "entry"));
        assert!(p.lock_wrappers.iter().any(|w| w == "lock_clean"));
        assert!(p.lock_allows_blocking("update_gate"));
        assert!(!p.lock_allows_blocking("entry"));
        assert_eq!(
            p.canonical_lock("crates/serve/src/handlers.rs", "cell"),
            "entry"
        );
        assert_eq!(p.canonical_lock("crates/net/src/server.rs", "cell"), "cell");
        let reactor = p.hot_alloc_for("crates/net/src/server.rs").expect("entry");
        assert!(reactor.fns.iter().any(|f| f == "expire_deadlines"));
        assert!(p.hot_alloc_for("crates/core/src/kernel.rs").is_some());
        assert!(p.hot_alloc_for("crates/serve/src/jobs.rs").is_none());
    }

    #[test]
    fn parse_rejects_malformed_entries() {
        assert!(Policy::parse("hotpath").is_err());
        assert!(
            Policy::parse("relaxed-ok foo.rs").is_err(),
            "missing reason"
        );
        assert!(Policy::parse("publish a.rs shutdown.store Bogus -- r").is_err());
        assert!(Policy::parse("publish a.rs shutdownstore Release -- r").is_err());
        assert!(Policy::parse("frobnicate x").is_err());
        assert!(Policy::parse("hotpath a.rs extra").is_err());
        assert!(Policy::parse("lock-order a b -- r").is_err(), "no `before`");
        assert!(Policy::parse("lock-order a before b").is_err(), "no reason");
        assert!(Policy::parse("lock-fn only_callee").is_err());
        assert!(Policy::parse("blocking-call recv").is_err(), "no reason");
        assert!(Policy::parse("lock-allows-blocking g").is_err(), "reason");
        assert!(Policy::parse("hotpath-alloc a.rs bogus=x").is_err());
        assert!(Policy::parse("hotpath-alloc a.rs fn=").is_err());
    }

    #[test]
    fn parse_rejects_cyclic_declared_hierarchy() {
        let cyclic = "lock-order a before b -- r\n\
                      lock-order b before c -- r\n\
                      lock-order c before a -- r\n";
        let e = Policy::parse(cyclic).expect_err("cycle must be rejected");
        assert!(e.message.contains("cyclic"), "{e}");
    }

    #[test]
    fn parse_accepts_reasons_and_ordering_lists() {
        let p = Policy::parse(
            "publish x.rs flag.store Release,SeqCst -- because\nrelaxed-ok y.rs -- counters only\n",
        )
        .unwrap();
        assert_eq!(p.publish[0].allowed, vec!["Release", "SeqCst"]);
        assert_eq!(p.relaxed_ok[0].reason, "counters only");
        assert_eq!(p.relaxed_ok[0].line, 2);
    }

    #[test]
    fn parse_accepts_the_v2_lock_model_keywords() {
        let p = Policy::parse(
            "lock-order a before b -- why\n\
             lock-fn recv.get inner\n\
             lock-fn begin_update gate -- constructor\n\
             lock-wrapper lock_clean\n\
             lock-alias x.rs cell entry -- local name\n\
             lock-allows-blocking gate -- by design\n\
             blocking-call apply_batch -- long compute\n\
             hotpath-alloc hot.rs fn=step,tick\n",
        )
        .unwrap();
        assert_eq!(p.lock_orders[0].before, "a");
        assert_eq!(p.lock_fns[0].receiver.as_deref(), Some("recv"));
        assert_eq!(p.lock_fns[1].receiver, None);
        assert_eq!(p.lock_fns[1].lock, "gate");
        assert_eq!(p.lock_aliases[0].from, "cell");
        assert!(p.blocking_calls.iter().any(|c| c == "apply_batch"));
        assert_eq!(p.hotpath_alloc[0].fns, vec!["step", "tick"]);
    }
}
