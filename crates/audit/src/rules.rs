//! The lint rules and the per-file audit driver.
//!
//! Seven rule families, each enforcing an invariant the concurrency
//! design of GVE-Leiden depends on but the compiler cannot check:
//!
//! | rule id                 | invariant |
//! |-------------------------|-----------|
//! | `unsafe-safety`         | every `unsafe` block/fn/impl carries a `SAFETY:` comment (or `# Safety` doc section) |
//! | `atomic-ordering`       | `Ordering::Relaxed` needs an inline justification mentioning "relaxed" within 8 lines, or a policy allowlist entry; publish sites must use their policy-mandated orderings |
//! | `hotpath-panic`         | no `unwrap`/`expect`/`panic!`/`assert!`/`todo!`/`unimplemented!`/`unreachable!`/`get_unchecked` in designated hot paths (`debug_assert!` allowed) |
//! | `rayon-blocking`        | no `std::thread::spawn`/`thread::sleep`/blocking I/O inside rayon parallel regions |
//! | `lock-order`            | nested lock acquisitions follow the policy's declared `lock-order` hierarchy; no cycles in the observed acquisition graph (see [`crate::scopes`], [`crate::lockgraph`]) |
//! | `hotpath-alloc`         | no allocating constructs in policy-pinned allocation-free files/functions |
//! | `guard-across-blocking` | no lock guard held across `recv`/`join`/`sleep`/`accept` or policy-declared blocking calls |
//!
//! Test code (brace-matched `#[cfg(test)]` / `#[test]` regions — see
//! [`crate::view`]) is exempt from everything but `unsafe-safety`:
//! undocumented aliasing in tests is how soundness bugs hide.
//!
//! A finding can be suppressed in place with a comment containing
//! `audit:allow(<rule-id>)` on the offending line or the line above —
//! grep-able, reviewable, and self-expiring when the code moves: the
//! `stale-suppression` check warns on markers that silence nothing.

use crate::lexer::TokKind;
use crate::lockgraph::{self, LockEdge};
use crate::policy::Policy;
use crate::scopes;
use crate::view::FileView;
use std::fmt;

/// Every rule id the engine can emit, for cache round-tripping and the
/// SARIF rule table.
pub const RULE_IDS: [&str; 8] = [
    "unsafe-safety",
    "atomic-ordering",
    "hotpath-panic",
    "rayon-blocking",
    "lock-order",
    "hotpath-alloc",
    "guard-across-blocking",
    "stale-suppression",
];

/// Interns a rule name back to its `'static` id (cache deserialization).
pub fn canonical_rule_id(name: &str) -> Option<&'static str> {
    RULE_IDS.iter().find(|r| **r == name).copied()
}

/// How bad a finding is: errors gate CI (exit 1), warnings are
/// advisory (exit 0 unless promoted, e.g. `--strict-suppressions`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory; does not fail the audit by itself.
    Warning,
    /// Gates the merge.
    Error,
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule id (`unsafe-safety`, `atomic-ordering`, ...).
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
    /// Error (gates CI) or Warning (advisory).
    pub severity: Severity,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Builds a [`Violation`] without a [`FileView`] at hand.
pub(crate) fn violation_at(
    path: &str,
    rule: &'static str,
    line: u32,
    severity: Severity,
    message: String,
) -> Violation {
    Violation {
        rule,
        path: path.to_string(),
        line,
        message,
        severity,
    }
}

/// Rayon entry points whose call chains count as parallel regions.
const RAYON_ENTRIES: [&str; 15] = [
    "par_iter",
    "par_iter_mut",
    "into_par_iter",
    "par_chunks",
    "par_chunks_mut",
    "par_sort",
    "par_sort_unstable",
    "par_sort_unstable_by_key",
    "par_sort_by_key",
    "par_bridge",
    "broadcast",
    "dynamic_workers",
    "scheduled_workers",
    "par_for_dynamic",
    "par_for_dynamic_sum",
];

/// Everything one file contributes to the workspace audit: its local
/// findings, its lock-acquisition edges (graph analysis is global), and
/// its suppression ledger (stale-suppression accounting is global too).
#[derive(Debug, Clone)]
pub struct FileAudit {
    /// Findings local to this file (all rules except `lock-order` and
    /// `stale-suppression`, which need the whole workspace).
    pub findings: Vec<Violation>,
    /// Observed nested-acquisition edges.
    pub edges: Vec<LockEdge>,
    /// `(comment line, rule)` of every `audit:allow` marker.
    pub markers: Vec<(u32, String)>,
    /// Markers that silenced at least one finding.
    pub used_markers: Vec<(u32, String)>,
    /// Path pattern of the `relaxed-ok` entry this file exercised.
    pub relaxed_entry_used: Option<String>,
}

/// Runs every per-file rule against one file. `path` must be
/// workspace-relative with `/` separators (it is matched against the
/// policy tables).
pub fn audit_file(path: &str, source: &str, policy: &Policy) -> FileAudit {
    let view = FileView::new(path, source);
    let mut out = Vec::new();
    rule_unsafe_safety(&view, &mut out);
    rule_atomic_ordering(&view, policy, &mut out);
    rule_publish_sites(&view, policy, &mut out);
    if policy.is_hot_path(path) {
        rule_hotpath_panic(&view, &mut out);
    }
    rule_rayon_blocking(&view, &mut out);
    let scoped = scopes::analyze(&view, policy);
    out.extend(scoped.findings);
    out.sort_by_key(|v| (v.line, v.rule));
    let relaxed_entry_used = policy.relaxed_ok_for(path).and_then(|entry| {
        let exercised = view.code.iter().enumerate().any(|(i, t)| {
            t.is_ident("Relaxed")
                && i >= 3
                && view.code[i - 1].is_punct(":")
                && view.code[i - 2].is_punct(":")
                && view.code[i - 3].is_ident("Ordering")
                && !view.in_tests(t.line)
        });
        exercised.then(|| entry.path.clone())
    });
    FileAudit {
        findings: out,
        edges: scoped.edges,
        markers: view.markers(),
        used_markers: view.used_markers(),
        relaxed_entry_used,
    }
}

/// Single-file entry point: per-file rules plus a lock-graph analysis
/// of just this file's edges. The workspace driver uses [`audit_file`]
/// instead and runs the graph globally.
pub fn audit_source(path: &str, source: &str, policy: &Policy) -> Vec<Violation> {
    let fa = audit_file(path, source, policy);
    let mut out = fa.findings;
    out.extend(lockgraph::analyze(&fa.edges, policy));
    out.sort_by_key(|v| (v.line, v.rule));
    out
}

fn violation(view: &FileView<'_>, rule: &'static str, line: u32, message: String) -> Violation {
    violation_at(view.path, rule, line, Severity::Error, message)
}

// ---- unsafe-safety --------------------------------------------------

fn rule_unsafe_safety(view: &FileView<'_>, out: &mut Vec<Violation>) {
    const RULE: &str = "unsafe-safety";
    for (i, t) in view.code.iter().enumerate() {
        if !t.is_ident("unsafe") {
            continue;
        }
        let next = view.code.get(i + 1);
        let what = match next {
            Some(n) if n.is_ident("fn") => "unsafe fn",
            Some(n) if n.is_ident("impl") => "unsafe impl",
            Some(n) if n.is_ident("trait") => "unsafe trait",
            // `unsafe` inside `fn` signatures of trait items, extern
            // blocks, etc. all still want justification; treat the rest
            // as blocks.
            _ => "unsafe block",
        };
        if view.suppressed(t.line, RULE) {
            continue;
        }
        let has_safety = |text: &str| {
            let lower = text.to_ascii_lowercase();
            lower.contains("safety:") || lower.contains("# safety")
        };
        // Same-line trailing comment, the immediately-preceding comment
        // block (blocks above may include attributes/doc sections), or
        // — for items — the doc block.
        let justified = view.comment_near(t.line, 0, |c| has_safety(c))
            || has_safety(&view.block_above(t.line));
        if !justified {
            out.push(violation(
                view,
                RULE,
                t.line,
                format!("{what} without a `SAFETY:` comment (or `# Safety` doc section)"),
            ));
        }
    }
}

// ---- atomic-ordering ------------------------------------------------

fn rule_atomic_ordering(view: &FileView<'_>, policy: &Policy, out: &mut Vec<Violation>) {
    const RULE: &str = "atomic-ordering";
    if policy.relaxed_ok_for(view.path).is_some() {
        return;
    }
    for (i, t) in view.code.iter().enumerate() {
        if !t.is_ident("Relaxed") || i < 3 {
            continue;
        }
        let is_ordering_path = view.code[i - 1].is_punct(":")
            && view.code[i - 2].is_punct(":")
            && view.code[i - 3].is_ident("Ordering");
        if !is_ordering_path || view.in_tests(t.line) || view.suppressed(t.line, RULE) {
            continue;
        }
        let justified =
            view.comment_near(t.line, 8, |c| c.to_ascii_lowercase().contains("relaxed"));
        if !justified {
            out.push(violation(
                view,
                RULE,
                t.line,
                "Ordering::Relaxed without a justification comment mentioning \"relaxed\" \
                 within 8 lines (or a relaxed-ok policy entry)"
                    .to_string(),
            ));
        }
    }
}

// ---- publish sites (ordering policy table) --------------------------

fn rule_publish_sites(view: &FileView<'_>, policy: &Policy, out: &mut Vec<Violation>) {
    const RULE: &str = "atomic-ordering";
    for rule in policy.publish_rules_for(view.path) {
        for (i, t) in view.code.iter().enumerate() {
            let is_site = t.kind == TokKind::Ident
                && t.text.contains(rule.field.as_str())
                && matches!(view.code.get(i + 1), Some(n) if n.is_punct("."))
                && matches!(view.code.get(i + 2), Some(n) if n.is_ident(&rule.method))
                && matches!(view.code.get(i + 3), Some(n) if n.is_punct("("));
            if !is_site || view.in_tests(t.line) || view.suppressed(t.line, RULE) {
                continue;
            }
            // Collect every `Ordering::X` inside the call parens.
            let close = match matching_paren(&view.code, i + 3) {
                Some(c) => c,
                None => continue,
            };
            let mut seen = Vec::new();
            for j in i + 4..close {
                if view.code[j].is_ident("Ordering")
                    && matches!(view.code.get(j + 1), Some(n) if n.is_punct(":"))
                    && matches!(view.code.get(j + 2), Some(n) if n.is_punct(":"))
                {
                    if let Some(ord) = view.code.get(j + 3) {
                        seen.push(ord.text.clone());
                    }
                }
            }
            if seen.is_empty() {
                out.push(violation(
                    view,
                    RULE,
                    t.line,
                    format!(
                        "publish site `{}.{}` uses a non-literal ordering; the policy \
                         requires one of [{}] ({})",
                        rule.field,
                        rule.method,
                        rule.allowed.join(", "),
                        rule.reason
                    ),
                ));
                continue;
            }
            for ord in seen {
                if !rule.allowed.iter().any(|a| a == &ord) {
                    out.push(violation(
                        view,
                        RULE,
                        t.line,
                        format!(
                            "publish site `{}.{}` uses Ordering::{ord}; the policy requires \
                             one of [{}] ({})",
                            rule.field,
                            rule.method,
                            rule.allowed.join(", "),
                            rule.reason
                        ),
                    ));
                }
            }
        }
    }
}

// ---- hotpath-panic --------------------------------------------------

fn rule_hotpath_panic(view: &FileView<'_>, out: &mut Vec<Violation>) {
    const RULE: &str = "hotpath-panic";
    const PANIC_MACROS: [&str; 7] = [
        "panic",
        "todo",
        "unimplemented",
        "unreachable",
        "assert",
        "assert_eq",
        "assert_ne",
    ];
    for (i, t) in view.code.iter().enumerate() {
        if t.kind != TokKind::Ident || view.in_tests(t.line) {
            continue;
        }
        let next_is = |s: &str| matches!(view.code.get(i + 1), Some(n) if n.is_punct(s));
        let offence = match t.text.as_str() {
            "unwrap" | "expect" if next_is("(") => Some(format!(
                "`.{}()` in a hot path — return an Option/Result or restructure",
                t.text
            )),
            "get_unchecked" | "get_unchecked_mut" => Some(format!(
                "`{}` in a hot path — bounds-checked indexing only",
                t.text
            )),
            m if PANIC_MACROS.contains(&m) && next_is("!") => Some(format!(
                "`{m}!` in a hot path — use `debug_assert!` for invariants",
            )),
            _ => None,
        };
        if let Some(message) = offence {
            if !view.suppressed(t.line, RULE) {
                out.push(violation(view, RULE, t.line, message));
            }
        }
    }
}

// ---- rayon-blocking -------------------------------------------------

fn rule_rayon_blocking(view: &FileView<'_>, out: &mut Vec<Violation>) {
    const RULE: &str = "rayon-blocking";
    let mut seen: Vec<(u32, &'static str)> = Vec::new();
    let mut i = 0;
    while i < view.code.len() {
        let t = &view.code[i];
        let is_entry = t.kind == TokKind::Ident
            && RAYON_ENTRIES.contains(&t.text.as_str())
            && matches!(view.code.get(i + 1), Some(n) if n.is_punct("("));
        if !is_entry || view.in_tests(t.line) {
            i += 1;
            continue;
        }
        // The parallel region: this call plus the rest of its method
        // chain (`.for_each(...)`, `.map(...).sum()`, ...), where the
        // worker closures actually live.
        let mut end = match matching_paren(&view.code, i + 1) {
            Some(c) => c,
            None => {
                i += 1;
                continue;
            }
        };
        while matches!(view.code.get(end + 1), Some(n) if n.is_punct("."))
            && matches!(view.code.get(end + 2), Some(n) if n.kind == TokKind::Ident)
            && matches!(view.code.get(end + 3), Some(n) if n.is_punct("("))
        {
            end = match matching_paren(&view.code, end + 3) {
                Some(c) => c,
                None => break,
            };
        }
        for j in i + 1..end {
            let c = &view.code[j];
            if c.kind != TokKind::Ident {
                continue;
            }
            let path_next =
                |k: usize, s: &str| matches!(view.code.get(k), Some(n) if n.is_ident(s));
            let double_colon = |k: usize| {
                matches!(view.code.get(k), Some(n) if n.is_punct(":"))
                    && matches!(view.code.get(k + 1), Some(n) if n.is_punct(":"))
            };
            let found: Option<&'static str> = match c.text.as_str() {
                "thread" if double_colon(j + 1) && path_next(j + 3, "spawn") => {
                    Some("thread::spawn")
                }
                "thread" if double_colon(j + 1) && path_next(j + 3, "sleep") => {
                    Some("thread::sleep")
                }
                "fs" if double_colon(j + 1) => Some("std::fs I/O"),
                "File" | "OpenOptions" if double_colon(j + 1) => Some("file I/O"),
                "TcpStream" | "TcpListener" | "UdpSocket" if double_colon(j + 1) => {
                    Some("network I/O")
                }
                "stdin" | "stdout" if matches!(view.code.get(j + 1), Some(n) if n.is_punct("(")) => {
                    Some("console I/O")
                }
                _ => None,
            };
            if let Some(what) = found {
                if !seen.contains(&(c.line, what)) && !view.suppressed(c.line, RULE) {
                    seen.push((c.line, what));
                    out.push(violation(
                        view,
                        RULE,
                        c.line,
                        format!(
                            "{what} inside a rayon parallel region (entered via `{}` \
                             on line {}) — blocks a pool worker",
                            t.text, t.line
                        ),
                    ));
                }
            }
        }
        i += 1; // nested entries re-scan; findings dedupe via `seen`
    }
}

/// Index of the `)` matching the `(` at `open`. Only parentheses are
/// tracked — brackets and braces inside are irrelevant to balance.
fn matching_paren(code: &[crate::lexer::Tok], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in code.iter().enumerate().skip(open) {
        if t.is_punct("(") {
            depth += 1;
        } else if t.is_punct(")") {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Violation> {
        audit_source(path, src, &Policy::default_workspace())
    }

    #[test]
    fn undocumented_unsafe_block_is_flagged_and_safety_comment_clears_it() {
        let bad = "fn f(p: *mut u8) { unsafe { *p = 1; } }";
        let found = run("crates/x/src/lib.rs", bad);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, "unsafe-safety");
        assert_eq!(found[0].severity, Severity::Error);

        let good = "fn f(p: *mut u8) {\n    // SAFETY: p is valid per caller contract.\n    unsafe { *p = 1; }\n}";
        assert!(run("crates/x/src/lib.rs", good).is_empty());
    }

    #[test]
    fn unsafe_fn_accepts_safety_doc_section() {
        let good = "/// Does things.\n///\n/// # Safety\n/// Caller must own `p`.\n#[inline]\npub unsafe fn f(p: *mut u8) { let _ = p; }";
        assert!(run("crates/x/src/lib.rs", good).is_empty());
        let bad = "pub unsafe fn f(p: *mut u8) { let _ = p; }";
        assert_eq!(run("crates/x/src/lib.rs", bad).len(), 1);
    }

    #[test]
    fn unsafe_impl_needs_comment_even_in_tests() {
        let bad =
            "#[cfg(test)]\nmod tests {\n    struct S(*mut u8);\n    unsafe impl Send for S {}\n}";
        let found = run("crates/x/src/lib.rs", bad);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("unsafe impl"));
    }

    #[test]
    fn relaxed_needs_nearby_justification() {
        let bad = "use std::sync::atomic::{AtomicU64, Ordering};\nfn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }";
        let found = run("crates/x/src/lib.rs", bad);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, "atomic-ordering");

        let good = "use std::sync::atomic::{AtomicU64, Ordering};\n// Relaxed: pure counter, nothing synchronizes on it.\nfn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }";
        assert!(run("crates/x/src/lib.rs", good).is_empty());
    }

    #[test]
    fn relaxed_in_tests_and_in_comments_is_ignored() {
        let src = "// Ordering::Relaxed mentioned in prose.\n#[cfg(test)]\nmod tests {\n    use std::sync::atomic::{AtomicU64, Ordering};\n    #[test]\n    fn t() { AtomicU64::new(0).fetch_add(1, Ordering::Relaxed); }\n}";
        assert!(run("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn code_after_a_test_module_is_still_audited() {
        // v1's "earliest test attribute onward" heuristic exempted
        // everything below the first #[cfg(test)] — including real code
        // between two test modules (the `prim/smallmap.rs` layout).
        let src = "#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n\
                   use std::sync::atomic::{AtomicU64, Ordering};\n\
                   fn prod(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n\
                   #[cfg(test)]\nmod more {\n    fn u() {}\n}";
        let found = run("crates/x/src/lib.rs", src);
        assert_eq!(found.len(), 1, "{found:#?}");
        assert_eq!(found[0].rule, "atomic-ordering");
    }

    #[test]
    fn publish_site_demotion_is_caught() {
        let bad = "use std::sync::atomic::{AtomicBool, Ordering};\n// Relaxed: just a flag. (wrong!)\nfn f(s: &AtomicBool) { s.store(true, Ordering::Relaxed); }\nfn g(shutdown: &AtomicBool) { shutdown.store(true, Ordering::Relaxed); }";
        let found = run("crates/serve/src/jobs.rs", bad);
        // `s.store` is not a publish site; `shutdown.store` is.
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("Release"));

        let good = "use std::sync::atomic::{AtomicBool, Ordering};\nfn g(shutdown: &AtomicBool) { shutdown.store(true, Ordering::Release); }";
        assert!(run("crates/serve/src/jobs.rs", good).is_empty());
    }

    #[test]
    fn hotpath_bans_panics_but_not_debug_assert_or_unwrap_or() {
        let bad = "fn f(v: &[u32]) -> u32 { v.first().unwrap().wrapping_add(1) }\nfn g() { panic!(\"no\"); }\nfn h(v: &[u32]) { assert!(v.len() > 1); }";
        let found = run("crates/core/src/localmove.rs", bad);
        assert_eq!(found.len(), 3, "{found:?}");
        assert!(found.iter().all(|v| v.rule == "hotpath-panic"));

        let good = "fn f(v: &[u32]) -> u32 { v.first().copied().unwrap_or(0) }\nfn h(v: &[u32]) { debug_assert!(v.len() > 1); }";
        assert!(run("crates/core/src/localmove.rs", good).is_empty());
        // Same code outside a hot path is fine.
        assert!(run("crates/core/src/config.rs", bad)
            .iter()
            .all(|v| v.rule != "hotpath-panic"));
    }

    #[test]
    fn hotpath_bans_get_unchecked() {
        let bad = "fn f(v: &[u32]) -> u32 {\n    // SAFETY: in bounds.\n    unsafe { *v.get_unchecked(0) }\n}";
        let found = run("crates/core/src/kernel.rs", bad);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("get_unchecked"));
    }

    #[test]
    fn thread_spawn_inside_rayon_region_is_flagged() {
        let bad = "use rayon::prelude::*;\nfn f(v: &[u32]) {\n    v.par_iter().for_each(|_| {\n        std::thread::spawn(|| {});\n    });\n}";
        let found = run("crates/x/src/lib.rs", bad);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, "rayon-blocking");
        assert!(found[0].message.contains("thread::spawn"));
    }

    #[test]
    fn io_inside_dynamic_workers_is_flagged_but_outside_is_fine() {
        let bad = "fn f() {\n    dynamic_workers(10, 2, |claims| {\n        let _ = std::fs::read(\"x\");\n        claims.count()\n    });\n}";
        let found = run("crates/x/src/lib.rs", bad);
        assert_eq!(found.len(), 1, "{found:?}");

        let good = "fn f() {\n    let _ = std::fs::read(\"x\");\n    dynamic_workers(10, 2, |claims| claims.count());\n}";
        assert!(run("crates/x/src/lib.rs", good).is_empty());
    }

    #[test]
    fn suppression_marker_silences_a_finding() {
        let src = "fn f(v: &[u32]) -> u32 {\n    // audit:allow(hotpath-panic): len checked by caller.\n    v.first().unwrap().wrapping_add(1)\n}";
        assert!(run("crates/core/src/kernel.rs", src).is_empty());
    }

    #[test]
    fn findings_carry_path_line_and_sort_by_line() {
        let bad = "fn g() { panic!(\"a\"); }\nfn f(p: *mut u8) { unsafe { *p = 1; } }";
        let found = run("crates/core/src/refine.rs", bad);
        assert_eq!(found.len(), 2);
        assert_eq!(found[0].line, 1);
        assert_eq!(found[1].line, 2);
        assert_eq!(found[0].path, "crates/core/src/refine.rs");
        assert!(found[1].to_string().contains("refine.rs:2"));
    }

    #[test]
    fn audit_file_reports_the_suppression_ledger() {
        let src = "fn f(v: &[u32]) -> u32 {\n    // audit:allow(hotpath-panic): len checked by caller.\n    v.first().unwrap().wrapping_add(1)\n}\n// audit:allow(unsafe-safety): nothing unsafe here, stale.\nfn g() {}\n";
        let fa = audit_file(
            "crates/core/src/kernel.rs",
            src,
            &Policy::default_workspace(),
        );
        assert!(fa.findings.is_empty(), "{:?}", fa.findings);
        assert_eq!(fa.markers.len(), 2);
        assert_eq!(fa.used_markers, vec![(2, "hotpath-panic".to_string())]);
    }

    #[test]
    fn audit_file_tracks_relaxed_ok_entry_usage() {
        let p = Policy::parse("relaxed-ok crates/gen/ -- generated code\n").unwrap();
        let used = "use std::sync::atomic::{AtomicU64, Ordering};\nfn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }";
        let fa = audit_file("crates/gen/src/lib.rs", used, &p);
        assert_eq!(fa.relaxed_entry_used.as_deref(), Some("crates/gen/"));
        let unused = "fn f() {}";
        let fa = audit_file("crates/gen/src/lib.rs", unused, &p);
        assert_eq!(fa.relaxed_entry_used, None);
    }
}
