//! gve-audit: the workspace lint engine.
//!
//! GVE-Leiden's asynchronous local-moving phase races threads on shared
//! atomics *by design*, and `crates/prim` hands out `&self` writes
//! through [`SharedSlice`]-style unsafe aliasing. The compiler cannot
//! check the conventions that keep that sound — so this crate makes
//! them executable. `cargo run -p gve-audit` walks every Rust source in
//! the workspace, tokenizes it (a minimal hand-rolled lexer — the
//! offline workspace has no `syn`; token-level views of comments vs.
//! code are exactly what the rules need), and enforces the rule
//! families documented in [`rules`], driven by the policy table in
//! [`policy`]. v2 adds a scope-aware pass ([`scopes`]): lexical lock
//! guard tracking feeding a workspace-wide acquisition graph
//! ([`lockgraph`]), a hot-path allocation lint, and a
//! guard-across-blocking check.
//!
//! Exit status is the contract: `0` means no error-severity findings,
//! `1` means errors were printed, `2` means the tool itself failed
//! (unreadable policy, I/O error). CI gates merges on it and uploads
//! the `--sarif` rendering ([`sarif`]) to code scanning. `--incremental`
//! re-scans only files whose content hash changed ([`cache`]).
//!
//! [`SharedSlice`]: ../gve_prim/shared_slice/struct.SharedSlice.html

pub mod cache;
pub mod lexer;
pub mod lockgraph;
pub mod mini_json;
pub mod policy;
pub mod rules;
pub mod sarif;
mod scopes;
mod view;

pub use policy::Policy;
pub use rules::{audit_file, audit_source, canonical_rule_id, FileAudit, Severity, Violation};

use cache::{fnv1a, AuditCache};
use rules::violation_at;
use std::path::{Path, PathBuf};

/// Directories under the workspace root that are scanned for `.rs`
/// files. `shims/` is reachable here but excluded by the default
/// policy's `skip` entries, keeping the decision in the reviewable
/// policy file rather than hard-coded.
const SCAN_ROOTS: [&str; 2] = ["crates", "shims"];

/// Knobs for [`audit_workspace_with`].
#[derive(Debug, Clone, Default)]
pub struct AuditOptions {
    /// `Some(path)` enables the incremental cache at `path`
    /// (conventionally `target/audit-cache.json`).
    pub cache_path: Option<PathBuf>,
    /// FNV-1a 64 hash of the policy *text*; any policy edit invalidates
    /// the cache. Only consulted when `cache_path` is set.
    pub policy_fingerprint: u64,
    /// Promote `stale-suppression` findings from warnings to errors.
    pub strict_suppressions: bool,
}

/// What a workspace audit produced.
#[derive(Debug)]
pub struct AuditReport {
    /// All findings, sorted by `(path, line, rule, message)`.
    pub findings: Vec<Violation>,
    /// Files actually audited (after `skip` filtering).
    pub files_scanned: usize,
    /// Of those, how many were satisfied from the incremental cache.
    pub cache_hits: usize,
}

/// Audits every non-skipped `.rs` file under `root`. Returns findings
/// sorted by path then line; I/O problems are reported as `Err`.
///
/// Thin wrapper over [`audit_workspace_with`] with default options
/// (no cache, suppression staleness as warnings).
pub fn audit_workspace(root: &Path, policy: &Policy) -> Result<Vec<Violation>, String> {
    audit_workspace_with(root, policy, &AuditOptions::default()).map(|r| r.findings)
}

/// The full workspace driver: per-file rules (cached when
/// `opts.cache_path` is set), then the global analyses — the lock-order
/// acquisition graph over the union of every file's edges, and
/// stale-suppression accounting over the union of every file's
/// `audit:allow` ledger plus the policy's own `relaxed-ok`/`skip`
/// entries.
pub fn audit_workspace_with(
    root: &Path,
    policy: &Policy,
    opts: &AuditOptions,
) -> Result<AuditReport, String> {
    let mut files = Vec::new();
    for dir in SCAN_ROOTS {
        let top = root.join(dir);
        if top.is_dir() {
            collect_rs_files(&top, &mut files)?;
        }
    }
    let mut cache = opts
        .cache_path
        .as_ref()
        .map(|p| AuditCache::load(p, opts.policy_fingerprint));

    let mut audits: Vec<(String, FileAudit)> = Vec::new();
    let mut cache_hits = 0usize;
    // Policy `skip` entries that matched at least one walked file.
    let mut used_skip_lines: Vec<usize> = Vec::new();
    for file in files {
        let rel = relative_slash_path(root, &file);
        if let Some(entry) = policy.skip_entry_for(&rel) {
            if !used_skip_lines.contains(&entry.line) {
                used_skip_lines.push(entry.line);
            }
            continue;
        }
        let source = std::fs::read_to_string(&file)
            .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
        let hash = fnv1a(source.as_bytes());
        let audit = match cache.as_ref().and_then(|c| c.lookup(&rel, hash)) {
            Some(cached) => {
                cache_hits += 1;
                cached.clone()
            }
            None => {
                let fresh = audit_file(&rel, &source, policy);
                if let Some(c) = cache.as_mut() {
                    c.store(&rel, hash, fresh.clone());
                }
                fresh
            }
        };
        audits.push((rel, audit));
    }

    let mut findings: Vec<Violation> = Vec::new();
    let mut edges = Vec::new();
    for (_, a) in &audits {
        findings.extend(a.findings.iter().cloned());
        edges.extend(a.edges.iter().cloned());
    }
    findings.extend(lockgraph::analyze(&edges, policy));

    // Stale-suppression accounting. A marker is stale when it silenced
    // nothing; a `relaxed-ok` entry when no matched file has a non-test
    // `Ordering::Relaxed`; a `skip` entry when it matched no walked
    // file. `--strict-suppressions` promotes these to errors.
    let stale_sev = if opts.strict_suppressions {
        Severity::Error
    } else {
        Severity::Warning
    };
    for (path, a) in &audits {
        for (line, rule) in &a.markers {
            if !a.used_markers.iter().any(|(l, r)| l == line && r == rule) {
                findings.push(violation_at(
                    path,
                    "stale-suppression",
                    *line,
                    stale_sev,
                    format!("audit:allow({rule}) suppresses nothing — delete the marker"),
                ));
            }
        }
    }
    for entry in &policy.relaxed_ok {
        let used = audits
            .iter()
            .any(|(_, a)| a.relaxed_entry_used.as_deref() == Some(entry.path.as_str()));
        if !used {
            findings.push(violation_at(
                "audit.policy",
                "stale-suppression",
                entry.line as u32,
                stale_sev,
                format!(
                    "`relaxed-ok {}` matches no non-test Ordering::Relaxed use — delete the entry",
                    entry.path
                ),
            ));
        }
    }
    for entry in &policy.skip {
        if !used_skip_lines.contains(&entry.line) {
            findings.push(violation_at(
                "audit.policy",
                "stale-suppression",
                entry.line as u32,
                stale_sev,
                format!(
                    "`skip {}` matches no file in the tree — delete the entry",
                    entry.path
                ),
            ));
        }
    }

    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule, a.message.as_str()).cmp(&(
            b.path.as_str(),
            b.line,
            b.rule,
            b.message.as_str(),
        ))
    });

    if let (Some(c), Some(p)) = (cache.as_mut(), opts.cache_path.as_ref()) {
        c.retain_paths(&audits.iter().map(|(p, _)| p.clone()).collect::<Vec<_>>());
        c.save(p)
            .map_err(|e| format!("cannot write cache {}: {e}", p.display()))?;
    }

    Ok(AuditReport {
        findings,
        files_scanned: audits.len(),
        cache_hits,
    })
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("bad dir entry under {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// `root`-relative path with forward slashes (policy matching is done
/// on these regardless of host OS).
fn relative_slash_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Locates the workspace root: walks up from `start` looking for a
/// directory containing both `Cargo.toml` and `crates/`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start.to_path_buf());
    while let Some(dir) = cur {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        cur = dir.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_paths_are_slash_separated() {
        let root = Path::new("/w");
        let file = Path::new("/w/crates/core/src/lib.rs");
        assert_eq!(relative_slash_path(root, file), "crates/core/src/lib.rs");
    }

    #[test]
    fn workspace_root_is_found_from_this_crate() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("root");
        assert!(root.join("crates/audit").is_dir());
    }
}
