//! gve-audit: the workspace lint engine.
//!
//! GVE-Leiden's asynchronous local-moving phase races threads on shared
//! atomics *by design*, and `crates/prim` hands out `&self` writes
//! through [`SharedSlice`]-style unsafe aliasing. The compiler cannot
//! check the conventions that keep that sound — so this crate makes
//! them executable. `cargo run -p gve-audit` walks every Rust source in
//! the workspace, tokenizes it (a minimal hand-rolled lexer — the
//! offline workspace has no `syn`; token-level views of comments vs.
//! code are exactly what the rules need), and enforces the four rules
//! documented in [`rules`], driven by the policy table in [`policy`].
//!
//! Exit status is the contract: `0` means the workspace is clean, `1`
//! means findings were printed, `2` means the tool itself failed
//! (unreadable policy, I/O error). CI gates merges on it.
//!
//! [`SharedSlice`]: ../gve_prim/shared_slice/struct.SharedSlice.html

pub mod lexer;
pub mod policy;
pub mod rules;

pub use policy::Policy;
pub use rules::{audit_source, Violation};

use std::path::{Path, PathBuf};

/// Directories under the workspace root that are scanned for `.rs`
/// files. `shims/` is reachable here but excluded by the default
/// policy's `skip` entries, keeping the decision in the reviewable
/// policy file rather than hard-coded.
const SCAN_ROOTS: [&str; 2] = ["crates", "shims"];

/// Audits every non-skipped `.rs` file under `root`. Returns findings
/// sorted by path then line; I/O problems are reported as `Err`.
pub fn audit_workspace(root: &Path, policy: &Policy) -> Result<Vec<Violation>, String> {
    let mut files = Vec::new();
    for dir in SCAN_ROOTS {
        let top = root.join(dir);
        if top.is_dir() {
            collect_rs_files(&top, &mut files)?;
        }
    }
    let mut out = Vec::new();
    for file in files {
        let rel = relative_slash_path(root, &file);
        if policy.is_skipped(&rel) {
            continue;
        }
        let source = std::fs::read_to_string(&file)
            .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
        out.extend(audit_source(&rel, &source, policy));
    }
    out.sort_by(|a, b| (a.path.as_str(), a.line).cmp(&(b.path.as_str(), b.line)));
    Ok(out)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("bad dir entry under {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// `root`-relative path with forward slashes (policy matching is done
/// on these regardless of host OS).
fn relative_slash_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Locates the workspace root: walks up from `start` looking for a
/// directory containing both `Cargo.toml` and `crates/`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start.to_path_buf());
    while let Some(dir) = cur {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        cur = dir.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_paths_are_slash_separated() {
        let root = Path::new("/w");
        let file = Path::new("/w/crates/core/src/lib.rs");
        assert_eq!(relative_slash_path(root, file), "crates/core/src/lib.rs");
    }

    #[test]
    fn workspace_root_is_found_from_this_crate() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("root");
        assert!(root.join("crates/audit").is_dir());
    }
}
