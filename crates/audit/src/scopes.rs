//! Scope-aware analysis: lexical guard tracking per function.
//!
//! This is the v2 upgrade over the flat token rules — still no AST (the
//! offline workspace has no `syn`), but enough structure to reason
//! about *regions*: function bodies, `let`-bound lock guards and the
//! block scope they live to, `drop(guard)` early releases, and the
//! calls made while a guard is held. Three things come out of a walk:
//!
//! * **Lock edges** — `A` held while acquiring `B` — feeding the
//!   workspace-wide graph in [`crate::lockgraph`].
//! * **`guard-across-blocking` findings** — a guard alive across
//!   `recv`/`join`/`sleep`/`accept` or a policy-declared blocking call
//!   (the PR 6 "inline handlers block behind update batches" bug class,
//!   as a permanent lint). Condvar waits are *not* blocking here: they
//!   release the guard while parked.
//! * **`hotpath-alloc` findings** — allocating constructs inside files
//!   or functions the policy pins as allocation-free.
//!
//! What counts as acquiring a lock:
//!
//! * `recv.lock()` / zero-arg `recv.read()` / zero-arg `recv.write()` —
//!   the lock name is the last identifier of the receiver chain
//!   (`self.shard(name).write()` → `shard`); the zero-argument
//!   requirement is what separates `RwLock::read` from `io::Read::read`.
//! * a policy `lock-fn` callee (`begin_update` → `update_gate`,
//!   `cache.get` → `cache_inner`);
//! * a policy `lock-wrapper` call — the name comes from the last
//!   identifier of its first argument (`lock_clean(&self.state)` →
//!   `state`).
//!
//! Names then pass through the policy's path-scoped `lock-alias` table
//! so local variable names map onto canonical graph vertices. Receivers
//! that resolve to `self` stay anonymous and are ignored — their locks
//! are modelled at the caller via `lock-fn` instead.

use crate::lexer::{Tok, TokKind};
use crate::lockgraph::LockEdge;
use crate::policy::Policy;
use crate::rules::{violation_at, Severity, Violation};
use crate::view::FileView;

/// A function body found in the token stream.
pub(crate) struct FnScope {
    /// Function name (for `hotpath-alloc fn=` scoping).
    pub name: String,
    /// Token index of the body's `{`.
    pub open: usize,
    /// Token index of the matching `}`.
    pub close: usize,
}

/// Result of the scope walk over one file.
pub(crate) struct ScopeAnalysis {
    /// Nested-acquisition edges (deduped per `(from, to)`).
    pub edges: Vec<LockEdge>,
    /// `guard-across-blocking` and `hotpath-alloc` findings.
    pub findings: Vec<Violation>,
}

/// Calls that block the thread when made with a guard held. `join` is
/// only blocking as the zero-arg `handle.join()` — `slice.join(sep)` is
/// string concatenation. Condvar `wait*` release the guard and are
/// deliberately absent.
const BLOCKING_BUILTIN: [&str; 6] = [
    "recv",
    "recv_timeout",
    "recv_deadline",
    "join",
    "sleep",
    "accept",
];

/// Types whose associated constructors allocate (or, for `Vec::new` /
/// `String::new`, announce an about-to-grow buffer in a loop).
const ALLOC_TYPES: [&str; 9] = [
    "Vec",
    "String",
    "Box",
    "HashMap",
    "HashSet",
    "BTreeMap",
    "BTreeSet",
    "VecDeque",
    "BinaryHeap",
];
const ALLOC_CTORS: [&str; 3] = ["new", "with_capacity", "from"];
const ALLOC_METHODS: [&str; 5] = ["to_vec", "to_string", "to_owned", "collect", "clone"];

/// Runs the scope-aware rules over one file.
pub(crate) fn analyze(view: &FileView<'_>, policy: &Policy) -> ScopeAnalysis {
    let fns = functions(&view.code);
    let mut edges: Vec<LockEdge> = Vec::new();
    let mut findings = Vec::new();
    // Walk outermost function bodies only: a nested `fn` is covered by
    // its enclosing walk (guards cannot cross the boundary anyway — the
    // nested body simply starts with an empty guard stack of its own,
    // which the single walk approximates closely enough for lexical
    // analysis, erring on the side of reporting).
    let mut last_close = 0usize;
    for f in &fns {
        if f.open < last_close {
            continue;
        }
        last_close = f.close;
        walk_function(view, policy, f, &mut edges, &mut findings);
    }
    rule_hotpath_alloc(view, policy, &fns, &mut findings);
    ScopeAnalysis { edges, findings }
}

/// One `let`-bound (or `if let`-bound) guard currently in scope.
struct Guard {
    lock: String,
    line: u32,
    /// Token index where the guard's block scope closes.
    end_tok: usize,
    /// Binding name, for `drop(name)` early release.
    name: Option<String>,
}

/// A `let` binding whose initializer we are inside: an acquisition in
/// `[from, to]` becomes a guard scoped to `end_tok`.
struct PendingLet {
    name: Option<String>,
    from: usize,
    to: usize,
    end_tok: usize,
}

fn walk_function(
    view: &FileView<'_>,
    policy: &Policy,
    f: &FnScope,
    edges: &mut Vec<LockEdge>,
    findings: &mut Vec<Violation>,
) {
    let code = &view.code;
    let mut guards: Vec<Guard> = Vec::new();
    let mut brace_stack: Vec<usize> = vec![f.close];
    let mut pending: Option<PendingLet> = None;
    let mut blocked_once: Vec<(u32, String)> = Vec::new();
    let mut j = f.open + 1;
    while j < f.close {
        guards.retain(|g| j < g.end_tok);
        if pending.as_ref().is_some_and(|p| p.to < j) {
            pending = None;
        }
        let t = &code[j];
        if t.is_punct("{") {
            if let Some(close) = matching_brace(code, j) {
                brace_stack.push(close);
            }
        } else if t.is_punct("}") {
            if brace_stack.last() == Some(&j) {
                brace_stack.pop();
            }
        } else if t.is_ident("let") {
            pending = scan_let(code, j, &brace_stack);
        } else if t.is_ident("drop")
            && matches!(code.get(j + 1), Some(n) if n.is_punct("("))
            && matches!(code.get(j + 3), Some(n) if n.is_punct(")"))
        {
            if let Some(name) = code.get(j + 2).filter(|n| n.kind == TokKind::Ident) {
                guards.retain(|g| g.name.as_deref() != Some(name.text.as_str()));
            }
        }

        if let Some(lock) = acquisition_at(code, j, policy, view.path) {
            if !view.in_tests(t.line) {
                for g in &guards {
                    if g.lock != lock && !view.suppressed(t.line, "lock-order") {
                        let dup = edges.iter().any(|e| e.from == g.lock && e.to == lock);
                        if !dup {
                            edges.push(LockEdge {
                                from: g.lock.clone(),
                                to: lock.clone(),
                                path: view.path.to_string(),
                                line: t.line,
                            });
                        }
                    }
                }
                if let Some(p) = pending.take() {
                    if (p.from..=p.to).contains(&j) {
                        if p.name.is_some() {
                            guards.push(Guard {
                                lock: lock.clone(),
                                line: t.line,
                                end_tok: p.end_tok,
                                name: p.name,
                            });
                        }
                    } else {
                        pending = Some(p);
                    }
                }
            }
        } else if let Some(callee) = blocking_call_at(code, j, policy) {
            if !view.in_tests(t.line) {
                for g in &guards {
                    if policy.lock_allows_blocking(&g.lock) {
                        continue;
                    }
                    let key = (t.line, g.lock.clone());
                    if blocked_once.contains(&key)
                        || view.suppressed(t.line, "guard-across-blocking")
                    {
                        continue;
                    }
                    blocked_once.push(key);
                    findings.push(violation_at(
                        view.path,
                        "guard-across-blocking",
                        t.line,
                        Severity::Error,
                        format!(
                            "guard of `{}` (acquired on line {}) held across blocking call \
                             `{callee}` — drop the guard first or move the call out of the \
                             critical section",
                            g.lock, g.line
                        ),
                    ));
                }
            }
        }
        j += 1;
    }
}

/// Parses the binding shape of a `let` at `j` (including `if let` /
/// `while let`). Returns the region where an acquisition binds and the
/// token where the resulting guard's scope ends.
fn scan_let(code: &[Tok], j: usize, brace_stack: &[usize]) -> Option<PendingLet> {
    let conditional = j >= 1 && (code[j - 1].is_ident("if") || code[j - 1].is_ident("while"));
    if conditional {
        // `if let PAT = EXPR { BODY }`: guard binds in EXPR, lives to
        // the close of BODY. The pattern's last non-`mut`/`ref` ident is
        // the binding (`Ok(mut g)` → `g`).
        let mut eq = None;
        for (k, t) in code.iter().enumerate().skip(j + 1) {
            if t.is_punct("=") && !matches!(code.get(k + 1), Some(n) if n.is_punct("=")) {
                eq = Some(k);
                break;
            }
            if t.is_punct("{") || t.is_punct(";") {
                return None;
            }
        }
        let eq = eq?;
        let name = code[j + 1..eq]
            .iter()
            .rev()
            .find(|t| t.kind == TokKind::Ident && t.text != "mut" && t.text != "ref")
            .map(|t| t.text.clone())
            .filter(|n| n != "_");
        let (mut par, mut brk) = (0i32, 0i32);
        let mut open = None;
        for (k, t) in code.iter().enumerate().skip(eq + 1) {
            if t.is_punct("(") {
                par += 1;
            } else if t.is_punct(")") {
                par -= 1;
            } else if t.is_punct("[") {
                brk += 1;
            } else if t.is_punct("]") {
                brk -= 1;
            } else if t.is_punct("{") && par == 0 && brk == 0 {
                open = Some(k);
                break;
            }
        }
        let open = open?;
        let close = matching_brace(code, open)?;
        return Some(PendingLet {
            name,
            from: eq + 1,
            to: open,
            end_tok: close,
        });
    }
    // Plain `let [mut] NAME = EXPR ;` — guard binds anywhere up to the
    // statement's `;`, lives to the innermost enclosing block close.
    let mut k = j + 1;
    if matches!(code.get(k), Some(t) if t.is_ident("mut")) {
        k += 1;
    }
    let name = code
        .get(k)
        .filter(|t| t.kind == TokKind::Ident && t.text != "_")
        .map(|t| t.text.clone());
    // Tuple/struct patterns (`let (a, b) = ...`) stay unbound: `name`
    // is None and any acquisition is a point event.
    let name = match code.get(k + 1) {
        Some(n) if n.is_punct("(") || n.is_punct("{") => None,
        _ => name,
    };
    let (mut par, mut brk, mut brc) = (0i32, 0i32, 0i32);
    let mut end = None;
    for (m, t) in code.iter().enumerate().skip(j + 1) {
        if t.is_punct("(") {
            par += 1;
        } else if t.is_punct(")") {
            par -= 1;
        } else if t.is_punct("[") {
            brk += 1;
        } else if t.is_punct("{") {
            brc += 1;
        } else if t.is_punct("]") {
            brk -= 1;
        } else if t.is_punct("}") {
            brc -= 1;
            if brc < 0 {
                break;
            }
        } else if t.is_punct(";") && par == 0 && brk == 0 && brc == 0 {
            end = Some(m);
            break;
        }
    }
    let end = end?;
    Some(PendingLet {
        name,
        from: j,
        to: end,
        end_tok: *brace_stack.last()?,
    })
}

/// If the token at `j` acquires a lock, its canonical name.
fn acquisition_at(code: &[Tok], j: usize, policy: &Policy, path: &str) -> Option<String> {
    let t = code.get(j)?;
    if t.kind != TokKind::Ident {
        return None;
    }
    // Definitions (`fn lock_clean(...)`) are not calls.
    if j >= 1 && code[j - 1].is_ident("fn") {
        return None;
    }
    if !matches!(code.get(j + 1), Some(n) if n.is_punct("(")) {
        return None;
    }
    let after_dot = j >= 1 && code[j - 1].is_punct(".");
    let zero_arg = matches!(code.get(j + 2), Some(n) if n.is_punct(")"));

    // Native guard constructors: zero-arg distinguishes RwLock's
    // read()/write() from io::Read/Write and Mutex::lock from fs locks.
    if after_dot && zero_arg && matches!(t.text.as_str(), "lock" | "read" | "write") {
        let recv = receiver_name(code, j.checked_sub(2)?)?;
        if recv == "self" || matches!(recv.as_str(), "stdin" | "stdout" | "stderr") {
            return None;
        }
        return Some(policy.canonical_lock(path, &recv).to_string());
    }
    for lf in &policy.lock_fns {
        if lf.callee != t.text {
            continue;
        }
        match &lf.receiver {
            None => return Some(policy.canonical_lock(path, &lf.lock).to_string()),
            Some(r) => {
                if after_dot && j >= 2 && receiver_name(code, j - 2).as_deref() == Some(r) {
                    return Some(policy.canonical_lock(path, &lf.lock).to_string());
                }
            }
        }
    }
    if !after_dot && policy.lock_wrappers.contains(&t.text) {
        let close = matching_paren(code, j + 1)?;
        let name = code[j + 2..close]
            .iter()
            .rev()
            .find(|a| a.kind == TokKind::Ident && a.text != "self" && a.text != "mut")
            .map(|a| a.text.clone())?;
        return Some(policy.canonical_lock(path, &name).to_string());
    }
    None
}

/// If the token at `j` is a blocking call, its callee name.
fn blocking_call_at(code: &[Tok], j: usize, policy: &Policy) -> Option<String> {
    let t = code.get(j)?;
    if t.kind != TokKind::Ident
        || !matches!(code.get(j + 1), Some(n) if n.is_punct("("))
        || (j >= 1 && code[j - 1].is_ident("fn"))
    {
        return None;
    }
    let zero_arg = matches!(code.get(j + 2), Some(n) if n.is_punct(")"));
    let builtin = match t.text.as_str() {
        // `handle.join()` blocks; `slice.join(sep)` concatenates.
        "join" => zero_arg,
        other => BLOCKING_BUILTIN.contains(&other),
    };
    if builtin || policy.blocking_calls.contains(&t.text) {
        return Some(t.text.clone());
    }
    None
}

/// The last identifier of the receiver chain ending at token `k` (the
/// token just before the `.` of a method call).
fn receiver_name(code: &[Tok], k: usize) -> Option<String> {
    let t = code.get(k)?;
    if t.kind == TokKind::Ident {
        return Some(t.text.clone());
    }
    if t.is_punct("?") {
        return receiver_name(code, k.checked_sub(1)?);
    }
    if t.is_punct(")") {
        // `self.shard(name).write()` → the method name before the `(`.
        let open = matching_paren_back(code, k)?;
        let before = code.get(open.checked_sub(1)?)?;
        if before.kind == TokKind::Ident {
            return Some(before.text.clone());
        }
        return None;
    }
    if t.is_punct("]") {
        let mut depth = 0i32;
        for i in (0..=k).rev() {
            if code[i].is_punct("]") {
                depth += 1;
            } else if code[i].is_punct("[") {
                depth -= 1;
                if depth == 0 {
                    let before = code.get(i.checked_sub(1)?)?;
                    if before.kind == TokKind::Ident {
                        return Some(before.text.clone());
                    }
                    return None;
                }
            }
        }
    }
    None
}

// ---- hotpath-alloc --------------------------------------------------

fn rule_hotpath_alloc(
    view: &FileView<'_>,
    policy: &Policy,
    fns: &[FnScope],
    out: &mut Vec<Violation>,
) {
    const RULE: &str = "hotpath-alloc";
    let Some(entry) = policy.hot_alloc_for(view.path) else {
        return;
    };
    let in_scope = |j: usize| -> bool {
        if entry.fns.is_empty() {
            return true;
        }
        fns.iter()
            .any(|f| entry.fns.contains(&f.name) && f.open < j && j < f.close)
    };
    for j in 0..view.code.len() {
        let t = &view.code[j];
        if t.kind != TokKind::Ident || view.in_tests(t.line) || !in_scope(j) {
            continue;
        }
        let what = alloc_at(&view.code, j);
        if let Some(what) = what {
            if !view.suppressed(t.line, RULE) {
                out.push(violation_at(
                    view.path,
                    RULE,
                    t.line,
                    Severity::Error,
                    format!(
                        "{what} allocates in an allocation-free hot path — preallocate, \
                         reuse a scratch buffer, or move the work off the steady path"
                    ),
                ));
            }
        }
    }
}

/// Description of the allocating construct at `j`, if any.
fn alloc_at(code: &[Tok], j: usize) -> Option<String> {
    let t = &code[j];
    let after_dot = j >= 1 && code[j - 1].is_punct(".");
    let next_is = |s: &str| matches!(code.get(j + 1), Some(n) if n.is_punct(s));
    if ALLOC_TYPES.contains(&t.text.as_str())
        && next_is(":")
        && matches!(code.get(j + 2), Some(n) if n.is_punct(":"))
    {
        if let Some(m) = code.get(j + 3) {
            if ALLOC_CTORS.contains(&m.text.as_str())
                && matches!(code.get(j + 4), Some(n) if n.is_punct("("))
            {
                return Some(format!("`{}::{}`", t.text, m.text));
            }
        }
        return None;
    }
    if matches!(t.text.as_str(), "vec" | "format") && next_is("!") {
        return Some(format!("`{}!`", t.text));
    }
    if after_dot && ALLOC_METHODS.contains(&t.text.as_str()) && next_is("(") {
        if t.text == "clone" {
            return Some(
                "`.clone()` of an owned container (use `Arc::clone(&x)` form for \
                 refcount bumps — it passes this lint)"
                    .to_string(),
            );
        }
        return Some(format!("`.{}()`", t.text));
    }
    None
}

// ---- token helpers --------------------------------------------------

/// Finds every `fn` item with a body. Nested functions produce nested
/// scopes; callers that need disjoint regions skip contained ones.
pub(crate) fn functions(code: &[Tok]) -> Vec<FnScope> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < code.len() {
        if !(code[i].is_ident("fn") && code[i + 1].kind == TokKind::Ident) {
            i += 1;
            continue;
        }
        let name = code[i + 1].text.clone();
        // Find the body `{`, skipping the parameter list, generics and
        // return type. `>` only closes an angle bracket when it is not
        // the tail of a `->` arrow.
        let (mut par, mut brk, mut ang) = (0i32, 0i32, 0i32);
        let mut j = i + 2;
        let mut body = None;
        while j < code.len() {
            let t = &code[j];
            if t.is_punct("(") {
                par += 1;
            } else if t.is_punct(")") {
                par -= 1;
            } else if t.is_punct("[") {
                brk += 1;
            } else if t.is_punct("]") {
                brk -= 1;
            } else if t.is_punct("<") {
                ang += 1;
            } else if t.is_punct(">") && !(j >= 1 && code[j - 1].is_punct("-")) {
                ang = (ang - 1).max(0);
            } else if par == 0 && brk == 0 && ang == 0 {
                if t.is_punct("{") {
                    body = Some(j);
                    break;
                }
                if t.is_punct(";") {
                    break; // trait/extern declaration without a body
                }
            }
            j += 1;
        }
        if let Some(open) = body {
            if let Some(close) = matching_brace(code, open) {
                out.push(FnScope { name, open, close });
            }
        }
        i += 2;
    }
    out
}

/// Index of the `}` matching the `{` at `open`.
fn matching_brace(code: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in code.iter().enumerate().skip(open) {
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Index of the `)` matching the `(` at `open`.
fn matching_paren(code: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in code.iter().enumerate().skip(open) {
        if t.is_punct("(") {
            depth += 1;
        } else if t.is_punct(")") {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Index of the `(` matching the `)` at `close`, scanning backwards.
fn matching_paren_back(code: &[Tok], close: usize) -> Option<usize> {
    let mut depth = 0i32;
    for i in (0..=close).rev() {
        if code[i].is_punct(")") {
            depth += 1;
        } else if code[i].is_punct("(") {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn scan(src: &str, policy: &Policy) -> ScopeAnalysis {
        let view = FileView::new("crates/x/src/lib.rs", src);
        analyze(&view, policy)
    }

    #[test]
    fn nested_acquisition_records_an_edge() {
        let src = "fn f(a: &M, b: &M) {\n    let g = a.lock();\n    let h = b.lock();\n}";
        let out = scan(src, &Policy::default());
        assert_eq!(out.edges.len(), 1, "{:?}", out.edges);
        assert_eq!(out.edges[0].from, "a");
        assert_eq!(out.edges[0].to, "b");
        assert_eq!(out.edges[0].line, 3);
    }

    #[test]
    fn guard_scope_ends_at_block_close_and_drop() {
        // Inner-block guard released before the second acquisition.
        let scoped =
            "fn f(a: &M, b: &M) {\n    { let g = a.lock(); use_it(&g); }\n    let h = b.lock();\n}";
        assert!(scan(scoped, &Policy::default()).edges.is_empty());
        let dropped =
            "fn f(a: &M, b: &M) {\n    let g = a.lock();\n    drop(g);\n    let h = b.lock();\n}";
        assert!(scan(dropped, &Policy::default()).edges.is_empty());
    }

    #[test]
    fn transient_acquisitions_do_not_hold() {
        // No binding: the guard is a temporary, dead at the `;`.
        let src = "fn f(a: &M, b: &M) {\n    a.lock().push(1);\n    b.lock().push(2);\n}";
        assert!(scan(src, &Policy::default()).edges.is_empty());
        // `let _ =` drops immediately too.
        let src2 = "fn f(a: &M, b: &M) {\n    let _ = a.lock();\n    let h = b.lock();\n}";
        assert!(scan(src2, &Policy::default()).edges.is_empty());
    }

    #[test]
    fn if_let_guard_lives_to_its_block() {
        let src = "fn f(a: &M, b: &M) {\n    if let Ok(mut g) = a.lock() {\n        let h = b.lock();\n    }\n    let k = b.lock();\n}";
        let out = scan(src, &Policy::default());
        assert_eq!(out.edges.len(), 1, "{:?}", out.edges);
        assert_eq!((&*out.edges[0].from, &*out.edges[0].to), ("a", "b"));
    }

    #[test]
    fn receiver_chains_and_rwlock_arity() {
        let p = Policy::default();
        // Last path segment names the lock; method-call receivers use
        // the method name; `write(buf)` with args is io, not RwLock.
        let src = "fn f(s: &S) {\n    let g = s.shard(k).write();\n    let h = s.inner.state.read();\n    s.out.write(buf);\n}";
        let out = scan(src, &p);
        assert_eq!(out.edges.len(), 1, "{:?}", out.edges);
        assert_eq!((&*out.edges[0].from, &*out.edges[0].to), ("shard", "state"));
    }

    #[test]
    fn wrapper_and_lock_fn_and_alias_resolve_names() {
        let p = Policy::parse(
            "lock-wrapper lock_clean\n\
             lock-fn cache.get cache_inner\n\
             lock-alias crates/x cell entry\n",
        )
        .unwrap();
        let src = "fn f(s: &S) {\n    let g = lock_clean(&s.table);\n    let v = cache.get(&k);\n    let e = cell.lock();\n}";
        let out = scan(src, &p);
        let pairs: Vec<(&str, &str)> = out
            .edges
            .iter()
            .map(|e| (e.from.as_str(), e.to.as_str()))
            .collect();
        assert!(pairs.contains(&("table", "cache_inner")), "{pairs:?}");
        assert!(pairs.contains(&("table", "entry")), "{pairs:?}");
    }

    #[test]
    fn guard_across_blocking_flags_recv_but_not_condvar_wait() {
        let src = "fn f(a: &M, rx: &R) {\n    let g = a.lock();\n    let msg = rx.recv();\n}";
        let out = scan(src, &Policy::default());
        assert_eq!(out.findings.len(), 1, "{:?}", out.findings);
        assert_eq!(out.findings[0].rule, "guard-across-blocking");
        assert!(out.findings[0].message.contains("`recv`"));

        let cond = "fn f(a: &M, cv: &C) {\n    let mut g = a.lock();\n    g = cv.wait(g);\n}";
        assert!(scan(cond, &Policy::default()).findings.is_empty());
    }

    #[test]
    fn join_blocks_only_zero_arg_and_policy_calls_count() {
        let strjoin =
            "fn f(a: &M, parts: &[String]) {\n    let g = a.lock();\n    let s = parts.join(c);\n}";
        assert!(scan(strjoin, &Policy::default()).findings.is_empty());
        let hjoin = "fn f(a: &M, h: H) {\n    let g = a.lock();\n    h.join();\n}";
        assert_eq!(scan(hjoin, &Policy::default()).findings.len(), 1);
        let p = Policy::parse("blocking-call apply_batch -- long compute\n").unwrap();
        let batch = "fn f(a: &M) {\n    let g = a.lock();\n    apply_batch(&g);\n}";
        assert_eq!(scan(batch, &p).findings.len(), 1);
    }

    #[test]
    fn lock_allows_blocking_exempts_a_designed_gate() {
        let p = Policy::parse(
            "lock-fn begin_update update_gate\n\
             blocking-call apply_batch -- long compute\n\
             lock-allows-blocking update_gate -- by design\n",
        )
        .unwrap();
        let src = "fn f(cell: &C) {\n    let _gate = cell.begin_update();\n    apply_batch(x);\n}";
        assert!(scan(src, &p).findings.is_empty());
    }

    #[test]
    fn hotpath_alloc_flags_constructs_only_in_scoped_fns() {
        let p = Policy::parse("hotpath-alloc crates/x/src/lib.rs fn=steady\n").unwrap();
        let src = "fn setup() -> Vec<u32> {\n    Vec::with_capacity(8)\n}\n\
                   fn steady(xs: &[u32]) -> u32 {\n    let v: Vec<u32> = xs.iter().map(|x| x + 1).collect();\n    v[0]\n}";
        let out = scan(src, &p);
        assert_eq!(out.findings.len(), 1, "{:?}", out.findings);
        assert_eq!(out.findings[0].rule, "hotpath-alloc");
        assert_eq!(out.findings[0].line, 5);
    }

    #[test]
    fn hotpath_alloc_whole_file_exempts_tests_and_suppressions() {
        let p = Policy::parse("hotpath-alloc crates/x/src/lib.rs\n").unwrap();
        let src = "fn hot() {\n    // audit:allow(hotpath-alloc): one-time growth.\n    let v = Vec::new();\n}\n\
                   #[cfg(test)]\nmod tests {\n    fn t() { let v = vec![1, 2]; }\n}";
        assert!(scan(src, &p).findings.is_empty());
    }

    #[test]
    fn function_extraction_handles_generics_and_arrows() {
        let code = lex("fn a<T: Into<Vec<u8>>>(x: T) -> Vec<u8> { x.into() }\nfn b() {}");
        let fns = functions(&code);
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].name, "a");
        assert_eq!(fns[1].name, "b");
    }
}
