//! A minimal JSON value, writer, and parser — the offline workspace
//! has no `serde`, and the audit needs structured output twice over:
//! SARIF 2.1.0 for code scanning and the incremental cache under
//! `target/audit-cache.json`. Numbers are `f64` (exact for everything
//! the audit stores: line numbers, hashes split into two u32 halves
//! would be overkill — u64 hashes are stored as 16-digit hex strings
//! instead, see [`crate::cache`]).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered object (audit output is deterministic).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document. Returns `Err` with a byte offset and a
    /// description on malformed input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

/// Convenience constructors keeping call sites terse.
pub fn obj(members: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

pub fn s(text: &str) -> Json {
    Json::Str(text.to_string())
}

pub fn n(value: u64) -> Json {
    Json::Num(value as f64)
}

fn write_escaped(out: &mut String, text: &str) {
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    let b = *bytes.get(*pos).ok_or("unexpected end of input")?;
    match b {
        b'{' => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        b'"' => Ok(Json::Str(parse_string(bytes, pos)?)),
        b't' => expect_lit(bytes, pos, "true", Json::Bool(true)),
        b'f' => expect_lit(bytes, pos, "false", Json::Bool(false)),
        b'n' => expect_lit(bytes, pos, "null", Json::Null),
        _ => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            std::str::from_utf8(&bytes[start..*pos])
                .ok()
                .and_then(|t| t.parse::<f64>().ok())
                .map(Json::Num)
                .ok_or_else(|| format!("bad number at byte {start}"))
        }
    }
}

fn expect_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    while *pos < bytes.len() {
        match bytes[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let esc = *bytes.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("bad \\u escape")?;
                        let cp = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        *pos += 4;
                        // Surrogate pairs are not produced by our own
                        // writer; map lone surrogates to U+FFFD.
                        out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                    }
                    other => return Err(format!("unknown escape '\\{}'", other as char)),
                }
            }
            _ => {
                // Copy one UTF-8 char verbatim.
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && (bytes[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?);
            }
        }
    }
    Err("unterminated string".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_structures() {
        let v = obj(vec![
            ("name", s("gve-audit")),
            ("lines", Json::Arr(vec![n(1), n(400)])),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("msg", s("quote \" slash \\ newline \n tab \t")),
        ]);
        let text = v.to_json();
        let back = Json::parse(&text).expect("parses");
        assert_eq!(back, v);
        assert_eq!(back.get("name").and_then(Json::as_str), Some("gve-audit"));
        assert_eq!(
            back.get("lines").and_then(Json::as_arr).map(|a| a.len()),
            Some(2)
        );
    }

    #[test]
    fn parses_whitespace_and_rejects_trailing_garbage() {
        assert!(Json::parse("  { \"a\" : [ 1 , 2 ] }  ").is_ok());
        assert!(Json::parse("{} extra").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn integers_serialize_without_fraction() {
        assert_eq!(n(42).to_json(), "42");
        assert_eq!(Json::Num(1.5).to_json(), "1.5");
    }
}
