//! Incremental-scan cache (`target/audit-cache.json`).
//!
//! Per-file results are pure functions of `(file content, policy,
//! engine)` — the cache keys each entry on an FNV-1a 64 hash of the
//! file's bytes, and the whole cache on a fingerprint of the policy
//! text plus [`ENGINE_VERSION`]. A policy edit or an engine upgrade
//! invalidates everything; editing one source file re-scans only that
//! file.
//!
//! Only *per-file* facts are cached: findings, lock edges, suppression
//! markers (and which were used), and whether the file consumed its
//! `relaxed-ok` entry. The cross-file analyses — the lock-order graph
//! and stale-suppression accounting — are cheap and recomputed globally
//! on every run from the union of cached and fresh per-file facts.

use crate::lockgraph::LockEdge;
use crate::mini_json::{n, obj, s, Json};
use crate::rules::{canonical_rule_id, violation_at, FileAudit, Severity};
use std::collections::BTreeMap;
use std::path::Path;

/// Bump on any change to rule logic or cached shape; stale caches are
/// discarded wholesale rather than migrated.
pub const ENGINE_VERSION: u64 = 2;

/// FNV-1a 64-bit hash.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One cached file: content hash plus the per-file audit facts.
struct Entry {
    hash: u64,
    audit: FileAudit,
}

/// The on-disk cache, already validated against the current policy
/// fingerprint and engine version at load time.
pub struct AuditCache {
    policy_fp: u64,
    files: BTreeMap<String, Entry>,
}

impl AuditCache {
    /// An empty cache for the given policy fingerprint.
    pub fn empty(policy_fp: u64) -> Self {
        Self {
            policy_fp,
            files: BTreeMap::new(),
        }
    }

    /// Loads the cache file, returning an empty cache when the file is
    /// missing, unparsable, or was written by a different engine or
    /// policy.
    pub fn load(path: &Path, policy_fp: u64) -> Self {
        let Ok(text) = std::fs::read_to_string(path) else {
            return Self::empty(policy_fp);
        };
        let Ok(doc) = Json::parse(&text) else {
            return Self::empty(policy_fp);
        };
        if doc.get("engine").and_then(Json::as_u64) != Some(ENGINE_VERSION)
            || doc.get("policy").and_then(Json::as_str)
                != Some(format!("{policy_fp:016x}").as_str())
        {
            return Self::empty(policy_fp);
        }
        let mut files = BTreeMap::new();
        if let Some(Json::Obj(members)) = doc.get("files") {
            for (fpath, entry) in members {
                if let Some(e) = parse_entry(fpath, entry) {
                    files.insert(fpath.clone(), e);
                }
            }
        }
        Self { policy_fp, files }
    }

    /// The cached audit for `path`, if its content hash still matches.
    pub fn lookup(&self, path: &str, hash: u64) -> Option<&FileAudit> {
        self.files
            .get(path)
            .filter(|e| e.hash == hash)
            .map(|e| &e.audit)
    }

    /// Records a freshly computed audit.
    pub fn store(&mut self, path: &str, hash: u64, audit: FileAudit) {
        self.files.insert(path.to_string(), Entry { hash, audit });
    }

    /// Drops entries for files that no longer exist in the walk.
    pub fn retain_paths(&mut self, live: &[String]) {
        self.files.retain(|p, _| live.iter().any(|l| l == p));
    }

    /// Serializes and writes the cache, creating parent directories.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let files: Vec<(String, Json)> = self
            .files
            .iter()
            .map(|(p, e)| (p.clone(), entry_json(e)))
            .collect();
        let doc = Json::Obj(vec![
            ("engine".to_string(), n(ENGINE_VERSION)),
            (
                "policy".to_string(),
                Json::Str(format!("{:016x}", self.policy_fp)),
            ),
            ("files".to_string(), Json::Obj(files)),
        ]);
        std::fs::write(path, doc.to_json())
    }
}

fn sev_str(sev: Severity) -> &'static str {
    match sev {
        Severity::Warning => "warning",
        Severity::Error => "error",
    }
}

fn entry_json(e: &Entry) -> Json {
    let findings: Vec<Json> = e
        .audit
        .findings
        .iter()
        .map(|v| {
            obj(vec![
                ("rule", s(v.rule)),
                ("line", n(v.line as u64)),
                ("sev", s(sev_str(v.severity))),
                ("msg", s(&v.message)),
            ])
        })
        .collect();
    let edges: Vec<Json> = e
        .audit
        .edges
        .iter()
        .map(|ed| {
            obj(vec![
                ("from", s(&ed.from)),
                ("to", s(&ed.to)),
                ("line", n(ed.line as u64)),
            ])
        })
        .collect();
    let marker_arr = |ms: &[(u32, String)]| {
        Json::Arr(
            ms.iter()
                .map(|(line, rule)| Json::Arr(vec![n(*line as u64), s(rule)]))
                .collect(),
        )
    };
    obj(vec![
        ("hash", Json::Str(format!("{:016x}", e.hash))),
        ("findings", Json::Arr(findings)),
        ("edges", Json::Arr(edges)),
        ("markers", marker_arr(&e.audit.markers)),
        ("used", marker_arr(&e.audit.used_markers)),
        (
            "relaxed",
            match &e.audit.relaxed_entry_used {
                Some(p) => s(p),
                None => Json::Null,
            },
        ),
    ])
}

fn parse_entry(path: &str, entry: &Json) -> Option<Entry> {
    let hash = u64::from_str_radix(entry.get("hash")?.as_str()?, 16).ok()?;
    let mut findings = Vec::new();
    for f in entry.get("findings")?.as_arr()? {
        // Unknown rule ids mean the entry predates a rule rename —
        // treat the whole file entry as invalid.
        let rule = canonical_rule_id(f.get("rule")?.as_str()?)?;
        let sev = match f.get("sev")?.as_str()? {
            "error" => Severity::Error,
            "warning" => Severity::Warning,
            _ => return None,
        };
        findings.push(violation_at(
            path,
            rule,
            f.get("line")?.as_u64()? as u32,
            sev,
            f.get("msg")?.as_str()?.to_string(),
        ));
    }
    let mut edges = Vec::new();
    for ed in entry.get("edges")?.as_arr()? {
        edges.push(LockEdge {
            from: ed.get("from")?.as_str()?.to_string(),
            to: ed.get("to")?.as_str()?.to_string(),
            path: path.to_string(),
            line: ed.get("line")?.as_u64()? as u32,
        });
    }
    let markers = parse_markers(entry.get("markers")?)?;
    let used_markers = parse_markers(entry.get("used")?)?;
    let relaxed_entry_used = match entry.get("relaxed")? {
        Json::Null => None,
        other => Some(other.as_str()?.to_string()),
    };
    Some(Entry {
        hash,
        audit: FileAudit {
            findings,
            edges,
            markers,
            used_markers,
            relaxed_entry_used,
        },
    })
}

fn parse_markers(v: &Json) -> Option<Vec<(u32, String)>> {
    let mut out = Vec::new();
    for m in v.as_arr()? {
        let pair = m.as_arr()?;
        out.push((
            pair.first()?.as_u64()? as u32,
            pair.get(1)?.as_str()?.to_string(),
        ));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_audit() -> FileAudit {
        FileAudit {
            findings: vec![violation_at(
                "crates/x/src/lib.rs",
                "lock-order",
                9,
                Severity::Error,
                "undeclared nesting".to_string(),
            )],
            edges: vec![LockEdge {
                from: "a".to_string(),
                to: "b".to_string(),
                path: "crates/x/src/lib.rs".to_string(),
                line: 9,
            }],
            markers: vec![(3, "hotpath-panic".to_string())],
            used_markers: vec![],
            relaxed_entry_used: Some("crates/x/src/lib.rs".to_string()),
        }
    }

    #[test]
    fn round_trips_entries_through_disk() {
        let dir = std::env::temp_dir().join("gve-audit-cache-test-rt");
        let file = dir.join("audit-cache.json");
        let _ = std::fs::remove_file(&file);
        let mut cache = AuditCache::empty(0xfeed);
        cache.store("crates/x/src/lib.rs", 42, sample_audit());
        cache.save(&file).expect("writes");
        let loaded = AuditCache::load(&file, 0xfeed);
        let audit = loaded.lookup("crates/x/src/lib.rs", 42).expect("cache hit");
        assert_eq!(audit.findings.len(), 1);
        assert_eq!(audit.findings[0].rule, "lock-order");
        assert_eq!(audit.findings[0].severity, Severity::Error);
        assert_eq!(audit.edges[0].from, "a");
        assert_eq!(audit.markers, vec![(3, "hotpath-panic".to_string())]);
        assert_eq!(
            audit.relaxed_entry_used.as_deref(),
            Some("crates/x/src/lib.rs")
        );
        let _ = std::fs::remove_file(&file);
    }

    #[test]
    fn content_policy_and_engine_changes_all_miss() {
        let dir = std::env::temp_dir().join("gve-audit-cache-test-miss");
        let file = dir.join("audit-cache.json");
        let _ = std::fs::remove_file(&file);
        let mut cache = AuditCache::empty(1);
        cache.store("crates/x/src/lib.rs", 42, sample_audit());
        cache.save(&file).expect("writes");
        // Changed content hash misses.
        assert!(AuditCache::load(&file, 1)
            .lookup("crates/x/src/lib.rs", 43)
            .is_none());
        // Changed policy fingerprint drops the whole cache.
        assert!(AuditCache::load(&file, 2)
            .lookup("crates/x/src/lib.rs", 42)
            .is_none());
        // A different engine version drops the whole cache.
        let text = std::fs::read_to_string(&file).expect("reads");
        std::fs::write(&file, text.replace("\"engine\":2", "\"engine\":1")).expect("rewrites");
        assert!(AuditCache::load(&file, 1)
            .lookup("crates/x/src/lib.rs", 42)
            .is_none());
        let _ = std::fs::remove_file(&file);
    }

    #[test]
    fn missing_or_garbage_cache_loads_empty() {
        let bogus = std::env::temp_dir().join("gve-audit-no-such-cache.json");
        let _ = std::fs::remove_file(&bogus);
        assert!(AuditCache::load(&bogus, 7).files.is_empty());
        std::fs::write(&bogus, "not json").expect("writes");
        assert!(AuditCache::load(&bogus, 7).files.is_empty());
        let _ = std::fs::remove_file(&bogus);
    }

    #[test]
    fn fnv_is_stable_and_input_sensitive() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_eq!(fnv1a(b"audit"), fnv1a(b"audit"));
    }
}
