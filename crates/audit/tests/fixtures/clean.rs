//! Clean fixture: the same shapes as `violations.rs` with every
//! justification the rules demand. Must audit clean even under
//! hot-path names.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

pub fn documented_unsafe(p: *mut u8) {
    // SAFETY: `p` is valid and exclusively owned per this fixture's
    // imaginary caller contract.
    unsafe {
        *p = 1;
    }
}

/// Writes through `p`.
///
/// # Safety
/// `p` must be valid for writes.
pub unsafe fn documented_unsafe_fn(p: *mut u8) {
    *p = 2;
}

pub fn justified_relaxed(c: &AtomicU64) {
    // Relaxed: pure statistics counter; nothing synchronizes on it.
    c.fetch_add(1, Ordering::Relaxed);
}

pub fn proper_publish(shutdown: &AtomicBool) {
    shutdown.store(true, Ordering::Release);
}

pub fn hot_path_fallible(v: &[u32]) -> Option<u32> {
    let first = v.first()?;
    debug_assert!(*first != u32::MAX);
    Some(*first)
}

pub fn io_outside_rayon(v: &[u32]) {
    let _ = std::fs::read("fine-here");
    v.par_iter().for_each(|x| {
        let _ = x;
    });
}

// Follows the declared `lock-order gate before inner` hierarchy.
pub fn ordered_locks(gate: &std::sync::Mutex<u32>, inner: &std::sync::Mutex<u32>) {
    if let Ok(g) = gate.lock() {
        if let Ok(i) = inner.lock() {
            let _ = (*g, *i);
        }
    }
}

pub fn blocking_after_release(
    gate: &std::sync::Mutex<u32>,
    rx: &std::sync::mpsc::Receiver<u32>,
) {
    if let Ok(g) = gate.lock() {
        let _ = *g;
    }
    let _ = rx.recv();
}

// Same fn name the policy pins allocation-free: writes into a
// caller-provided buffer instead of allocating.
pub fn hot_alloc_site(out: &mut Vec<u32>, n: usize) {
    out.clear();
    for i in 0..n {
        out.push(i as u32);
    }
}
