//! Clean fixture: the same shapes as `violations.rs` with every
//! justification the rules demand. Must audit clean even under
//! hot-path names.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

pub fn documented_unsafe(p: *mut u8) {
    // SAFETY: `p` is valid and exclusively owned per this fixture's
    // imaginary caller contract.
    unsafe {
        *p = 1;
    }
}

/// Writes through `p`.
///
/// # Safety
/// `p` must be valid for writes.
pub unsafe fn documented_unsafe_fn(p: *mut u8) {
    *p = 2;
}

pub fn justified_relaxed(c: &AtomicU64) {
    // Relaxed: pure statistics counter; nothing synchronizes on it.
    c.fetch_add(1, Ordering::Relaxed);
}

pub fn proper_publish(shutdown: &AtomicBool) {
    shutdown.store(true, Ordering::Release);
}

pub fn hot_path_fallible(v: &[u32]) -> Option<u32> {
    let first = v.first()?;
    debug_assert!(*first != u32::MAX);
    Some(*first)
}

pub fn io_outside_rayon(v: &[u32]) {
    let _ = std::fs::read("fine-here");
    v.par_iter().for_each(|x| {
        let _ = x;
    });
}
