//! Seeded violation fixture: every rule must fire on this file.
//! Never compiled, never scanned as part of the workspace (the policy
//! skips `crates/audit/tests/fixtures/`); the engine tests feed it
//! through `audit_source` under hot-path names, and the CLI test mounts
//! it in a throwaway workspace.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

pub fn undocumented_unsafe(p: *mut u8) {
    unsafe {
        *p = 1;
    }
}

pub unsafe fn undocumented_unsafe_fn(p: *mut u8) {
    *p = 2;
}

pub fn unjustified_relaxed(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}

pub fn demoted_publish(shutdown: &AtomicBool) {
    shutdown.store(true, Ordering::Relaxed);
}

pub fn hot_path_panics(v: &[u32]) -> u32 {
    let first = v.first().unwrap();
    assert!(*first > 0);
    if *first == 7 {
        panic!("sevens are right out");
    }
    *first
}

pub fn spawn_inside_rayon(v: &[u32]) {
    v.par_iter().for_each(|_| {
        std::thread::spawn(|| {});
        let _ = std::fs::read("nope");
    });
}

// The fixture policy declares `lock-order gate before inner`; this is
// the inversion (and, with `ordered_nesting` below, one half of a
// gate → inner → gate cycle).
pub fn inverted_order(gate: &std::sync::Mutex<u32>, inner: &std::sync::Mutex<u32>) {
    if let Ok(i) = inner.lock() {
        if let Ok(g) = gate.lock() {
            let _ = (*i, *g);
        }
    }
}

pub fn ordered_nesting(gate: &std::sync::Mutex<u32>, inner: &std::sync::Mutex<u32>) {
    if let Ok(g) = gate.lock() {
        if let Ok(i) = inner.lock() {
            let _ = (*g, *i);
        }
    }
}

pub fn guard_held_across_recv(
    gate: &std::sync::Mutex<u32>,
    rx: &std::sync::mpsc::Receiver<u32>,
) {
    if let Ok(g) = gate.lock() {
        let _ = rx.recv();
        let _ = *g;
    }
}

// `hot_alloc_site` is fn-pinned allocation-free in the fixture policy.
pub fn hot_alloc_site(n: usize) -> u32 {
    let mut out = Vec::new();
    for i in 0..n {
        out.push(i as u32);
    }
    out.len() as u32
}
