//! Integration tests for the v2 engine surface: the incremental cache,
//! stale-suppression accounting (and `--strict-suppressions`), SARIF
//! output, and the stdout/stderr contract of the CLI.

use gve_audit::mini_json::Json;
use gve_audit::{audit_workspace_with, AuditOptions, Policy, Severity};
use std::path::{Path, PathBuf};
use std::process::Command;

fn scratch_workspace(tag: &str, files: &[(&str, &str)]) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("mk scratch");
    std::fs::write(dir.join("Cargo.toml"), "[workspace]\n").expect("toml");
    for (rel, content) in files {
        let path = dir.join(rel);
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdirs");
        std::fs::write(path, content).expect("write file");
    }
    dir
}

const CLEAN_A: &str = "pub fn add(a: u32, b: u32) -> u32 {\n    a.wrapping_add(b)\n}\n";
const CLEAN_B: &str = "pub fn mul(a: u32, b: u32) -> u32 {\n    a.wrapping_mul(b)\n}\n";

#[test]
fn incremental_cache_rescans_only_changed_files() {
    let root = scratch_workspace(
        "gve-audit-incr",
        &[
            ("crates/x/src/a.rs", CLEAN_A),
            ("crates/x/src/b.rs", CLEAN_B),
        ],
    );
    let policy = Policy::parse("").expect("empty policy");
    let opts = AuditOptions {
        cache_path: Some(root.join("target/audit-cache.json")),
        policy_fingerprint: 0xabc,
        strict_suppressions: false,
    };

    let cold = audit_workspace_with(&root, &policy, &opts).expect("cold run");
    assert_eq!(cold.files_scanned, 2);
    assert_eq!(cold.cache_hits, 0, "cold cache");
    assert!(cold.findings.is_empty(), "{:#?}", cold.findings);

    let warm = audit_workspace_with(&root, &policy, &opts).expect("warm run");
    assert_eq!(warm.cache_hits, 2, "everything cached");

    // Touch one file: exactly that file re-scans.
    std::fs::write(
        root.join("crates/x/src/a.rs"),
        "pub fn add(a: u32, b: u32) -> u32 {\n    b.wrapping_add(a)\n}\n",
    )
    .expect("touch a.rs");
    let touched = audit_workspace_with(&root, &policy, &opts).expect("touched run");
    assert_eq!(touched.files_scanned, 2);
    assert_eq!(touched.cache_hits, 1, "only b.rs served from cache");

    // A policy edit invalidates the whole cache.
    let other = AuditOptions {
        policy_fingerprint: 0xdef,
        ..opts
    };
    let repoliced = audit_workspace_with(&root, &policy, &other).expect("repoliced run");
    assert_eq!(repoliced.cache_hits, 0);

    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn cached_findings_match_fresh_ones() {
    // A file with a real finding: cached and fresh results must agree.
    let root = scratch_workspace(
        "gve-audit-incr-findings",
        &[(
            "crates/x/src/hot.rs",
            "pub fn f(v: &[u32]) -> u32 {\n    *v.first().unwrap()\n}\n",
        )],
    );
    let policy = Policy::parse("hotpath crates/x/src/hot.rs\n").expect("policy");
    let opts = AuditOptions {
        cache_path: Some(root.join("target/audit-cache.json")),
        policy_fingerprint: 1,
        strict_suppressions: false,
    };
    let fresh = audit_workspace_with(&root, &policy, &opts).expect("fresh");
    let cached = audit_workspace_with(&root, &policy, &opts).expect("cached");
    assert_eq!(cached.cache_hits, 1);
    assert_eq!(fresh.findings, cached.findings);
    assert!(fresh
        .findings
        .iter()
        .any(|v| v.rule == "hotpath-panic" && v.line == 2));
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn unused_suppression_is_stale_and_used_one_is_not() {
    let root = scratch_workspace(
        "gve-audit-stale",
        &[(
            "crates/x/src/hot.rs",
            "// audit:allow(hotpath-panic): covered below\n\
             pub fn f(v: &[u32]) -> u32 {\n\
                 *v.first().unwrap()\n\
             }\n\
             // audit:allow(rayon-blocking): silences nothing\n\
             pub fn g() {}\n",
        )],
    );
    let policy = Policy::parse("hotpath crates/x/src/hot.rs\n").expect("policy");
    let report = audit_workspace_with(&root, &policy, &AuditOptions::default()).expect("workspace");
    // The hotpath-panic marker sits on the line above the fn, not the
    // unwrap, so it silences nothing either — move it where it counts.
    let stale: Vec<_> = report
        .findings
        .iter()
        .filter(|v| v.rule == "stale-suppression")
        .collect();
    assert!(
        stale
            .iter()
            .any(|v| v.line == 5 && v.message.contains("rayon-blocking")),
        "{report:#?}"
    );
    assert!(stale.iter().all(|v| v.severity == Severity::Warning));

    // Now a marker directly above the offending line: used, not stale.
    std::fs::write(
        root.join("crates/x/src/hot.rs"),
        "pub fn f(v: &[u32]) -> u32 {\n\
             // audit:allow(hotpath-panic): fixture exercises the ledger\n\
             *v.first().unwrap()\n\
         }\n",
    )
    .expect("rewrite");
    let report = audit_workspace_with(&root, &policy, &AuditOptions::default()).expect("workspace");
    assert!(report.findings.is_empty(), "{:#?}", report.findings);
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn unused_policy_entries_are_reported_against_the_policy_file() {
    let root = scratch_workspace("gve-audit-policy-stale", &[("crates/x/src/a.rs", CLEAN_A)]);
    let policy = Policy::parse(
        "relaxed-ok crates/x/src/a.rs -- nothing relaxed there\nskip crates/nonexistent/\n",
    )
    .expect("policy");
    let report = audit_workspace_with(&root, &policy, &AuditOptions::default()).expect("workspace");
    let stale: Vec<_> = report
        .findings
        .iter()
        .filter(|v| v.rule == "stale-suppression" && v.path == "audit.policy")
        .collect();
    assert_eq!(stale.len(), 2, "{report:#?}");
    assert!(stale
        .iter()
        .any(|v| v.line == 1 && v.message.contains("relaxed-ok")));
    assert!(stale
        .iter()
        .any(|v| v.line == 2 && v.message.contains("skip")));
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn strict_suppressions_flag_gates_the_exit_code() {
    let root = scratch_workspace(
        "gve-audit-strict",
        &[(
            "crates/x/src/a.rs",
            "// audit:allow(unsafe-safety): silences nothing\npub fn f() {}\n",
        )],
    );
    let lax = Command::new(env!("CARGO_BIN_EXE_gve-audit"))
        .args(["--root"])
        .arg(&root)
        .output()
        .expect("run");
    assert_eq!(
        lax.status.code(),
        Some(0),
        "warnings alone must not gate: {}",
        String::from_utf8_lossy(&lax.stdout)
    );
    assert!(String::from_utf8_lossy(&lax.stdout).contains("stale-suppression"));

    let strict = Command::new(env!("CARGO_BIN_EXE_gve-audit"))
        .args(["--strict-suppressions", "--root"])
        .arg(&root)
        .output()
        .expect("run");
    assert_eq!(strict.status.code(), Some(1));
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn sarif_output_has_the_2_1_0_shape_end_to_end() {
    let root = scratch_workspace(
        "gve-audit-sarif",
        &[(
            "crates/x/src/lib.rs",
            "pub fn f(p: *mut u8) {\n    unsafe { *p = 1 };\n}\n",
        )],
    );
    let sarif_path = root.join("audit.sarif");
    let out = Command::new(env!("CARGO_BIN_EXE_gve-audit"))
        .args(["--sarif"])
        .arg(&sarif_path)
        .args(["--root"])
        .arg(&root)
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(1), "unsafe without SAFETY gates");
    let doc = Json::parse(&std::fs::read_to_string(&sarif_path).expect("sarif written"))
        .expect("sarif parses");
    assert_eq!(doc.get("version").and_then(Json::as_str), Some("2.1.0"));
    let runs = doc.get("runs").and_then(Json::as_arr).expect("runs");
    let results = runs[0]
        .get("results")
        .and_then(Json::as_arr)
        .expect("results");
    // The default policy's skip/relaxed-ok entries match nothing in the
    // scratch tree, so stale-suppression warnings ride along — find the
    // seeded error among them.
    let unsafe_hit = results
        .iter()
        .find(|r| r.get("ruleId").and_then(Json::as_str) == Some("unsafe-safety"))
        .expect("unsafe-safety result present");
    assert_eq!(
        unsafe_hit.get("level").and_then(Json::as_str),
        Some("error")
    );
    assert_eq!(
        unsafe_hit
            .get("locations")
            .and_then(Json::as_arr)
            .and_then(|l| l.first())
            .and_then(|l| l.get("physicalLocation"))
            .and_then(|p| p.get("artifactLocation"))
            .and_then(|a| a.get("uri"))
            .and_then(Json::as_str),
        Some("crates/x/src/lib.rs")
    );
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn json_stdout_is_pure_json_with_diagnostics_on_stderr() {
    let root = scratch_workspace(
        "gve-audit-stdout",
        &[(
            "crates/x/src/lib.rs",
            "pub fn f(p: *mut u8) {\n    unsafe { *p = 1 };\n}\n",
        )],
    );
    let out = Command::new(env!("CARGO_BIN_EXE_gve-audit"))
        .args(["--json", "--incremental", "--root"])
        .arg(&root)
        .output()
        .expect("run");
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The whole of stdout must parse as one JSON document — `| jq`
    // never sees progress chatter.
    let doc = Json::parse(&stdout).unwrap_or_else(|e| panic!("stdout not JSON ({e}):\n{stdout}"));
    let arr = doc.as_arr().expect("array");
    assert!(arr
        .iter()
        .any(|v| v.get("rule").and_then(Json::as_str) == Some("unsafe-safety")));
    assert!(arr
        .iter()
        .all(|v| v.get("severity").and_then(Json::as_str).is_some()));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("from cache") || stderr.contains("error("),
        "diagnostics land on stderr: {stderr}"
    );
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn live_workspace_is_clean_even_under_strict_suppressions() {
    let root = gve_audit::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("root");
    let policy = Policy::default_workspace();
    let opts = AuditOptions {
        cache_path: None,
        policy_fingerprint: 0,
        strict_suppressions: true,
    };
    let report = audit_workspace_with(&root, &policy, &opts).expect("workspace");
    assert!(
        report.findings.is_empty(),
        "live tree carries stale suppressions or findings:\n{}",
        report
            .findings
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.files_scanned > 20, "sanity: walked the real tree");
}
