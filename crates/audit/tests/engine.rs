//! End-to-end tests for the audit engine and the `gve-audit` binary:
//! the seeded fixture must trip every rule, the clean fixture none, the
//! CLI must exit 1 on a violation-bearing workspace and 0 on the real
//! one.

use gve_audit::{audit_source, audit_workspace, find_workspace_root, Policy};
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// A policy that treats the fixture path as hot, `shutdown` as a
/// publish, and declares the fixture's two-lock hierarchy plus one
/// allocation-free function — mirroring the workspace defaults.
fn fixture_policy() -> Policy {
    Policy::parse(
        "hotpath fixture_hot.rs\n\
         publish fixture shutdown.store Release,SeqCst -- fixture publish flag\n\
         lock-order gate before inner -- fixture hierarchy\n\
         hotpath-alloc fixture_hot.rs fn=hot_alloc_site\n",
    )
    .expect("fixture policy parses")
}

#[test]
fn seeded_fixture_trips_every_rule() {
    let found = audit_source(
        "crates/x/src/fixture_hot.rs",
        &fixture("violations.rs"),
        &fixture_policy(),
    );
    let rules: Vec<&str> = found.iter().map(|v| v.rule).collect();
    assert!(rules.contains(&"unsafe-safety"), "{found:#?}");
    assert!(rules.contains(&"atomic-ordering"), "{found:#?}");
    assert!(rules.contains(&"hotpath-panic"), "{found:#?}");
    assert!(rules.contains(&"rayon-blocking"), "{found:#?}");
    assert!(rules.contains(&"lock-order"), "{found:#?}");
    assert!(rules.contains(&"hotpath-alloc"), "{found:#?}");
    assert!(rules.contains(&"guard-across-blocking"), "{found:#?}");
    // Two undocumented unsafes, one naked Relaxed, one demoted publish,
    // three hot-path panics, spawn + fs inside the region, one order
    // inversion, one deadlock cycle, one guard-across-recv, one alloc.
    assert!(found.len() >= 13, "expected >= 13 findings, got {found:#?}");
}

#[test]
fn seeded_fixture_reports_the_inversion_and_the_cycle() {
    let found = audit_source(
        "crates/x/src/fixture_hot.rs",
        &fixture("violations.rs"),
        &fixture_policy(),
    );
    // `inverted_order` nests inner → gate against the declared
    // `lock-order gate before inner`.
    assert!(
        found
            .iter()
            .any(|v| v.rule == "lock-order" && v.message.contains("inversion")),
        "{found:#?}"
    );
    // Together with `ordered_nesting` (gate → inner) that closes a
    // cycle, reported once with both sites.
    let cycle = found
        .iter()
        .find(|v| v.message.contains("potential deadlock"))
        .unwrap_or_else(|| panic!("no cycle finding in {found:#?}"));
    assert!(cycle.message.contains("gate → inner → gate"), "{cycle:#?}");
}

#[test]
fn clean_fixture_audits_clean_even_as_hot_path() {
    let found = audit_source(
        "crates/x/src/fixture_hot.rs",
        &fixture("clean.rs"),
        &fixture_policy(),
    );
    assert!(found.is_empty(), "{found:#?}");
}

#[test]
fn live_workspace_audits_clean_with_default_policy() {
    let root = workspace_root();
    let policy = Policy::default_workspace();
    let found = audit_workspace(&root, &policy).expect("workspace scan");
    assert!(
        found.is_empty(),
        "workspace has audit findings:\n{}",
        found
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn policy_file_on_disk_matches_embedded_default() {
    let root = workspace_root();
    let on_disk = Policy::load(&root.join("audit.policy")).expect("audit.policy loads");
    let embedded = Policy::default_workspace();
    assert_eq!(on_disk.hot_paths, embedded.hot_paths);
    assert_eq!(on_disk.skip, embedded.skip);
    assert_eq!(on_disk.publish.len(), embedded.publish.len());
    assert_eq!(on_disk.relaxed_ok.len(), embedded.relaxed_ok.len());
    assert_eq!(on_disk.lock_orders, embedded.lock_orders);
    assert_eq!(on_disk.lock_fns, embedded.lock_fns);
    assert_eq!(on_disk.lock_wrappers, embedded.lock_wrappers);
    assert_eq!(on_disk.lock_aliases, embedded.lock_aliases);
    assert_eq!(on_disk.lock_blocking_ok, embedded.lock_blocking_ok);
    assert_eq!(on_disk.blocking_calls, embedded.blocking_calls);
    assert_eq!(on_disk.hotpath_alloc, embedded.hotpath_alloc);
}

#[test]
fn cli_exits_nonzero_on_seeded_workspace_and_zero_on_real_one() {
    // Build a throwaway "workspace" containing only the violation
    // fixture, then point the binary at it.
    let bad_root = scratch_dir("gve-audit-bad");
    std::fs::create_dir_all(bad_root.join("crates/bad/src")).expect("mk scratch");
    std::fs::write(bad_root.join("Cargo.toml"), "[workspace]\n").expect("toml");
    std::fs::write(
        bad_root.join("crates/bad/src/lib.rs"),
        fixture("violations.rs"),
    )
    .expect("fixture copy");

    let bad = Command::new(env!("CARGO_BIN_EXE_gve-audit"))
        .args(["--root"])
        .arg(&bad_root)
        .output()
        .expect("run gve-audit");
    assert_eq!(
        bad.status.code(),
        Some(1),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&bad.stdout),
        String::from_utf8_lossy(&bad.stderr)
    );
    let stdout = String::from_utf8_lossy(&bad.stdout);
    assert!(stdout.contains("unsafe-safety"), "{stdout}");

    let good = Command::new(env!("CARGO_BIN_EXE_gve-audit"))
        .args(["--root"])
        .arg(workspace_root())
        .output()
        .expect("run gve-audit");
    assert_eq!(
        good.status.code(),
        Some(0),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&good.stdout),
        String::from_utf8_lossy(&good.stderr)
    );

    std::fs::remove_dir_all(&bad_root).ok();
}

#[test]
fn cli_json_output_is_parseable_shape() {
    let bad_root = scratch_dir("gve-audit-json");
    std::fs::create_dir_all(bad_root.join("crates/bad/src")).expect("mk scratch");
    std::fs::write(bad_root.join("Cargo.toml"), "[workspace]\n").expect("toml");
    std::fs::write(
        bad_root.join("crates/bad/src/lib.rs"),
        fixture("violations.rs"),
    )
    .expect("fixture copy");

    let out = Command::new(env!("CARGO_BIN_EXE_gve-audit"))
        .args(["--json", "--root"])
        .arg(&bad_root)
        .output()
        .expect("run gve-audit");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.trim_start().starts_with('['), "{stdout}");
    assert!(stdout.trim_end().ends_with(']'), "{stdout}");
    assert!(stdout.contains("\"rule\":\"unsafe-safety\""), "{stdout}");

    std::fs::remove_dir_all(&bad_root).ok();
}

fn workspace_root() -> PathBuf {
    find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root")
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}
