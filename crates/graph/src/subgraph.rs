//! Induced subgraph extraction.
//!
//! Community detection workflows routinely drill into one community:
//! extract its induced subgraph, re-run detection at a finer resolution,
//! inspect its internal structure. [`induced`] extracts the subgraph of
//! an arbitrary vertex set; [`community_subgraph`] is the convenience
//! wrapper for one community of a membership vector.

use crate::{CsrGraph, VertexId};
use rayon::prelude::*;

/// An induced subgraph together with the vertex-id mappings.
#[derive(Debug, Clone, PartialEq)]
pub struct Subgraph {
    /// The extracted graph over dense local ids `0..k`.
    pub graph: CsrGraph,
    /// Local id → original vertex id.
    pub to_original: Vec<VertexId>,
}

impl Subgraph {
    /// Maps a local vertex id back to the original graph.
    pub fn original_of(&self, local: VertexId) -> VertexId {
        self.to_original[local as usize]
    }
}

/// Extracts the subgraph induced by `vertices` (duplicates ignored;
/// order defines the local ids of the first occurrences).
pub fn induced(graph: &CsrGraph, vertices: &[VertexId]) -> Subgraph {
    let n = graph.num_vertices();
    // Original → local mapping; u32::MAX = not selected.
    let mut local_of = vec![VertexId::MAX; n];
    let mut to_original = Vec::with_capacity(vertices.len());
    for &v in vertices {
        assert!((v as usize) < n, "vertex {v} out of range");
        if local_of[v as usize] == VertexId::MAX {
            local_of[v as usize] = to_original.len() as VertexId;
            to_original.push(v);
        }
    }

    let rows: Vec<(Vec<VertexId>, Vec<f32>)> = to_original
        .par_iter()
        .map(|&v| {
            let mut targets = Vec::new();
            let mut weights = Vec::new();
            for (j, w) in graph.edges(v) {
                let local = local_of[j as usize];
                if local != VertexId::MAX {
                    targets.push(local);
                    weights.push(w);
                }
            }
            (targets, weights)
        })
        .collect();

    let mut offsets = Vec::with_capacity(to_original.len() + 1);
    let mut running = 0u64;
    for (t, _) in &rows {
        offsets.push(running);
        running += t.len() as u64;
    }
    offsets.push(running);
    let mut targets = Vec::with_capacity(running as usize);
    let mut weights = Vec::with_capacity(running as usize);
    for (t, w) in rows {
        targets.extend(t);
        weights.extend(w);
    }
    Subgraph {
        graph: CsrGraph::from_raw(offsets, targets, weights),
        to_original,
    }
}

/// Extracts the induced subgraph of one community.
pub fn community_subgraph(
    graph: &CsrGraph,
    membership: &[VertexId],
    community: VertexId,
) -> Subgraph {
    assert_eq!(membership.len(), graph.num_vertices());
    let members: Vec<VertexId> = membership
        .iter()
        .enumerate()
        .filter_map(|(v, &c)| (c == community).then_some(v as VertexId))
        .collect();
    induced(graph, &members)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn two_triangles() -> CsrGraph {
        GraphBuilder::from_edges(
            6,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 0, 1.0),
                (3, 4, 2.0),
                (4, 5, 2.0),
                (5, 3, 2.0),
                (2, 3, 1.0),
            ],
        )
    }

    #[test]
    fn induced_keeps_internal_edges_only() {
        let g = two_triangles();
        let sub = induced(&g, &[3, 4, 5]);
        assert_eq!(sub.graph.num_vertices(), 3);
        // The bridge 2-3 is dropped; the triangle's 6 arcs remain.
        assert_eq!(sub.graph.num_arcs(), 6);
        assert!(sub.graph.is_symmetric());
        assert_eq!(sub.graph.total_arc_weight(), 12.0);
        assert_eq!(sub.original_of(0), 3);
        assert_eq!(sub.to_original, vec![3, 4, 5]);
    }

    #[test]
    fn induced_respects_selection_order_and_dedups() {
        let g = two_triangles();
        let sub = induced(&g, &[5, 3, 5, 4]);
        assert_eq!(sub.to_original, vec![5, 3, 4]);
        assert_eq!(sub.graph.num_vertices(), 3);
    }

    #[test]
    fn community_subgraph_extracts_members() {
        let g = two_triangles();
        let sub = community_subgraph(&g, &[0, 0, 0, 1, 1, 1], 1);
        assert_eq!(sub.to_original, vec![3, 4, 5]);
        assert_eq!(sub.graph.num_arcs(), 6);
    }

    #[test]
    fn empty_selection() {
        let g = two_triangles();
        let sub = induced(&g, &[]);
        assert_eq!(sub.graph.num_vertices(), 0);
        assert_eq!(sub.graph.num_arcs(), 0);
    }

    #[test]
    fn self_loops_survive_extraction() {
        let g = GraphBuilder::from_edges(3, &[(0, 0, 5.0), (0, 1, 1.0), (1, 2, 1.0)]);
        let sub = induced(&g, &[0, 1]);
        assert!(sub.graph.has_arc(0, 0));
        assert_eq!(sub.graph.num_arcs(), 3); // loop + both bridge arcs
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_vertex() {
        induced(&two_triangles(), &[9]);
    }
}
