//! Cache-aware vertex relabeling (kernel-v2 preprocessing).
//!
//! The Leiden inner loops walk `membership[v]` and `sigma[c]` for every
//! neighbour `v` of every vertex, so the memory-access pattern is the
//! graph's adjacency structure itself. Relabeling vertices so that
//! neighbours get nearby ids turns those scattered loads into mostly
//! sequential ones:
//!
//! * [`VertexOrdering::DegreeDesc`] — hubs first. High-degree vertices
//!   (and their hot `sigma` slots) are packed into the first few cache
//!   lines, and the tail of low-degree vertices enjoys short rows that
//!   sit next to each other.
//! * [`VertexOrdering::Bfs`] — breadth-first order from the
//!   highest-degree vertex of each component. Neighbourhoods become
//!   contiguous id ranges, the classic bandwidth-reduction ordering.
//!
//! [`Relabeling`] carries both the forward permutation and its inverse so
//! results computed on the relabeled graph can be reported in the
//! caller's original ids ([`Relabeling::pull_to_original`]).

use crate::{CsrGraph, VertexId};
use std::collections::VecDeque;

/// Vertex relabeling strategy applied before detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VertexOrdering {
    /// Keep the input ids (no relabeling, no inverse mapping cost).
    #[default]
    Original,
    /// Sort vertices by descending degree (ties towards the smaller
    /// original id).
    DegreeDesc,
    /// Breadth-first order seeded at the highest-degree vertex of each
    /// connected component (components visited in seed-degree order).
    Bfs,
}

impl VertexOrdering {
    /// Parses a CLI/config token: `original`, `degree`, or `bfs`.
    pub fn parse(token: &str) -> Result<Self, String> {
        match token {
            "original" | "none" => Ok(Self::Original),
            "degree" | "degree-desc" => Ok(Self::DegreeDesc),
            "bfs" => Ok(Self::Bfs),
            other => Err(format!(
                "unknown vertex ordering '{other}' (expected original|degree|bfs)"
            )),
        }
    }

    /// Canonical token for fingerprints and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Self::Original => "original",
            Self::DegreeDesc => "degree",
            Self::Bfs => "bfs",
        }
    }
}

/// A vertex permutation together with its inverse.
///
/// `perm[old] = new` and `inv[new] = old`; both are full permutations of
/// `0..n`.
#[derive(Debug, Clone)]
pub struct Relabeling {
    /// Maps original id → relabeled id.
    pub perm: Vec<VertexId>,
    /// Maps relabeled id → original id.
    pub inv: Vec<VertexId>,
}

impl Relabeling {
    /// Builds the relabeling for `ordering` on `graph`. Returns `None`
    /// for [`VertexOrdering::Original`] (identity — callers skip the
    /// permutation work entirely).
    pub fn for_ordering(graph: &CsrGraph, ordering: VertexOrdering) -> Option<Self> {
        match ordering {
            VertexOrdering::Original => None,
            VertexOrdering::DegreeDesc => Some(Self::degree_sort(graph)),
            VertexOrdering::Bfs => Some(Self::bfs(graph)),
        }
    }

    /// Descending-degree order, ties broken towards the smaller original
    /// id (deterministic).
    pub fn degree_sort(graph: &CsrGraph) -> Self {
        let n = graph.num_vertices();
        let mut inv: Vec<VertexId> = (0..n as VertexId).collect();
        inv.sort_by_key(|&v| (std::cmp::Reverse(graph.degree(v)), v));
        Self::from_inv(inv)
    }

    /// BFS order: each component is seeded at its highest-degree vertex
    /// (seeds taken in descending-degree order across components), and
    /// neighbours are enqueued in row order.
    pub fn bfs(graph: &CsrGraph) -> Self {
        let n = graph.num_vertices();
        let mut seeds: Vec<VertexId> = (0..n as VertexId).collect();
        seeds.sort_by_key(|&v| (std::cmp::Reverse(graph.degree(v)), v));
        let mut inv: Vec<VertexId> = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        let mut queue = VecDeque::new();
        for &seed in &seeds {
            if visited[seed as usize] {
                continue;
            }
            visited[seed as usize] = true;
            queue.push_back(seed);
            while let Some(u) = queue.pop_front() {
                inv.push(u);
                for &j in graph.neighbors(u) {
                    if !visited[j as usize] {
                        visited[j as usize] = true;
                        queue.push_back(j);
                    }
                }
            }
        }
        Self::from_inv(inv)
    }

    /// Builds the forward permutation from a new→old order vector.
    fn from_inv(inv: Vec<VertexId>) -> Self {
        let mut perm = vec![0 as VertexId; inv.len()];
        for (new_id, &old_id) in inv.iter().enumerate() {
            perm[old_id as usize] = new_id as VertexId;
        }
        Self { perm, inv }
    }

    /// Number of vertices covered by the permutation.
    #[inline]
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// True for the empty (0-vertex) permutation.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// Builds the relabeled graph: vertex `old` becomes `perm[old]`, and
    /// each row's arcs are re-sorted by new target id so neighbour scans
    /// walk ascending addresses.
    pub fn apply(&self, graph: &CsrGraph) -> CsrGraph {
        let n = graph.num_vertices();
        assert_eq!(n, self.len(), "permutation size must match graph");
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u64);
        let mut total = 0u64;
        for new_u in 0..n {
            total += graph.degree(self.inv[new_u]) as u64;
            offsets.push(total);
        }
        let mut targets = Vec::with_capacity(total as usize);
        let mut weights = Vec::with_capacity(total as usize);
        let mut row: Vec<(VertexId, f32)> = Vec::new();
        for new_u in 0..n {
            let old_u = self.inv[new_u];
            row.clear();
            row.extend(graph.edges(old_u).map(|(j, w)| (self.perm[j as usize], w)));
            row.sort_unstable_by_key(|&(t, _)| t);
            for &(t, w) in &row {
                targets.push(t);
                weights.push(w);
            }
        }
        CsrGraph::from_raw(offsets, targets, weights)
    }

    /// Re-indexes per-vertex values from original to relabeled ids:
    /// `out[new] = values[inv[new]]`.
    pub fn push_to_new<T: Copy>(&self, values: &[T]) -> Vec<T> {
        assert_eq!(values.len(), self.len());
        self.inv.iter().map(|&old| values[old as usize]).collect()
    }

    /// Re-indexes per-vertex values from relabeled back to original ids:
    /// `out[old] = values[perm[old]]`. This is how memberships computed
    /// on the relabeled graph are reported in the caller's ids.
    pub fn pull_to_original<T: Copy>(&self, values: &[T]) -> Vec<T> {
        assert_eq!(values.len(), self.len());
        self.perm.iter().map(|&new| values[new as usize]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    /// Two triangles bridged by an edge, plus an isolated vertex.
    fn sample() -> CsrGraph {
        let mut b = GraphBuilder::new().with_vertices(7);
        for (u, v, w) in [
            (0, 1, 1.0),
            (1, 2, 2.0),
            (2, 0, 1.5),
            (2, 3, 0.5),
            (3, 4, 1.0),
            (4, 5, 1.0),
            (5, 3, 3.0),
        ] {
            b.add_edge(u, v, w);
        }
        b.build()
    }

    fn assert_is_permutation(r: &Relabeling, n: usize) {
        assert_eq!(r.len(), n);
        let mut seen = vec![false; n];
        for &p in &r.perm {
            assert!(!seen[p as usize], "duplicate image {p}");
            seen[p as usize] = true;
        }
        for v in 0..n {
            assert_eq!(r.inv[r.perm[v] as usize] as usize, v, "inv ∘ perm ≠ id");
            assert_eq!(r.perm[r.inv[v] as usize] as usize, v, "perm ∘ inv ≠ id");
        }
    }

    #[test]
    fn degree_sort_is_valid_and_sorted() {
        let g = sample();
        let r = Relabeling::degree_sort(&g);
        assert_is_permutation(&r, g.num_vertices());
        let h = r.apply(&g);
        let degrees: Vec<usize> = (0..h.num_vertices() as VertexId)
            .map(|v| h.degree(v))
            .collect();
        assert!(degrees.windows(2).all(|w| w[0] >= w[1]), "{degrees:?}");
    }

    #[test]
    fn bfs_is_valid_and_visits_components_whole() {
        let g = sample();
        let r = Relabeling::bfs(&g);
        assert_is_permutation(&r, g.num_vertices());
        // The isolated vertex (degree 0) must come last in BFS order.
        assert_eq!(r.inv[g.num_vertices() - 1], 6);
    }

    #[test]
    fn apply_preserves_structure() {
        let g = sample();
        for ordering in [VertexOrdering::DegreeDesc, VertexOrdering::Bfs] {
            let r = Relabeling::for_ordering(&g, ordering).unwrap();
            let h = r.apply(&g);
            assert_eq!(h.num_vertices(), g.num_vertices());
            assert_eq!(h.num_arcs(), g.num_arcs());
            assert!(h.is_symmetric());
            assert_eq!(h.total_arc_weight(), g.total_arc_weight());
            for old in 0..g.num_vertices() as VertexId {
                let new = r.perm[old as usize];
                assert_eq!(h.degree(new), g.degree(old));
                assert!(
                    (h.weighted_degree(new) - g.weighted_degree(old)).abs() < 1e-12,
                    "weighted degree changed for {old}"
                );
                // Same neighbour multiset under the permutation.
                let mut want: Vec<(VertexId, u32)> = g
                    .edges(old)
                    .map(|(j, w)| (r.perm[j as usize], w.to_bits()))
                    .collect();
                want.sort_unstable();
                let got: Vec<(VertexId, u32)> =
                    h.edges(new).map(|(j, w)| (j, w.to_bits())).collect();
                assert_eq!(got, want, "row {old} mismatch");
                // Rows are sorted by target after relabeling.
                assert!(h.neighbors(new).windows(2).all(|w| w[0] <= w[1]));
            }
        }
    }

    #[test]
    fn push_pull_round_trip() {
        let g = sample();
        let r = Relabeling::degree_sort(&g);
        let values: Vec<u32> = (0..g.num_vertices() as u32).map(|v| v * 10).collect();
        let pushed = r.push_to_new(&values);
        assert_eq!(r.pull_to_original(&pushed), values);
        // And perm itself round-trips through pull.
        let identity: Vec<u32> = (0..g.num_vertices() as u32).collect();
        assert_eq!(r.pull_to_original(&r.push_to_new(&identity)), identity);
    }

    #[test]
    fn original_ordering_is_identity() {
        let g = sample();
        assert!(Relabeling::for_ordering(&g, VertexOrdering::Original).is_none());
    }

    #[test]
    fn ordering_parse_round_trip() {
        for ord in [
            VertexOrdering::Original,
            VertexOrdering::DegreeDesc,
            VertexOrdering::Bfs,
        ] {
            assert_eq!(VertexOrdering::parse(ord.label()), Ok(ord));
        }
        assert!(VertexOrdering::parse("zorder").is_err());
    }

    #[test]
    fn empty_graph_relabels() {
        let g = CsrGraph::empty(0);
        let r = Relabeling::degree_sort(&g);
        assert!(r.is_empty());
        assert_eq!(r.apply(&g).num_vertices(), 0);
    }
}
