//! GraphViz DOT export for small graphs.
//!
//! Visual inspection closes the loop when debugging community
//! detection: export the graph with vertices colored by community and
//! render it with `dot -Tsvg`. Intended for graphs small enough to draw
//! (hundreds of vertices); the writer refuses nothing but warns in the
//! header comment when the graph is large.

use crate::{CsrGraph, VertexId};
use std::io::{self, BufWriter, Write};

/// A palette of visually distinct fill colors; communities beyond the
/// palette wrap around.
const PALETTE: [&str; 12] = [
    "#66c2a5", "#fc8d62", "#8da0cb", "#e78ac3", "#a6d854", "#ffd92f", "#e5c494", "#b3b3b3",
    "#1b9e77", "#d95f02", "#7570b3", "#e7298a",
];

/// Writes the graph as an undirected DOT document, one node per vertex.
/// When `membership` is given, nodes are filled by community color and
/// cross-community edges are drawn dashed.
pub fn write_dot<W: Write>(
    graph: &CsrGraph,
    membership: Option<&[VertexId]>,
    writer: W,
) -> io::Result<()> {
    if let Some(m) = membership {
        assert_eq!(m.len(), graph.num_vertices(), "membership length mismatch");
    }
    let mut out = BufWriter::new(writer);
    writeln!(out, "graph gve {{")?;
    if graph.num_vertices() > 1000 {
        writeln!(
            out,
            "  // {} vertices — consider sfdp for layout",
            graph.num_vertices()
        )?;
    }
    writeln!(out, "  node [shape=circle style=filled fontsize=10];")?;
    for v in 0..graph.num_vertices() as VertexId {
        match membership {
            Some(m) => {
                let color = PALETTE[(m[v as usize] as usize) % PALETTE.len()];
                writeln!(out, "  {v} [fillcolor=\"{color}\" label=\"{v}\"];")?;
            }
            None => writeln!(out, "  {v};")?,
        }
    }
    for (u, v, w) in graph.arcs() {
        if u > v {
            continue; // one line per undirected edge (self-loops included once)
        }
        let mut attrs: Vec<String> = Vec::new();
        if w != 1.0 {
            attrs.push(format!("label=\"{w}\""));
        }
        if let Some(m) = membership {
            if m[u as usize] != m[v as usize] {
                attrs.push("style=dashed".into());
            }
        }
        if attrs.is_empty() {
            writeln!(out, "  {u} -- {v};")?;
        } else {
            writeln!(out, "  {u} -- {v} [{}];", attrs.join(" "))?;
        }
    }
    writeln!(out, "}}")?;
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn render(graph: &CsrGraph, membership: Option<&[VertexId]>) -> String {
        let mut buf = Vec::new();
        write_dot(graph, membership, &mut buf).unwrap();
        String::from_utf8(buf).unwrap()
    }

    #[test]
    fn plain_export_lists_all_edges_once() {
        let g = GraphBuilder::from_edges(3, &[(0, 1, 1.0), (1, 2, 2.5)]);
        let dot = render(&g, None);
        assert!(dot.starts_with("graph gve {"));
        assert!(dot.contains("0 -- 1;"));
        assert!(dot.contains("1 -- 2 [label=\"2.5\"];"));
        assert!(!dot.contains("2 -- 1"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn membership_colors_nodes_and_dashes_bridges() {
        let g = GraphBuilder::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0), (1, 2, 1.0)]);
        let dot = render(&g, Some(&[0, 0, 1, 1]));
        assert!(dot.contains("fillcolor"));
        assert!(dot.contains("1 -- 2 [style=dashed];"));
        assert!(dot.contains("0 -- 1;"));
    }

    #[test]
    fn self_loops_appear_once() {
        let g = GraphBuilder::from_edges(1, &[(0, 0, 1.0)]);
        let dot = render(&g, None);
        assert_eq!(dot.matches("0 -- 0").count(), 1);
    }

    #[test]
    #[should_panic(expected = "membership length")]
    fn rejects_bad_membership() {
        let g = GraphBuilder::from_edges(2, &[(0, 1, 1.0)]);
        render(&g, Some(&[0]));
    }
}
