//! Compact binary CSR snapshot format.
//!
//! Text formats dominate graph distribution (Matrix Market, edge lists)
//! but parse slowly; converting a dataset once and reloading the raw CSR
//! arrays makes repeated benchmarking of the paper's suite practical.
//!
//! Layout (all little-endian):
//!
//! ```text
//! magic   "GVEG"           4 bytes
//! version u16              currently 1
//! flags   u16              reserved, 0
//! |V|     u64
//! arcs    u64
//! offsets u64 × (|V| + 1)
//! targets u32 × arcs
//! weights f32 × arcs
//! ```

use crate::io::IoError;
use crate::{CsrGraph, EdgeWeight, VertexId};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::io::{Read, Write};

const MAGIC: &[u8; 4] = b"GVEG";
const VERSION: u16 = 1;

fn parse_err(message: impl Into<String>) -> IoError {
    IoError::Parse {
        line: 0,
        message: message.into(),
    }
}

/// Serializes a graph into the binary snapshot format.
pub fn encode(graph: &CsrGraph) -> Bytes {
    let n = graph.num_vertices();
    let arcs = graph.num_arcs();
    let mut buf = BytesMut::with_capacity(4 + 2 + 2 + 16 + 8 * (n + 1) + 4 * arcs + 4 * arcs);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u16_le(0);
    buf.put_u64_le(n as u64);
    buf.put_u64_le(arcs as u64);
    for &o in graph.offsets() {
        buf.put_u64_le(o);
    }
    for &t in graph.targets() {
        buf.put_u32_le(t);
    }
    for &w in graph.weights() {
        buf.put_f32_le(w);
    }
    buf.freeze()
}

/// Deserializes a graph from the binary snapshot format.
pub fn decode(mut data: &[u8]) -> Result<CsrGraph, IoError> {
    if data.remaining() < 8 + 16 {
        return Err(parse_err("truncated header"));
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(parse_err("bad magic (not a GVEG file)"));
    }
    let version = data.get_u16_le();
    if version != VERSION {
        return Err(parse_err(format!("unsupported version {version}")));
    }
    let _flags = data.get_u16_le();
    let n = data.get_u64_le() as usize;
    let arcs = data.get_u64_le() as usize;
    let need = 8 * (n + 1) + 4 * arcs + 4 * arcs;
    if data.remaining() < need {
        return Err(parse_err(format!(
            "truncated body: need {need} bytes, have {}",
            data.remaining()
        )));
    }
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        offsets.push(data.get_u64_le());
    }
    let mut targets: Vec<VertexId> = Vec::with_capacity(arcs);
    for _ in 0..arcs {
        targets.push(data.get_u32_le());
    }
    let mut weights: Vec<EdgeWeight> = Vec::with_capacity(arcs);
    for _ in 0..arcs {
        weights.push(data.get_f32_le());
    }
    CsrGraph::try_from_raw(offsets, targets, weights)
        .map_err(|e| parse_err(format!("invalid CSR payload: {e}")))
}

/// Writes the binary snapshot to a writer.
pub fn write_binary<W: Write>(graph: &CsrGraph, mut writer: W) -> std::io::Result<()> {
    writer.write_all(&encode(graph))
}

/// Reads a binary snapshot from a reader.
pub fn read_binary<R: Read>(mut reader: R) -> Result<CsrGraph, IoError> {
    let mut data = Vec::new();
    reader.read_to_end(&mut data)?;
    decode(&data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn sample() -> CsrGraph {
        GraphBuilder::from_edges(
            5,
            &[
                (0, 1, 1.5),
                (1, 2, 2.0),
                (2, 3, 0.25),
                (3, 4, 4.0),
                (0, 0, 7.0),
            ],
        )
    }

    #[test]
    fn roundtrip_preserves_graph_exactly() {
        let g = sample();
        let decoded = decode(&encode(&g)).unwrap();
        assert_eq!(decoded, g);
    }

    #[test]
    fn roundtrip_through_io_traits() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        assert_eq!(read_binary(buf.as_slice()).unwrap(), g);
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = CsrGraph::empty(0);
        assert_eq!(decode(&encode(&g)).unwrap(), g);
        let g3 = CsrGraph::empty(3);
        assert_eq!(decode(&encode(&g3)).unwrap(), g3);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut data = encode(&sample()).to_vec();
        data[0] = b'X';
        let err = decode(&data).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
    }

    #[test]
    fn rejects_wrong_version() {
        let mut data = encode(&sample()).to_vec();
        data[4] = 99;
        assert!(decode(&data).unwrap_err().to_string().contains("version"));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let data = encode(&sample()).to_vec();
        for cut in [0, 3, 8, 20, data.len() - 1] {
            assert!(decode(&data[..cut]).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn rejects_corrupt_payload() {
        let g = sample();
        let mut data = encode(&g).to_vec();
        // Corrupt a target id to be out of range: targets start after
        // header (24) + offsets (8 * (n + 1)).
        let target_base = 24 + 8 * (g.num_vertices() + 1);
        data[target_base] = 0xFF;
        data[target_base + 1] = 0xFF;
        data[target_base + 2] = 0xFF;
        data[target_base + 3] = 0xFF;
        assert!(decode(&data)
            .unwrap_err()
            .to_string()
            .contains("invalid CSR"));
    }

    #[test]
    fn large_random_graph_roundtrips() {
        let g = crate::builder::GraphBuilder::from_edges(
            1000,
            &(0..5000u32)
                .map(|i| {
                    (
                        (i * 7919) % 1000,
                        (i * 104729) % 1000,
                        (i % 13) as f32 + 0.5,
                    )
                })
                .collect::<Vec<_>>(),
        );
        assert_eq!(decode(&encode(&g)).unwrap(), g);
    }
}
