//! Immutable weighted CSR graph.
//!
//! Edges of an undirected graph are stored as directed *arcs* in both
//! directions, so a graph with `M` undirected edges holds `2M` arcs (the
//! paper's `|E|` counts arcs "after adding reverse edges", Table 2).

use crate::{EdgeWeight, VertexId};
use std::sync::OnceLock;

/// Compressed-sparse-row weighted graph.
///
/// Invariants (checked by [`CsrGraph::validate`]):
/// * `offsets` is monotonically non-decreasing with
///   `offsets.len() == num_vertices + 1`;
/// * `targets.len() == weights.len() == offsets[num_vertices]`;
/// * every target is `< num_vertices`.
///
/// Besides the split `targets`/`weights` arrays, the graph can carry an
/// optional *interleaved* `(target, weight)` copy of the arcs (built
/// on demand by [`CsrGraph::build_interleaved`]), so a neighbour scan
/// touches one cache stream instead of two — the kernel-v2 edge layout.
#[derive(Debug, Clone)]
pub struct CsrGraph {
    offsets: Vec<u64>,
    targets: Vec<VertexId>,
    weights: Vec<EdgeWeight>,
    /// Lazily built interleaved arc array, parallel to `targets`.
    interleaved: OnceLock<Vec<(VertexId, EdgeWeight)>>,
}

/// Graph identity is the CSR content; whether the optional interleaved
/// layout has been materialized is a cache detail.
impl PartialEq for CsrGraph {
    fn eq(&self, other: &Self) -> bool {
        self.offsets == other.offsets
            && self.targets == other.targets
            && self.weights == other.weights
    }
}

impl CsrGraph {
    /// Builds a graph from raw CSR arrays.
    ///
    /// # Panics
    /// Panics when the arrays violate the CSR invariants.
    pub fn from_raw(offsets: Vec<u64>, targets: Vec<VertexId>, weights: Vec<EdgeWeight>) -> Self {
        Self::try_from_raw(offsets, targets, weights).expect("invalid CSR arrays")
    }

    /// Fallible variant of [`CsrGraph::from_raw`] for untrusted input
    /// (e.g. deserialization).
    pub fn try_from_raw(
        offsets: Vec<u64>,
        targets: Vec<VertexId>,
        weights: Vec<EdgeWeight>,
    ) -> Result<Self, String> {
        let graph = Self {
            offsets,
            targets,
            weights,
            interleaved: OnceLock::new(),
        };
        graph.validate().map(|()| graph)
    }

    /// Builds a graph from raw CSR arrays **without** the O(N + E)
    /// validation scan, for builders whose output satisfies the CSR
    /// invariants by construction (e.g. the holey-CSR squeeze, whose
    /// targets are dense community ids `< k` and whose offsets come from
    /// a prefix sum). Skipping the serial validate pass matters on the
    /// per-pass aggregation path.
    ///
    /// Violating the invariants here cannot cause undefined behaviour —
    /// accessors index through checked slices — but will panic or
    /// return nonsense later, so this is debug-asserted and reserved
    /// for trusted construction sites.
    pub fn from_raw_trusted(
        offsets: Vec<u64>,
        targets: Vec<VertexId>,
        weights: Vec<EdgeWeight>,
    ) -> Self {
        let graph = Self {
            offsets,
            targets,
            weights,
            interleaved: OnceLock::new(),
        };
        debug_assert!(graph.validate().is_ok(), "from_raw_trusted invariants");
        graph
    }

    /// Decomposes the graph into its raw `(offsets, targets, weights)`
    /// arrays, discarding any interleaved cache. The workspace arena
    /// uses this to recycle a retired super-vertex graph's buffers into
    /// the next aggregation instead of allocating fresh ones.
    pub fn into_raw(self) -> (Vec<u64>, Vec<VertexId>, Vec<EdgeWeight>) {
        (self.offsets, self.targets, self.weights)
    }

    /// An empty graph with `n` isolated vertices.
    pub fn empty(n: usize) -> Self {
        Self {
            offsets: vec![0; n + 1],
            targets: Vec::new(),
            weights: Vec::new(),
            interleaved: OnceLock::new(),
        }
    }

    /// Checks the CSR invariants, returning a description of the first
    /// violation found.
    pub fn validate(&self) -> Result<(), String> {
        if self.offsets.is_empty() {
            return Err("offsets must have at least one entry".into());
        }
        if self.offsets[0] != 0 {
            return Err("offsets[0] must be 0".into());
        }
        if self.offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("offsets must be non-decreasing".into());
        }
        let arcs = *self.offsets.last().unwrap() as usize;
        if self.targets.len() != arcs {
            return Err(format!(
                "targets length {} != offsets total {arcs}",
                self.targets.len()
            ));
        }
        if self.weights.len() != arcs {
            return Err(format!(
                "weights length {} != offsets total {arcs}",
                self.weights.len()
            ));
        }
        let n = self.num_vertices() as u64;
        if let Some(&bad) = self.targets.iter().find(|&&t| t as u64 >= n) {
            return Err(format!("target {bad} out of range for {n} vertices"));
        }
        Ok(())
    }

    /// Number of vertices `N`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed arcs (`2M` for an undirected graph stored with
    /// reverse edges; this matches the `|E|` column of Table 2).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.targets.len()
    }

    /// Out-degree of vertex `u`.
    #[inline]
    pub fn degree(&self, u: VertexId) -> usize {
        let u = u as usize;
        (self.offsets[u + 1] - self.offsets[u]) as usize
    }

    /// Iterates over `(neighbor, weight)` pairs of vertex `u`.
    #[inline]
    pub fn edges(&self, u: VertexId) -> impl Iterator<Item = (VertexId, EdgeWeight)> + '_ {
        let u = u as usize;
        let lo = self.offsets[u] as usize;
        let hi = self.offsets[u + 1] as usize;
        self.targets[lo..hi]
            .iter()
            .copied()
            .zip(self.weights[lo..hi].iter().copied())
    }

    /// Neighbor slice of vertex `u` (without weights).
    #[inline]
    pub fn neighbors(&self, u: VertexId) -> &[VertexId] {
        let u = u as usize;
        &self.targets[self.offsets[u] as usize..self.offsets[u + 1] as usize]
    }

    /// Weight slice of vertex `u`, parallel to [`CsrGraph::neighbors`].
    #[inline]
    pub fn edge_weights(&self, u: VertexId) -> &[EdgeWeight] {
        let u = u as usize;
        &self.weights[self.offsets[u] as usize..self.offsets[u + 1] as usize]
    }

    /// The raw offsets array (length `N + 1`).
    #[inline]
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// The raw arc target array.
    #[inline]
    pub fn targets(&self) -> &[VertexId] {
        &self.targets
    }

    /// The raw arc weight array.
    #[inline]
    pub fn weights(&self) -> &[EdgeWeight] {
        &self.weights
    }

    /// Weighted degree `K_u = Σ_{v ∈ J_u} w_uv` of vertex `u`,
    /// accumulated in `f64` per the paper's configuration.
    pub fn weighted_degree(&self, u: VertexId) -> f64 {
        self.edge_weights(u).iter().map(|&w| w as f64).sum()
    }

    /// Sum of all arc weights. For an undirected graph stored with
    /// reverse arcs this is `2m` where `m` is the paper's total edge
    /// weight (§3); self-loops stored once contribute their weight once.
    pub fn total_arc_weight(&self) -> f64 {
        use rayon::prelude::*;
        if self.weights.len() < 1 << 16 {
            self.weights.iter().map(|&w| w as f64).sum()
        } else {
            self.weights.par_iter().map(|&w| w as f64).sum()
        }
    }

    /// True when vertex `u` has an arc to `v`.
    pub fn has_arc(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbors(u).contains(&v)
    }

    /// Iterates over every directed arc as `(source, target, weight)`.
    pub fn arcs(&self) -> impl Iterator<Item = (VertexId, VertexId, EdgeWeight)> + '_ {
        (0..self.num_vertices() as VertexId)
            .flat_map(move |u| self.edges(u).map(move |(v, w)| (u, v, w)))
    }

    /// Materializes (once) the interleaved `(target, weight)` arc array
    /// and returns it. Idempotent; later calls return the cached copy.
    ///
    /// Doubles the graph's edge memory while active, so callers opt in
    /// per pass (see `EdgeLayout::Interleaved` in `gve-core`).
    pub fn build_interleaved(&self) -> &[(VertexId, EdgeWeight)] {
        self.interleaved.get_or_init(|| {
            self.targets
                .iter()
                .copied()
                .zip(self.weights.iter().copied())
                .collect()
        })
    }

    /// The interleaved arc array, if [`CsrGraph::build_interleaved`] has
    /// run.
    #[inline]
    pub fn interleaved(&self) -> Option<&[(VertexId, EdgeWeight)]> {
        self.interleaved.get().map(Vec::as_slice)
    }

    /// Installs `buf` as the interleaved cache, refilling it from the
    /// split arrays and reusing its capacity. This is the arena path:
    /// per-pass supergraphs borrow a pooled buffer instead of letting
    /// [`CsrGraph::build_interleaved`] allocate a fresh vector, keeping
    /// the steady-state Leiden loop allocation-free. Replaces any
    /// previously built cache.
    pub fn adopt_interleaved(&mut self, mut buf: Vec<(VertexId, EdgeWeight)>) {
        buf.clear();
        buf.extend(
            self.targets
                .iter()
                .copied()
                .zip(self.weights.iter().copied()),
        );
        self.interleaved = OnceLock::new();
        let _ = self.interleaved.set(buf);
    }

    /// Removes and returns the interleaved cache so its allocation can
    /// be pooled before the graph is recycled ([`CsrGraph::into_raw`]
    /// would drop it).
    pub fn take_interleaved(&mut self) -> Option<Vec<(VertexId, EdgeWeight)>> {
        self.interleaved.take()
    }

    /// One vertex's interleaved `(target, weight)` row, or `None` when
    /// the cache has not been built. The kernel-v3 scan branches on
    /// this once per vertex instead of paying [`EdgeScan`]'s per-edge
    /// layout dispatch.
    #[inline]
    pub fn interleaved_row(&self, u: VertexId) -> Option<&[(VertexId, EdgeWeight)]> {
        let pairs = self.interleaved.get()?;
        let u = u as usize;
        let lo = self.offsets[u] as usize;
        let hi = self.offsets[u + 1] as usize;
        Some(&pairs[lo..hi])
    }

    /// Layout-aware neighbour scan for hot kernels: iterates the
    /// interleaved array when it has been built (one cache stream), the
    /// split `targets`/`weights` arrays otherwise. Yields exactly the
    /// same `(neighbor, weight)` sequence as [`CsrGraph::edges`].
    #[inline]
    pub fn scan_edges(&self, u: VertexId) -> EdgeScan<'_> {
        let u = u as usize;
        let lo = self.offsets[u] as usize;
        let hi = self.offsets[u + 1] as usize;
        match self.interleaved.get() {
            Some(pairs) => EdgeScan::Interleaved(pairs[lo..hi].iter()),
            None => EdgeScan::Split(self.targets[lo..hi].iter().zip(self.weights[lo..hi].iter())),
        }
    }

    /// Checks structural symmetry: every arc `(u, v, w)` has a matching
    /// reverse arc `(v, u, w)`. O(arcs · log) — intended for tests.
    pub fn is_symmetric(&self) -> bool {
        let mut fwd: Vec<(VertexId, VertexId, u32)> =
            self.arcs().map(|(u, v, w)| (u, v, w.to_bits())).collect();
        let mut rev: Vec<(VertexId, VertexId, u32)> =
            self.arcs().map(|(u, v, w)| (v, u, w.to_bits())).collect();
        fwd.sort_unstable();
        rev.sort_unstable();
        fwd == rev
    }
}

/// Iterator returned by [`CsrGraph::scan_edges`]: one row of arcs in
/// whichever physical layout the graph currently carries.
pub enum EdgeScan<'g> {
    /// Walking the split `targets`/`weights` arrays (two cache streams).
    Split(std::iter::Zip<std::slice::Iter<'g, VertexId>, std::slice::Iter<'g, EdgeWeight>>),
    /// Walking the interleaved `(target, weight)` array (one stream).
    Interleaved(std::slice::Iter<'g, (VertexId, EdgeWeight)>),
}

impl Iterator for EdgeScan<'_> {
    type Item = (VertexId, EdgeWeight);

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        match self {
            EdgeScan::Split(it) => it.next().map(|(&t, &w)| (t, w)),
            EdgeScan::Interleaved(it) => it.next().copied(),
        }
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            EdgeScan::Split(it) => it.size_hint(),
            EdgeScan::Interleaved(it) => it.size_hint(),
        }
    }
}

impl ExactSizeIterator for EdgeScan<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    /// Triangle 0-1-2 with unit weights plus a pendant vertex 3 on 2.
    fn sample() -> CsrGraph {
        // arcs: 0:{1,2} 1:{0,2} 2:{0,1,3} 3:{2}
        CsrGraph::from_raw(
            vec![0, 2, 4, 7, 8],
            vec![1, 2, 0, 2, 0, 1, 3, 2],
            vec![1.0; 8],
        )
    }

    #[test]
    fn basic_accessors() {
        let g = sample();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_arcs(), 8);
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        assert_eq!(g.edges(3).collect::<Vec<_>>(), vec![(2, 1.0)]);
        assert_eq!(g.weighted_degree(2), 3.0);
        assert_eq!(g.total_arc_weight(), 8.0);
        assert!(g.has_arc(0, 1));
        assert!(!g.has_arc(0, 3));
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_arcs(), 0);
        assert_eq!(g.degree(4), 0);
        assert!(g.is_symmetric());
        let g0 = CsrGraph::empty(0);
        assert_eq!(g0.num_vertices(), 0);
    }

    #[test]
    fn symmetry_check() {
        let g = sample();
        assert!(g.is_symmetric());
        let asym = CsrGraph::from_raw(vec![0, 1, 1], vec![1], vec![1.0]);
        assert!(!asym.is_symmetric());
    }

    #[test]
    fn arcs_iterator_enumerates_all() {
        let g = sample();
        let arcs: Vec<_> = g.arcs().collect();
        assert_eq!(arcs.len(), 8);
        assert_eq!(arcs[0], (0, 1, 1.0));
        assert_eq!(arcs[7], (3, 2, 1.0));
    }

    #[test]
    #[should_panic(expected = "invalid CSR")]
    fn rejects_bad_offsets() {
        CsrGraph::from_raw(vec![0, 2, 1], vec![0, 1], vec![1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "invalid CSR")]
    fn rejects_out_of_range_target() {
        CsrGraph::from_raw(vec![0, 1], vec![3], vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "invalid CSR")]
    fn rejects_mismatched_weights() {
        CsrGraph::from_raw(vec![0, 1], vec![0], vec![]);
    }

    #[test]
    fn validate_reports_first_offset() {
        let g = CsrGraph {
            offsets: vec![1, 2],
            targets: vec![0],
            weights: vec![1.0],
            interleaved: OnceLock::new(),
        };
        assert!(g.validate().unwrap_err().contains("offsets[0]"));
    }

    #[test]
    fn scan_edges_matches_edges_in_both_layouts() {
        let g = sample();
        for u in 0..g.num_vertices() as VertexId {
            let split: Vec<_> = g.scan_edges(u).collect();
            assert_eq!(split, g.edges(u).collect::<Vec<_>>(), "split, u={u}");
            assert_eq!(g.scan_edges(u).len(), g.degree(u));
        }
        let built = g.build_interleaved();
        assert_eq!(built.len(), g.num_arcs());
        assert!(g.interleaved().is_some());
        for u in 0..g.num_vertices() as VertexId {
            let inter: Vec<_> = g.scan_edges(u).collect();
            assert_eq!(inter, g.edges(u).collect::<Vec<_>>(), "interleaved, u={u}");
        }
        // Idempotent.
        assert_eq!(g.build_interleaved().len(), g.num_arcs());
    }

    #[test]
    fn raw_roundtrip_and_trusted_rebuild() {
        let g = sample();
        g.build_interleaved();
        let (offsets, targets, weights) = g.into_raw();
        let rebuilt = CsrGraph::from_raw_trusted(offsets, targets, weights);
        assert_eq!(rebuilt, sample());
        // The interleaved cache does not survive decomposition.
        assert!(rebuilt.interleaved().is_none());
    }

    #[test]
    fn equality_ignores_interleaved_cache() {
        let a = sample();
        let b = sample();
        a.build_interleaved();
        assert_eq!(a, b);
        assert!(b.interleaved().is_none());
        // Cloning carries the built layout along.
        let c = a.clone();
        assert!(c.interleaved().is_some());
    }

    #[test]
    fn adopt_take_interleaved_recycles_capacity() {
        let mut g = sample();
        // Adopting a dirty, over-sized pooled buffer refills it with
        // this graph's arcs without allocating.
        let mut pooled = Vec::with_capacity(64);
        pooled.push((99u32, 9.0f32));
        let cap_before = pooled.capacity();
        g.adopt_interleaved(pooled);
        let built = g.interleaved().expect("cache installed");
        assert_eq!(built.len(), g.num_arcs());
        for u in 0..g.num_vertices() as VertexId {
            assert_eq!(
                g.interleaved_row(u).unwrap(),
                g.edges(u).collect::<Vec<_>>().as_slice(),
                "u={u}"
            );
        }
        // Taking the cache hands the same allocation back.
        let returned = g.take_interleaved().expect("cache was present");
        assert_eq!(returned.capacity(), cap_before);
        assert!(g.interleaved().is_none());
        assert!(g.take_interleaved().is_none());
        assert_eq!(g.interleaved_row(0), None);
    }

    #[test]
    fn adopt_interleaved_replaces_built_cache() {
        let mut g = sample();
        g.build_interleaved();
        g.adopt_interleaved(Vec::new());
        let built = g.interleaved().expect("cache installed");
        assert_eq!(built.len(), g.num_arcs());
        assert_eq!(
            built.to_vec(),
            sample().build_interleaved().to_vec(),
            "adopted cache must equal the built one"
        );
    }
}
