//! Weighted graph substrate for the GVE-Leiden reproduction.
//!
//! The paper's pipeline (Figure 5) consumes either a "Weighted
//! 2D-vector-based" graph or a "Weighted CSR with degree" and produces
//! super-vertex graphs stored in a "Weighted Holey CSR with degree". This
//! crate provides all three representations plus the plumbing around them:
//!
//! * [`CsrGraph`] — immutable weighted compressed-sparse-row graph, the
//!   working representation for every algorithm crate;
//! * [`AdjacencyList`] — the mutable 2D-vector form, convenient for
//!   construction and tests;
//! * [`holey::HoleyCsrBuilder`] — over-allocated CSR whose slots are
//!   claimed atomically by concurrent writers (aggregation phase);
//! * [`holey::GroupedCsr`] — exact-size CSR mapping group id → members
//!   (the community-vertices structure `G'_{C'}` of Algorithm 4);
//! * [`builder::GraphBuilder`] — edge-list ingestion with symmetrization,
//!   deduplication and self-loop policy;
//! * [`io`] — Matrix Market and plain edge-list readers/writers, enough to
//!   load the SuiteSparse files the paper uses when they are available.

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod adjacency;
pub mod builder;
pub mod coloring;
pub mod csr;
pub mod holey;
pub mod io;
pub mod props;
pub mod reorder;
pub mod subgraph;
pub mod traversal;

pub use adjacency::AdjacencyList;
pub use builder::GraphBuilder;
pub use csr::{CsrGraph, EdgeScan};
pub use holey::{AggregateScratch, GroupedCsr, HoleyCsrBuilder};
pub use reorder::{Relabeling, VertexOrdering};

/// Vertex identifier. The paper uses 32-bit ids (§5.1.2).
pub type VertexId = u32;
/// Stored edge weight. The paper stores 32-bit floats and accumulates in
/// 64-bit floats (§5.1.2).
pub type EdgeWeight = f32;
