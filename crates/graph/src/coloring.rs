//! Greedy parallel graph coloring (Jones–Plassmann style).
//!
//! The paper's related work lists "ordering vertices via graph coloring"
//! (Grappolo, Halappanavar et al. \[11\]) among the parallelization
//! techniques for Louvain-family algorithms: vertices of one color form
//! an independent set, so they can all move *simultaneously without
//! races*, making the parallel algorithm deterministic. This module
//! provides the coloring; the color-synchronous local-moving variant in
//! `gve-leiden` consumes it.
//!
//! The implementation is Jones–Plassmann with random priorities: a
//! vertex is colored in the round where its priority is a local maximum
//! among uncolored neighbours, taking the smallest color unused by its
//! colored neighbourhood. Deterministic for a fixed seed.

use crate::{CsrGraph, VertexId};
use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

/// A proper vertex coloring: `color[v]` differs from every neighbour's
/// color; ids are dense `0..num_colors`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coloring {
    /// Color of each vertex.
    pub colors: Vec<VertexId>,
    /// Number of colors used.
    pub num_colors: usize,
}

impl Coloring {
    /// Vertices grouped by color, in vertex order within each color.
    pub fn classes(&self) -> Vec<Vec<VertexId>> {
        let mut classes = vec![Vec::new(); self.num_colors];
        for (v, &c) in self.colors.iter().enumerate() {
            classes[c as usize].push(v as VertexId);
        }
        classes
    }

    /// Checks that the coloring is proper for `graph`.
    pub fn validate(&self, graph: &CsrGraph) -> Result<(), String> {
        if self.colors.len() != graph.num_vertices() {
            return Err("coloring length mismatch".into());
        }
        for u in 0..graph.num_vertices() as VertexId {
            for &v in graph.neighbors(u) {
                if u != v && self.colors[u as usize] == self.colors[v as usize] {
                    return Err(format!(
                        "vertices {u} and {v} share color {}",
                        self.colors[u as usize]
                    ));
                }
            }
        }
        Ok(())
    }
}

const UNCOLORED: u32 = u32::MAX;

/// Mixes a seed and vertex id into a stable random priority.
#[inline]
fn priority(seed: u64, v: VertexId) -> u64 {
    let mut z =
        (seed ^ (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    // Tie-break by id so priorities are a strict total order.
    ((z ^ (z >> 31)) << 32) | v as u64
}

/// Colors the graph with Jones–Plassmann rounds. Deterministic for a
/// fixed seed, independent of thread count.
pub fn jones_plassmann(graph: &CsrGraph, seed: u64) -> Coloring {
    let n = graph.num_vertices();
    let colors: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNCOLORED)).collect();
    let remaining = AtomicBool::new(n > 0);
    // Relaxed atomics throughout: every read happens on the far side of
    // a rayon join from the writes it observes (round snapshots), so the
    // joins carry the ordering; within a round, same-round-colored
    // vertices are never adjacent, so color cells do not race.
    while remaining.swap(false, Ordering::Relaxed) {
        // Freeze the round's uncolored set. Decisions are made against
        // this snapshot only, which makes the outcome independent of
        // scheduling: two vertices colored in the same round are never
        // adjacent (strict priority order on the frozen set), so the
        // palette each reads from earlier rounds is stable. (Relaxed
        // loads: the prior round's join published the colors.)
        let uncolored: Vec<bool> = colors
            .par_iter()
            .map(|c| c.load(Ordering::Relaxed) == UNCOLORED)
            .collect();
        (0..n as VertexId).into_par_iter().for_each(|u| {
            if !uncolored[u as usize] {
                return;
            }
            let my_priority = priority(seed, u);
            // Color u only if it is the priority maximum among its
            // snapshot-uncolored neighbours.
            let mut is_max = true;
            for &v in graph.neighbors(u) {
                if v != u && uncolored[v as usize] && priority(seed, v) > my_priority {
                    is_max = false;
                    break;
                }
            }
            if !is_max {
                // Relaxed: flag re-read after the round's join.
                remaining.store(true, Ordering::Relaxed);
                return;
            }
            // Smallest color unused by previously colored neighbours.
            // Degrees bound the palette, so degree+1 slots suffice.
            let degree = graph.degree(u);
            let mut used = vec![false; degree + 1];
            for &v in graph.neighbors(u) {
                if v != u && !uncolored[v as usize] {
                    // Relaxed: snapshot-colored neighbors were written
                    // before the previous join.
                    let c = colors[v as usize].load(Ordering::Relaxed);
                    if (c as usize) < used.len() {
                        used[c as usize] = true;
                    }
                }
            }
            // Relaxed: no same-round reader of `u` (see loop header).
            let my_color = used.iter().position(|&b| !b).unwrap_or(degree) as u32;
            colors[u as usize].store(my_color, Ordering::Relaxed);
        });
    }
    // Relaxed: post-join read-back.
    let raw: Vec<VertexId> = colors.iter().map(|c| c.load(Ordering::Relaxed)).collect();
    let num_colors = raw.iter().map(|&c| c as usize + 1).max().unwrap_or(0);
    Coloring {
        colors: raw,
        num_colors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn colors_a_triangle_with_three() {
        let g = GraphBuilder::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)]);
        let coloring = jones_plassmann(&g, 1);
        coloring.validate(&g).unwrap();
        assert_eq!(coloring.num_colors, 3);
    }

    #[test]
    fn bipartite_needs_two() {
        // Even cycle: chromatic number 2; greedy may use at most Δ+1 = 3
        // but JP on a cycle usually finds 2–3.
        let g = GraphBuilder::from_edges(
            6,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 3, 1.0),
                (3, 4, 1.0),
                (4, 5, 1.0),
                (5, 0, 1.0),
            ],
        );
        let coloring = jones_plassmann(&g, 3);
        coloring.validate(&g).unwrap();
        assert!(coloring.num_colors <= 3);
    }

    #[test]
    fn proper_on_random_graphs_and_bounded_by_degree() {
        for seed in [1u64, 2, 3] {
            let mut edges = Vec::new();
            let mut state = seed;
            for _ in 0..2000 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                edges.push((
                    ((state >> 16) % 500) as u32,
                    ((state >> 40) % 500) as u32,
                    1.0,
                ));
            }
            let g = GraphBuilder::from_edges(500, &edges);
            let coloring = jones_plassmann(&g, seed);
            coloring.validate(&g).unwrap();
            let max_degree = (0..500u32).map(|u| g.degree(u)).max().unwrap();
            assert!(
                coloring.num_colors <= max_degree + 1,
                "{} colors for max degree {max_degree}",
                coloring.num_colors
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = GraphBuilder::from_edges(
            100,
            &(0..300u32)
                .map(|i| ((i * 13) % 100, (i * 29) % 100, 1.0))
                .collect::<Vec<_>>(),
        );
        assert_eq!(jones_plassmann(&g, 5), jones_plassmann(&g, 5));
    }

    #[test]
    fn classes_partition_the_vertices() {
        let g = GraphBuilder::from_edges(5, &[(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0)]);
        let coloring = jones_plassmann(&g, 0);
        let classes = coloring.classes();
        assert_eq!(classes.len(), coloring.num_colors);
        let total: usize = classes.iter().map(Vec::len).sum();
        assert_eq!(total, 5);
        // Each class is an independent set.
        for class in &classes {
            for &u in class {
                for &v in class {
                    assert!(u == v || !g.has_arc(u, v));
                }
            }
        }
    }

    #[test]
    fn handles_self_loops_and_isolated_vertices() {
        let g = GraphBuilder::from_edges(4, &[(0, 0, 1.0), (1, 2, 1.0)]);
        let coloring = jones_plassmann(&g, 9);
        coloring.validate(&g).unwrap();
        assert_eq!(coloring.colors.len(), 4);
    }

    #[test]
    fn empty_graph() {
        let coloring = jones_plassmann(&CsrGraph::empty(0), 0);
        assert_eq!(coloring.num_colors, 0);
        assert!(coloring.colors.is_empty());
    }
}
