//! Mutable 2D-vector adjacency representation.
//!
//! The "Weighted 2D-vector-based" input graph of Figure 5: a
//! `Vec<Vec<(vertex, weight)>>`. Used for incremental construction in
//! tests and examples, then frozen into a [`CsrGraph`].

use crate::{CsrGraph, EdgeWeight, VertexId};

/// Adjacency-list graph, convertible to and from [`CsrGraph`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AdjacencyList {
    rows: Vec<Vec<(VertexId, EdgeWeight)>>,
}

impl AdjacencyList {
    /// Creates a graph with `n` isolated vertices.
    pub fn new(n: usize) -> Self {
        Self {
            rows: vec![Vec::new(); n],
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.rows.len()
    }

    /// Number of stored arcs.
    pub fn num_arcs(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// Appends vertices until the graph has at least `n` of them.
    pub fn ensure_vertices(&mut self, n: usize) {
        if n > self.rows.len() {
            self.rows.resize(n, Vec::new());
        }
    }

    /// Adds a directed arc `u → v` with weight `w`, growing the vertex set
    /// as needed.
    pub fn add_arc(&mut self, u: VertexId, v: VertexId, w: EdgeWeight) {
        self.ensure_vertices((u.max(v) as usize) + 1);
        self.rows[u as usize].push((v, w));
    }

    /// Adds an undirected edge (both arcs). A self-loop is stored as a
    /// single arc, matching the CSR convention.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId, w: EdgeWeight) {
        self.add_arc(u, v, w);
        if u != v {
            self.rows[v as usize].push((u, w));
        }
    }

    /// Neighbor list of vertex `u`.
    #[inline]
    pub fn edges(&self, u: VertexId) -> &[(VertexId, EdgeWeight)] {
        &self.rows[u as usize]
    }

    /// Freezes into an immutable CSR graph.
    pub fn to_csr(&self) -> CsrGraph {
        let n = self.rows.len();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut running = 0u64;
        for row in &self.rows {
            offsets.push(running);
            running += row.len() as u64;
        }
        offsets.push(running);
        let mut targets = Vec::with_capacity(running as usize);
        let mut weights = Vec::with_capacity(running as usize);
        for row in &self.rows {
            for &(v, w) in row {
                targets.push(v);
                weights.push(w);
            }
        }
        CsrGraph::from_raw(offsets, targets, weights)
    }

    /// Thaws a CSR graph back into the mutable form.
    pub fn from_csr(graph: &CsrGraph) -> Self {
        let mut rows = Vec::with_capacity(graph.num_vertices());
        for u in 0..graph.num_vertices() as VertexId {
            rows.push(graph.edges(u).collect());
        }
        Self { rows }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_edge_creates_both_arcs() {
        let mut g = AdjacencyList::new(0);
        g.add_edge(0, 2, 1.5);
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.edges(0), &[(2, 1.5)]);
        assert_eq!(g.edges(2), &[(0, 1.5)]);
        assert_eq!(g.edges(1), &[]);
        assert_eq!(g.num_arcs(), 2);
    }

    #[test]
    fn self_loop_stored_once() {
        let mut g = AdjacencyList::new(1);
        g.add_edge(0, 0, 2.0);
        assert_eq!(g.edges(0), &[(0, 2.0)]);
        assert_eq!(g.num_arcs(), 1);
    }

    #[test]
    fn csr_roundtrip() {
        let mut g = AdjacencyList::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 2.0);
        g.add_edge(2, 3, 3.0);
        g.add_edge(0, 3, 4.0);
        let csr = g.to_csr();
        assert_eq!(csr.num_vertices(), 4);
        assert_eq!(csr.num_arcs(), 8);
        assert!(csr.is_symmetric());
        assert_eq!(AdjacencyList::from_csr(&csr), g);
    }

    #[test]
    fn ensure_vertices_grows_only() {
        let mut g = AdjacencyList::new(2);
        g.ensure_vertices(5);
        assert_eq!(g.num_vertices(), 5);
        g.ensure_vertices(1);
        assert_eq!(g.num_vertices(), 5);
    }

    #[test]
    fn empty_to_csr() {
        let g = AdjacencyList::new(3);
        let csr = g.to_csr();
        assert_eq!(csr.num_vertices(), 3);
        assert_eq!(csr.num_arcs(), 0);
    }
}
