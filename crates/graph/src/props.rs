//! Derived per-vertex and whole-graph properties.
//!
//! Every pass of the Leiden algorithm starts by computing the total edge
//! weight of each vertex (`K'`, Algorithm 1 line 4); the modularity
//! formulas need the graph's total weight `m`. Conventions used across
//! the workspace:
//!
//! * an undirected edge is stored as two directed arcs; a self-loop as
//!   one arc;
//! * `K_u` is the sum of arc weights out of `u` (self-loop counted once);
//! * `2m = Σ_u K_u` = [`crate::CsrGraph::total_arc_weight`].
//!
//! These conventions are self-consistent under aggregation: collapsing a
//! community to a super-vertex with a self-loop of weight `σ_c` preserves
//! both `2m` and the modularity of the induced partition.

use crate::{CsrGraph, VertexId};
use rayon::prelude::*;

/// Computes the weighted degree `K_u` of every vertex in parallel
/// (`vertexWeights(G')` of Algorithm 1).
pub fn vertex_weights(graph: &CsrGraph) -> Vec<f64> {
    (0..graph.num_vertices() as VertexId)
        .into_par_iter()
        .map(|u| graph.weighted_degree(u))
        .collect()
}

/// The paper's `m`: half the total arc weight.
pub fn total_edge_weight(graph: &CsrGraph) -> f64 {
    graph.total_arc_weight() / 2.0
}

/// Summary statistics mirroring the columns of Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of vertices `|V|`.
    pub vertices: usize,
    /// Number of directed arcs `|E|` (reverse edges included).
    pub arcs: usize,
    /// Average degree `D_avg = |E| / |V|`.
    pub avg_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
    /// Number of self-loop arcs.
    pub self_loops: usize,
    /// Total edge weight `m`.
    pub total_weight: f64,
}

/// Computes [`GraphStats`] in one parallel sweep.
pub fn stats(graph: &CsrGraph) -> GraphStats {
    let n = graph.num_vertices();
    let (max_degree, self_loops) = (0..n as VertexId)
        .into_par_iter()
        .map(|u| {
            let loops = graph.neighbors(u).iter().filter(|&&v| v == u).count();
            (graph.degree(u), loops)
        })
        .reduce(
            || (0usize, 0usize),
            |(d1, l1), (d2, l2)| (d1.max(d2), l1 + l2),
        );
    GraphStats {
        vertices: n,
        arcs: graph.num_arcs(),
        avg_degree: if n == 0 {
            0.0
        } else {
            graph.num_arcs() as f64 / n as f64
        },
        max_degree,
        self_loops,
        total_weight: total_edge_weight(graph),
    }
}

/// Log-binned degree histogram: bin `i` counts vertices whose degree
/// falls in `[2^i, 2^(i+1))`; bin 0 additionally holds degree-0 and
/// degree-1 vertices. The standard view of a power-law distribution.
pub fn degree_histogram(graph: &CsrGraph) -> Vec<usize> {
    let mut bins: Vec<usize> = Vec::new();
    for u in 0..graph.num_vertices() as VertexId {
        let degree = graph.degree(u);
        let bin = if degree <= 1 {
            0
        } else {
            (usize::BITS - 1 - degree.leading_zeros()) as usize
        };
        if bin >= bins.len() {
            bins.resize(bin + 1, 0);
        }
        bins[bin] += 1;
    }
    bins
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn triangle_plus_loop() -> CsrGraph {
        GraphBuilder::from_edges(3, &[(0, 1, 1.0), (1, 2, 2.0), (2, 0, 3.0), (0, 0, 4.0)])
    }

    #[test]
    fn vertex_weights_count_loops_once() {
        let g = triangle_plus_loop();
        let k = vertex_weights(&g);
        assert_eq!(k, vec![1.0 + 3.0 + 4.0, 1.0 + 2.0, 2.0 + 3.0]);
    }

    #[test]
    fn total_weight_is_half_arc_weight() {
        let g = triangle_plus_loop();
        // Arcs: 2·(1+2+3) + 4 = 16 → m = 8.
        assert_eq!(total_edge_weight(&g), 8.0);
        assert_eq!(vertex_weights(&g).iter().sum::<f64>(), 16.0);
    }

    #[test]
    fn stats_columns() {
        let g = triangle_plus_loop();
        let s = stats(&g);
        assert_eq!(s.vertices, 3);
        assert_eq!(s.arcs, 7);
        assert_eq!(s.max_degree, 3);
        assert_eq!(s.self_loops, 1);
        assert!((s.avg_degree - 7.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.total_weight, 8.0);
    }

    #[test]
    fn degree_histogram_bins_by_log2() {
        // Degrees: 0 (isolated), 1, 2, 3, 4, 8.
        let g = GraphBuilder::from_edges(
            10,
            &[
                (1, 2, 1.0),
                (2, 3, 1.0),
                (3, 4, 1.0),
                (3, 5, 1.0),
                (4, 5, 1.0),
                (4, 6, 1.0),
                (4, 7, 1.0),
            ],
        );
        let bins = degree_histogram(&g);
        // bin 0: degrees 0..=1 → vertices 0, 8, 9, 1, 6, 7 = 6
        assert_eq!(bins[0], 6);
        // bin 1: degrees 2..=3 → vertices 2, 5, 3 = 3
        assert_eq!(bins[1], 3);
        // bin 2: degrees 4..=7 → vertex 4
        assert_eq!(bins[2], 1);
        assert_eq!(bins.iter().sum::<usize>(), 10);
    }

    #[test]
    fn degree_histogram_of_power_law_graph_decays() {
        let mut edges = Vec::new();
        // A star plus a ring: strong degree skew.
        for v in 1..200u32 {
            edges.push((0, v, 1.0));
        }
        for v in 1..199u32 {
            edges.push((v, v + 1, 1.0));
        }
        let g = GraphBuilder::from_edges(200, &edges);
        let bins = degree_histogram(&g);
        assert_eq!(*bins.last().unwrap(), 1, "hub alone in the top bin");
        assert!(bins[1] > 100, "bulk at low degree");
    }

    #[test]
    fn stats_empty_graph() {
        let g = CsrGraph::empty(0);
        let s = stats(&g);
        assert_eq!(s.vertices, 0);
        assert_eq!(s.avg_degree, 0.0);
        assert_eq!(s.max_degree, 0);
    }
}
