//! Graph file formats: Matrix Market and plain edge lists.
//!
//! The paper's datasets come from the SuiteSparse Matrix Collection in
//! Matrix Market coordinate format; SNAP graphs ship as whitespace edge
//! lists. Both readers normalize through [`GraphBuilder`], applying the
//! paper's preprocessing (symmetrize, default weight 1).

pub mod binary;
pub mod dot;

use crate::{CsrGraph, EdgeWeight, GraphBuilder, VertexId};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors produced by the graph readers.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structured parse failure with line number (1-based) and message.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human-readable description.
        message: String,
    },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

fn parse_err(line: usize, message: impl Into<String>) -> IoError {
    IoError::Parse {
        line,
        message: message.into(),
    }
}

/// Reads a whitespace-separated edge list: one `u v [w]` per line;
/// `#` and `%` lines are comments. Vertex ids are 0-based.
pub fn read_edge_list<R: Read>(reader: R) -> Result<CsrGraph, IoError> {
    let mut builder = GraphBuilder::new();
    let reader = BufReader::new(reader);
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let u: VertexId = parts
            .next()
            .ok_or_else(|| parse_err(lineno + 1, "missing source"))?
            .parse()
            .map_err(|e| parse_err(lineno + 1, format!("bad source: {e}")))?;
        let v: VertexId = parts
            .next()
            .ok_or_else(|| parse_err(lineno + 1, "missing target"))?
            .parse()
            .map_err(|e| parse_err(lineno + 1, format!("bad target: {e}")))?;
        let w: EdgeWeight = match parts.next() {
            Some(tok) => tok
                .parse()
                .map_err(|e| parse_err(lineno + 1, format!("bad weight: {e}")))?,
            None => 1.0,
        };
        builder.add_edge(u, v, w);
    }
    Ok(builder.build())
}

/// Writes each undirected edge once (`u <= v`) as `u v w` lines.
pub fn write_edge_list<W: Write>(graph: &CsrGraph, writer: W) -> io::Result<()> {
    let mut out = BufWriter::new(writer);
    for (u, v, w) in graph.arcs() {
        if u <= v {
            writeln!(out, "{u} {v} {w}")?;
        }
    }
    out.flush()
}

/// Reads a Matrix Market `coordinate` file as an undirected weighted
/// graph.
///
/// Supports the `real`, `integer` and `pattern` fields and all symmetry
/// kinds (`general`, `symmetric`, `skew-symmetric` read as absolute
/// weights, `hermitian` rejected). Entries are 1-based per the format.
pub fn read_matrix_market<R: Read>(reader: R) -> Result<CsrGraph, IoError> {
    let mut lines = BufReader::new(reader).lines().enumerate();

    // Header.
    let (_, header) = lines
        .next()
        .ok_or_else(|| parse_err(1, "empty file"))?
        .1
        .map(|h| (0, h))
        .map_err(IoError::Io)?;
    let header_tokens: Vec<String> = header
        .split_whitespace()
        .map(|t| t.to_ascii_lowercase())
        .collect();
    if header_tokens.len() < 5
        || header_tokens[0] != "%%matrixmarket"
        || header_tokens[1] != "matrix"
    {
        return Err(parse_err(1, "not a MatrixMarket matrix header"));
    }
    if header_tokens[2] != "coordinate" {
        return Err(parse_err(1, "only coordinate format is supported"));
    }
    let field = header_tokens[3].as_str();
    let pattern = match field {
        "real" | "integer" => false,
        "pattern" => true,
        other => return Err(parse_err(1, format!("unsupported field type '{other}'"))),
    };
    match header_tokens[4].as_str() {
        "general" | "symmetric" | "skew-symmetric" => {}
        other => return Err(parse_err(1, format!("unsupported symmetry '{other}'"))),
    }

    // Dimensions line (first non-comment).
    let mut dims: Option<(usize, usize, usize)> = None;
    let mut builder = GraphBuilder::new();
    for (lineno, line) in lines {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        if dims.is_none() {
            let rows: usize = parts
                .next()
                .ok_or_else(|| parse_err(lineno + 1, "missing rows"))?
                .parse()
                .map_err(|e| parse_err(lineno + 1, format!("bad rows: {e}")))?;
            let cols: usize = parts
                .next()
                .ok_or_else(|| parse_err(lineno + 1, "missing cols"))?
                .parse()
                .map_err(|e| parse_err(lineno + 1, format!("bad cols: {e}")))?;
            let nnz: usize = parts
                .next()
                .ok_or_else(|| parse_err(lineno + 1, "missing nnz"))?
                .parse()
                .map_err(|e| parse_err(lineno + 1, format!("bad nnz: {e}")))?;
            dims = Some((rows, cols, nnz));
            builder = GraphBuilder::new().with_vertices(rows.max(cols));
            continue;
        }
        let u: u64 = parts
            .next()
            .ok_or_else(|| parse_err(lineno + 1, "missing row index"))?
            .parse()
            .map_err(|e| parse_err(lineno + 1, format!("bad row index: {e}")))?;
        let v: u64 = parts
            .next()
            .ok_or_else(|| parse_err(lineno + 1, "missing col index"))?
            .parse()
            .map_err(|e| parse_err(lineno + 1, format!("bad col index: {e}")))?;
        if u == 0 || v == 0 {
            return Err(parse_err(lineno + 1, "MatrixMarket indices are 1-based"));
        }
        let w: EdgeWeight = if pattern {
            1.0
        } else {
            let raw: f64 = parts
                .next()
                .ok_or_else(|| parse_err(lineno + 1, "missing value"))?
                .parse()
                .map_err(|e| parse_err(lineno + 1, format!("bad value: {e}")))?;
            // Community detection needs positive weights; SuiteSparse
            // matrices may carry signs — the paper uses a default of 1,
            // we preserve magnitude.
            raw.abs() as EdgeWeight
        };
        builder.add_edge((u - 1) as VertexId, (v - 1) as VertexId, w);
    }
    let (rows, cols, _) = dims.ok_or_else(|| parse_err(2, "missing dimensions line"))?;
    if rows != cols {
        // Rectangular matrices become bipartite-ish graphs over
        // max(rows, cols) vertices; accepted but unusual for this crate.
    }
    Ok(builder.build())
}

/// Writes a graph as a `coordinate real symmetric` Matrix Market file,
/// emitting each undirected edge once with 1-based lower-triangular
/// indices.
pub fn write_matrix_market<W: Write>(graph: &CsrGraph, writer: W) -> io::Result<()> {
    let mut out = BufWriter::new(writer);
    writeln!(out, "%%MatrixMarket matrix coordinate real symmetric")?;
    writeln!(out, "% written by gve-graph")?;
    let nnz = graph.arcs().filter(|&(u, v, _)| u >= v).count();
    writeln!(
        out,
        "{} {} {}",
        graph.num_vertices(),
        graph.num_vertices(),
        nnz
    )?;
    for (u, v, w) in graph.arcs() {
        if u >= v {
            writeln!(out, "{} {} {}", u + 1, v + 1, w)?;
        }
    }
    out.flush()
}

/// Loads a graph from a path, dispatching on extension: `.mtx` →
/// Matrix Market, `.gveg` → binary snapshot, anything else → edge list.
pub fn read_path(path: impl AsRef<Path>) -> Result<CsrGraph, IoError> {
    let path = path.as_ref();
    let file = std::fs::File::open(path)?;
    match path.extension().and_then(|e| e.to_str()) {
        Some("mtx") => read_matrix_market(file),
        Some("gveg") => binary::read_binary(file),
        _ => read_edge_list(file),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_list_roundtrip() {
        let input = "# comment\n0 1\n1 2 2.5\n\n% also comment\n2 0 1\n";
        let g = read_edge_list(input.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_arcs(), 6);
        assert_eq!(g.edges(1).collect::<Vec<_>>(), vec![(0, 1.0), (2, 2.5)]);

        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn edge_list_rejects_garbage() {
        let err = read_edge_list("0 x\n".as_bytes()).unwrap_err();
        match err {
            IoError::Parse { line, .. } => assert_eq!(line, 1),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn edge_list_missing_target() {
        assert!(read_edge_list("42\n".as_bytes()).is_err());
    }

    #[test]
    fn matrix_market_symmetric_real() {
        let input = "\
%%MatrixMarket matrix coordinate real symmetric
% a triangle
3 3 3
2 1 1.0
3 1 2.0
3 2 3.0
";
        let g = read_matrix_market(input.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_arcs(), 6);
        assert_eq!(g.edges(0).collect::<Vec<_>>(), vec![(1, 1.0), (2, 2.0)]);
    }

    #[test]
    fn matrix_market_pattern_general_dedups() {
        // Directed pattern entries both ways collapse to one undirected
        // edge with summed weight (matches the paper: reverse edges are
        // added, duplicates merged).
        let input = "\
%%MatrixMarket matrix coordinate pattern general
2 2 2
1 2
2 1
";
        let g = read_matrix_market(input.as_bytes()).unwrap();
        assert_eq!(g.num_arcs(), 2);
        assert_eq!(g.edges(0).collect::<Vec<_>>(), vec![(1, 2.0)]);
    }

    #[test]
    fn matrix_market_rejects_array_format() {
        let input = "%%MatrixMarket matrix array real general\n2 2\n1.0\n";
        assert!(read_matrix_market(input.as_bytes()).is_err());
    }

    #[test]
    fn matrix_market_rejects_zero_index() {
        let input = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n0 1\n";
        assert!(read_matrix_market(input.as_bytes()).is_err());
    }

    #[test]
    fn matrix_market_roundtrip() {
        let g = GraphBuilder::from_edges(4, &[(0, 1, 1.0), (1, 2, 2.0), (2, 3, 1.5), (0, 0, 4.0)]);
        let mut buf = Vec::new();
        write_matrix_market(&g, &mut buf).unwrap();
        let g2 = read_matrix_market(buf.as_slice()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn read_path_dispatches_on_extension() {
        let dir = std::env::temp_dir().join("gve-graph-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let g = GraphBuilder::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]);

        let mtx = dir.join("g.mtx");
        write_matrix_market(&g, std::fs::File::create(&mtx).unwrap()).unwrap();
        assert_eq!(read_path(&mtx).unwrap(), g);

        let txt = dir.join("g.txt");
        write_edge_list(&g, std::fs::File::create(&txt).unwrap()).unwrap();
        assert_eq!(read_path(&txt).unwrap(), g);
    }

    #[test]
    fn empty_header_is_error() {
        assert!(read_matrix_market("".as_bytes()).is_err());
        assert!(read_matrix_market("%%MatrixMarket\n".as_bytes()).is_err());
    }
}
