//! Holey CSR and group-by CSR — the aggregation-phase data structures.
//!
//! Algorithm 4 of the paper builds two CSRs per pass:
//!
//! 1. `G'_{C'}` — *community vertices*: for each community, the list of
//!    its member vertices. Counts are exact, so the CSR is dense
//!    ([`GroupedCsr`]).
//! 2. `G''` — the *super-vertex graph*: per-community degree is
//!    **overestimated** by the community's total degree, the offsets are
//!    prefix-summed over the overestimate, and edges are written into the
//!    gap-containing ("holey") arrays as they are discovered
//!    ([`HoleyCsrBuilder`]). Avoiding an exact counting pass is the
//!    optimization; the holes are squeezed out when freezing to
//!    [`CsrGraph`].

use crate::{CsrGraph, EdgeWeight, VertexId};
use gve_prim::scan::parallel_offsets_from_counts;
use gve_prim::SharedSlice;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

/// Over-allocated CSR filled concurrently with atomic slot claiming.
#[derive(Debug)]
pub struct HoleyCsrBuilder {
    offsets: Vec<u64>,
    fill: Vec<AtomicU32>,
    targets: Vec<AtomicU32>,
    /// f32 weight bit patterns, written once per claimed slot.
    weights: Vec<AtomicU32>,
}

impl HoleyCsrBuilder {
    /// Creates a builder whose vertex `u` can hold up to `capacities[u]`
    /// arcs.
    pub fn new(capacities: &[u64]) -> Self {
        let offsets = parallel_offsets_from_counts(capacities);
        let total = *offsets.last().unwrap() as usize;
        Self {
            offsets,
            fill: (0..capacities.len()).map(|_| AtomicU32::new(0)).collect(),
            targets: (0..total).map(|_| AtomicU32::new(0)).collect(),
            weights: (0..total).map(|_| AtomicU32::new(0)).collect(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.fill.len()
    }

    /// Arcs added to vertex `u` so far.
    #[inline]
    pub fn degree(&self, u: VertexId) -> usize {
        // Relaxed: a monotone tally; exact snapshots only matter after
        // the building phase's rayon join.
        self.fill[u as usize].load(Ordering::Relaxed) as usize
    }

    /// Adds arc `u → v` with weight `w`. Thread-safe; slots are claimed
    /// with a `fetch_add` on the per-vertex cursor.
    ///
    /// # Panics
    /// Panics when vertex `u`'s capacity is exceeded (a bug in the degree
    /// overestimate, never expected in correct use).
    #[inline]
    pub fn add_arc(&self, u: VertexId, v: VertexId, w: EdgeWeight) {
        let u = u as usize;
        // Relaxed slot claim: fetch_add alone guarantees the claimed
        // index is unique; the payload stores below go to that unique
        // slot, and readers only run after the building join.
        let slot = self.fill[u].fetch_add(1, Ordering::Relaxed) as u64;
        let lo = self.offsets[u];
        let hi = self.offsets[u + 1];
        assert!(
            lo + slot < hi,
            "holey CSR capacity exceeded for vertex {u}: cap {}",
            hi - lo
        );
        let index = (lo + slot) as usize;
        // Relaxed payload stores into the uniquely claimed slot; readers
        // only run after the building phase's join.
        self.targets[index].store(v, Ordering::Relaxed);
        self.weights[index].store(w.to_bits(), Ordering::Relaxed);
    }

    /// Squeezes the holes out, producing a dense [`CsrGraph`].
    pub fn into_csr(self) -> CsrGraph {
        let n = self.fill.len();
        // Relaxed loads below: `self` is owned here, so every add_arc
        // store is already ordered before this call.
        let counts: Vec<u64> = self
            .fill
            .iter()
            .map(|f| f.load(Ordering::Relaxed) as u64)
            .collect();
        let dense_offsets = parallel_offsets_from_counts(&counts);
        let total = *dense_offsets.last().unwrap() as usize;
        let mut targets = vec![0 as VertexId; total];
        let mut weights = vec![0.0 as EdgeWeight; total];
        {
            let t_out = SharedSlice::new(&mut targets);
            let w_out = SharedSlice::new(&mut weights);
            let src_t = &self.targets;
            let src_w = &self.weights;
            let holey_offsets = &self.offsets;
            (0..n).into_par_iter().for_each(|u| {
                let src = holey_offsets[u] as usize;
                let dst = dense_offsets[u] as usize;
                let len = counts[u] as usize;
                for k in 0..len {
                    // SAFETY: destination ranges [dst, dst+len) are
                    // disjoint across vertices by construction of the
                    // prefix sum. (Relaxed source loads: the arcs were
                    // published by the pre-into_csr ownership transfer.)
                    unsafe {
                        t_out.write(dst + k, src_t[src + k].load(Ordering::Relaxed));
                        w_out.write(
                            dst + k,
                            EdgeWeight::from_bits(src_w[src + k].load(Ordering::Relaxed)),
                        );
                    }
                }
            });
        }
        CsrGraph::from_raw(dense_offsets, targets, weights)
    }
}

/// Exact-size CSR mapping group id → member elements, built in parallel.
///
/// This is the community-vertices structure `G'_{C'}`: `group_by` counts
/// members per group, prefix-sums the counts into offsets, then scatters
/// members with atomic per-group cursors (Algorithm 4, lines 3–6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupedCsr {
    offsets: Vec<u64>,
    members: Vec<VertexId>,
}

impl GroupedCsr {
    /// Groups elements `0..keys.len()` by `keys[i] ∈ 0..num_groups`.
    pub fn group_by(keys: &[VertexId], num_groups: usize) -> Self {
        // Count members per group. Relaxed throughout the counting and
        // scatter steps: counters are tallies/slot cursors ordered by
        // the rayon joins between the steps.
        let counts: Vec<AtomicU32> = (0..num_groups).map(|_| AtomicU32::new(0)).collect();
        keys.par_iter().for_each(|&k| {
            counts[k as usize].fetch_add(1, Ordering::Relaxed);
        });
        let counts_u64: Vec<u64> = counts
            .iter()
            // Relaxed: post-join read-back, then reset — see above.
            .map(|c| c.load(Ordering::Relaxed) as u64)
            .collect();
        let offsets = parallel_offsets_from_counts(&counts_u64);
        // Scatter members; reuse `counts` as cursors.
        for c in &counts {
            c.store(0, Ordering::Relaxed);
        }
        let total = *offsets.last().unwrap() as usize;
        let mut members = vec![0 as VertexId; total];
        {
            let out = SharedSlice::new(&mut members);
            let offsets = &offsets;
            let counts = &counts;
            (0..keys.len()).into_par_iter().for_each(|i| {
                let g = keys[i] as usize;
                // Relaxed slot claim: uniqueness comes from fetch_add.
                let slot = counts[g].fetch_add(1, Ordering::Relaxed) as u64;
                // SAFETY: (group base + claimed slot) pairs are unique.
                unsafe { out.write((offsets[g] + slot) as usize, i as VertexId) };
            });
        }
        Self { offsets, members }
    }

    /// Number of groups.
    #[inline]
    pub fn num_groups(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total members across all groups.
    #[inline]
    pub fn num_members(&self) -> usize {
        self.members.len()
    }

    /// Members of group `g`.
    #[inline]
    pub fn members(&self, g: VertexId) -> &[VertexId] {
        let g = g as usize;
        &self.members[self.offsets[g] as usize..self.offsets[g + 1] as usize]
    }

    /// Size of group `g`.
    #[inline]
    pub fn group_len(&self, g: VertexId) -> usize {
        self.members(g).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn holey_roundtrip_with_holes() {
        // Capacities larger than actual arcs: 0 gets cap 4 but 2 arcs.
        let b = HoleyCsrBuilder::new(&[4, 3, 2]);
        b.add_arc(0, 1, 1.0);
        b.add_arc(0, 2, 2.0);
        b.add_arc(1, 0, 1.0);
        b.add_arc(2, 0, 2.0);
        assert_eq!(b.degree(0), 2);
        assert_eq!(b.num_vertices(), 3);
        let g = b.into_csr();
        assert_eq!(g.num_arcs(), 4);
        let mut e0: Vec<_> = g.edges(0).collect();
        e0.sort_by_key(|&(v, _)| v);
        assert_eq!(e0, vec![(1, 1.0), (2, 2.0)]);
        assert_eq!(g.edges(1).collect::<Vec<_>>(), vec![(0, 1.0)]);
    }

    #[test]
    fn holey_zero_capacity_vertices() {
        let b = HoleyCsrBuilder::new(&[0, 2, 0]);
        b.add_arc(1, 0, 1.0);
        let g = b.into_csr();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.degree(0), 0);
        assert_eq!(g.degree(1), 1);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    #[should_panic(expected = "capacity exceeded")]
    fn holey_overflow_panics() {
        let b = HoleyCsrBuilder::new(&[1]);
        b.add_arc(0, 0, 1.0);
        b.add_arc(0, 0, 1.0);
    }

    #[test]
    fn holey_concurrent_fill() {
        use rayon::prelude::*;
        let n = 100u32;
        let per = 50u32;
        let caps = vec![per as u64; n as usize];
        let b = HoleyCsrBuilder::new(&caps);
        (0..n * per).into_par_iter().for_each(|i| {
            b.add_arc(i % n, i / n, 1.0);
        });
        let g = b.into_csr();
        assert_eq!(g.num_arcs(), (n * per) as usize);
        for u in 0..n {
            assert_eq!(g.degree(u), per as usize);
            let mut nb: Vec<_> = g.neighbors(u).to_vec();
            nb.sort_unstable();
            assert_eq!(nb, (0..per).collect::<Vec<_>>());
        }
    }

    #[test]
    fn group_by_basic() {
        let keys = vec![1, 0, 1, 2, 1];
        let g = GroupedCsr::group_by(&keys, 3);
        assert_eq!(g.num_groups(), 3);
        assert_eq!(g.num_members(), 5);
        assert_eq!(g.members(0), &[1]);
        let mut g1 = g.members(1).to_vec();
        g1.sort_unstable();
        assert_eq!(g1, vec![0, 2, 4]);
        assert_eq!(g.members(2), &[3]);
        assert_eq!(g.group_len(1), 3);
    }

    #[test]
    fn group_by_empty_groups() {
        let keys = vec![2, 2];
        let g = GroupedCsr::group_by(&keys, 4);
        assert_eq!(g.group_len(0), 0);
        assert_eq!(g.group_len(1), 0);
        assert_eq!(g.group_len(2), 2);
        assert_eq!(g.group_len(3), 0);
    }

    #[test]
    fn group_by_no_elements() {
        let g = GroupedCsr::group_by(&[], 3);
        assert_eq!(g.num_groups(), 3);
        assert_eq!(g.num_members(), 0);
    }

    #[test]
    fn group_by_large_partitions_everything_once() {
        let n = 200_000usize;
        let keys: Vec<u32> = (0..n).map(|i| (i % 977) as u32).collect();
        let g = GroupedCsr::group_by(&keys, 977);
        assert_eq!(g.num_members(), n);
        let mut seen = vec![false; n];
        for grp in 0..977u32 {
            for &m in g.members(grp) {
                assert_eq!(keys[m as usize], grp);
                assert!(!seen[m as usize]);
                seen[m as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
