//! Holey CSR and group-by CSR — the aggregation-phase data structures.
//!
//! Algorithm 4 of the paper builds two CSRs per pass:
//!
//! 1. `G'_{C'}` — *community vertices*: for each community, the list of
//!    its member vertices. Counts are exact, so the CSR is dense
//!    ([`GroupedCsr`]).
//! 2. `G''` — the *super-vertex graph*: per-community degree is
//!    **overestimated** by the community's total degree, the offsets are
//!    prefix-summed over the overestimate, and edges are written into the
//!    gap-containing ("holey") arrays as they are discovered
//!    ([`HoleyCsrBuilder`]). Avoiding an exact counting pass is the
//!    optimization; the holes are squeezed out when freezing to
//!    [`CsrGraph`].

use crate::{CsrGraph, EdgeWeight, VertexId};
use gve_prim::scan::{parallel_exclusive_scan, parallel_offsets_from_counts};
use gve_prim::SharedSlice;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Over-allocated CSR filled concurrently with atomic slot claiming.
#[derive(Debug)]
pub struct HoleyCsrBuilder {
    offsets: Vec<u64>,
    fill: Vec<AtomicU32>,
    targets: Vec<AtomicU32>,
    /// f32 weight bit patterns, written once per claimed slot.
    weights: Vec<AtomicU32>,
}

impl HoleyCsrBuilder {
    /// Creates a builder whose vertex `u` can hold up to `capacities[u]`
    /// arcs.
    pub fn new(capacities: &[u64]) -> Self {
        let offsets = parallel_offsets_from_counts(capacities);
        let total = *offsets.last().unwrap() as usize;
        Self {
            offsets,
            fill: (0..capacities.len()).map(|_| AtomicU32::new(0)).collect(),
            targets: (0..total).map(|_| AtomicU32::new(0)).collect(),
            weights: (0..total).map(|_| AtomicU32::new(0)).collect(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.fill.len()
    }

    /// Arcs added to vertex `u` so far.
    #[inline]
    pub fn degree(&self, u: VertexId) -> usize {
        // Relaxed: a monotone tally; exact snapshots only matter after
        // the building phase's rayon join.
        self.fill[u as usize].load(Ordering::Relaxed) as usize
    }

    /// Adds arc `u → v` with weight `w`. Thread-safe; slots are claimed
    /// with a `fetch_add` on the per-vertex cursor.
    ///
    /// # Panics
    /// Panics when vertex `u`'s capacity is exceeded (a bug in the degree
    /// overestimate, never expected in correct use).
    #[inline]
    pub fn add_arc(&self, u: VertexId, v: VertexId, w: EdgeWeight) {
        let u = u as usize;
        // Relaxed slot claim: fetch_add alone guarantees the claimed
        // index is unique; the payload stores below go to that unique
        // slot, and readers only run after the building join.
        let slot = self.fill[u].fetch_add(1, Ordering::Relaxed) as u64;
        let lo = self.offsets[u];
        let hi = self.offsets[u + 1];
        assert!(
            lo + slot < hi,
            "holey CSR capacity exceeded for vertex {u}: cap {}",
            hi - lo
        );
        let index = (lo + slot) as usize;
        // Relaxed payload stores into the uniquely claimed slot; readers
        // only run after the building phase's join.
        self.targets[index].store(v, Ordering::Relaxed);
        self.weights[index].store(w.to_bits(), Ordering::Relaxed);
    }

    /// Squeezes the holes out, producing a dense [`CsrGraph`].
    pub fn into_csr(self) -> CsrGraph {
        let n = self.fill.len();
        // Relaxed loads below: `self` is owned here, so every add_arc
        // store is already ordered before this call.
        let counts: Vec<u64> = self
            .fill
            .iter()
            .map(|f| f.load(Ordering::Relaxed) as u64)
            .collect();
        let dense_offsets = parallel_offsets_from_counts(&counts);
        let total = *dense_offsets.last().unwrap() as usize;
        let mut targets = vec![0 as VertexId; total];
        let mut weights = vec![0.0 as EdgeWeight; total];
        {
            let t_out = SharedSlice::new(&mut targets);
            let w_out = SharedSlice::new(&mut weights);
            let src_t = &self.targets;
            let src_w = &self.weights;
            let holey_offsets = &self.offsets;
            (0..n).into_par_iter().for_each(|u| {
                let src = holey_offsets[u] as usize;
                let dst = dense_offsets[u] as usize;
                let len = counts[u] as usize;
                for k in 0..len {
                    // SAFETY: destination ranges [dst, dst+len) are
                    // disjoint across vertices by construction of the
                    // prefix sum. (Relaxed source loads: the arcs were
                    // published by the pre-into_csr ownership transfer.)
                    unsafe {
                        t_out.write(dst + k, src_t[src + k].load(Ordering::Relaxed));
                        w_out.write(
                            dst + k,
                            EdgeWeight::from_bits(src_w[src + k].load(Ordering::Relaxed)),
                        );
                    }
                }
            });
        }
        CsrGraph::from_raw(dense_offsets, targets, weights)
    }
}

/// Exact-size CSR mapping group id → member elements, built in parallel.
///
/// This is the community-vertices structure `G'_{C'}`: `group_by` counts
/// members per group, prefix-sums the counts into offsets, then scatters
/// members with atomic per-group cursors (Algorithm 4, lines 3–6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupedCsr {
    offsets: Vec<u64>,
    members: Vec<VertexId>,
}

impl GroupedCsr {
    /// Groups elements `0..keys.len()` by `keys[i] ∈ 0..num_groups`.
    pub fn group_by(keys: &[VertexId], num_groups: usize) -> Self {
        // Count members per group. Relaxed throughout the counting and
        // scatter steps: counters are tallies/slot cursors ordered by
        // the rayon joins between the steps.
        let counts: Vec<AtomicU32> = (0..num_groups).map(|_| AtomicU32::new(0)).collect();
        keys.par_iter().for_each(|&k| {
            counts[k as usize].fetch_add(1, Ordering::Relaxed);
        });
        let counts_u64: Vec<u64> = counts
            .iter()
            // Relaxed: post-join read-back, then reset — see above.
            .map(|c| c.load(Ordering::Relaxed) as u64)
            .collect();
        let offsets = parallel_offsets_from_counts(&counts_u64);
        // Scatter members; reuse `counts` as cursors.
        for c in &counts {
            c.store(0, Ordering::Relaxed);
        }
        let total = *offsets.last().unwrap() as usize;
        let mut members = vec![0 as VertexId; total];
        {
            let out = SharedSlice::new(&mut members);
            let offsets = &offsets;
            let counts = &counts;
            (0..keys.len()).into_par_iter().for_each(|i| {
                let g = keys[i] as usize;
                // Relaxed slot claim: uniqueness comes from fetch_add.
                let slot = counts[g].fetch_add(1, Ordering::Relaxed) as u64;
                // SAFETY: (group base + claimed slot) pairs are unique.
                unsafe { out.write((offsets[g] + slot) as usize, i as VertexId) };
            });
        }
        Self { offsets, members }
    }

    /// Number of groups.
    #[inline]
    pub fn num_groups(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total members across all groups.
    #[inline]
    pub fn num_members(&self) -> usize {
        self.members.len()
    }

    /// Members of group `g`.
    #[inline]
    pub fn members(&self, g: VertexId) -> &[VertexId] {
        let g = g as usize;
        &self.members[self.offsets[g] as usize..self.offsets[g + 1] as usize]
    }

    /// Size of group `g`.
    #[inline]
    pub fn group_len(&self, g: VertexId) -> usize {
        self.members(g).len()
    }
}

/// How many retired super-vertex CSR buffer sets [`AggregateScratch`]
/// keeps for reuse. Two suffices for the pass loop's double buffering
/// (the live graph plus the one being built).
const RECYCLE_DEPTH: usize = 2;

/// Pass-resident scratch fusing [`GroupedCsr`] and [`HoleyCsrBuilder`]
/// into one grow-only arena, so the aggregation phase performs zero
/// steady-state allocation:
///
/// * the member-counting sweep **also** folds each community's total
///   degree (the holey capacity overestimate), eliminating the separate
///   nested capacity pass;
/// * every offsets/cursor/slot array is reused across passes — pass `k`
///   views a shrinking prefix of the same memory;
/// * [`AggregateScratch::squeeze`] writes the dense super-vertex CSR
///   into buffers recovered from a previously retired graph
///   ([`AggregateScratch::recycle`]), completing the double buffer.
///
/// Protocol per pass: [`AggregateScratch::prepare`], then concurrent
/// [`AggregateScratch::add_arc`] guided by
/// [`AggregateScratch::members`] / [`AggregateScratch::capacity`],
/// then [`AggregateScratch::squeeze`].
#[derive(Debug, Default)]
pub struct AggregateScratch {
    /// Per-community member count, then scatter cursor.
    cursors: Vec<AtomicU32>,
    /// Member offsets of the grouped CSR (`num_groups + 1` live slots).
    group_offsets: Vec<u64>,
    /// Member array of the grouped CSR (`keys.len()` live slots).
    members: Vec<VertexId>,
    /// Per-community total degree (the capacity overestimate), folded
    /// during the same sweep that counts members.
    capacities: Vec<AtomicU64>,
    /// Holey super-CSR offsets over the capacities.
    holey_offsets: Vec<u64>,
    /// Arcs claimed per super-vertex so far.
    fill: Vec<AtomicU32>,
    /// Holey arc slots (targets and f32 weight bit patterns).
    slot_targets: Vec<AtomicU32>,
    slot_weights: Vec<AtomicU32>,
    /// Retired dense CSR buffers awaiting reuse by `squeeze`.
    recycled: Vec<(Vec<u64>, Vec<VertexId>, Vec<EdgeWeight>)>,
    /// Communities in the current `prepare` epoch.
    num_groups: usize,
}

impl AggregateScratch {
    /// An empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of groups in the current epoch.
    #[inline]
    pub fn num_groups(&self) -> usize {
        self.num_groups
    }

    /// Pre-grows every buffer for up to `num_groups` groups and
    /// `total_arcs` holey slots, so subsequent [`Self::prepare`] /
    /// [`Self::squeeze`] epochs on inputs within those bounds allocate
    /// nothing. Grow-only; contents are untouched (each epoch
    /// reinitializes the prefixes it uses).
    pub fn reserve(&mut self, num_groups: usize, total_arcs: usize) {
        let g = num_groups;
        if self.cursors.len() < g {
            self.cursors.resize_with(g, || AtomicU32::new(0));
            self.capacities.resize_with(g, || AtomicU64::new(0));
            self.fill.resize_with(g, || AtomicU32::new(0));
        }
        if self.group_offsets.len() < g + 1 {
            self.group_offsets.resize(g + 1, 0);
            self.holey_offsets.resize(g + 1, 0);
        }
        if self.members.len() < g {
            self.members.resize(g, 0);
        }
        if self.slot_targets.len() < total_arcs {
            self.slot_targets
                .resize_with(total_arcs, || AtomicU32::new(0));
            self.slot_weights
                .resize_with(total_arcs, || AtomicU32::new(0));
        }
    }

    /// Groups elements `0..keys.len()` by `keys[i] ∈ 0..num_groups` and
    /// folds `degree_of(i)` into each group's capacity in the same
    /// sweep, then lays out the holey super-CSR over those capacities.
    /// Reuses all prior storage; allocates only when the input outgrows
    /// every previous epoch.
    pub fn prepare(
        &mut self,
        keys: &[VertexId],
        num_groups: usize,
        degree_of: impl Fn(usize) -> u64 + Sync,
    ) {
        self.num_groups = num_groups;
        let g = num_groups;
        // Grow-only capacity. `resize_with` on the atomic arrays keeps
        // existing elements; stale values are overwritten by the resets
        // below or gated behind `fill` before any read.
        if self.cursors.len() < g {
            self.cursors.resize_with(g, || AtomicU32::new(0));
            self.capacities.resize_with(g, || AtomicU64::new(0));
            self.fill.resize_with(g, || AtomicU32::new(0));
        }
        if self.group_offsets.len() < g + 1 {
            self.group_offsets.resize(g + 1, 0);
            self.holey_offsets.resize(g + 1, 0);
        }
        if self.members.len() < keys.len() {
            self.members.resize(keys.len(), 0);
        }

        // Reset the live prefix in one parallel sweep. Relaxed stores:
        // bulk reinitialization between phases; the rayon join below
        // publishes them, exactly as in `GroupedCsr::group_by`.
        let cursors = &self.cursors[..g];
        let capacities = &self.capacities[..g];
        let fill = &self.fill[..g];
        (0..g).into_par_iter().for_each(|c| {
            // Relaxed: bulk reset between joins, as above.
            cursors[c].store(0, Ordering::Relaxed);
            capacities[c].store(0, Ordering::Relaxed);
            fill[c].store(0, Ordering::Relaxed);
        });

        // Fused sweep: member count + capacity (total degree) per group.
        keys.par_iter().enumerate().for_each(|(i, &k)| {
            // Relaxed: commutative tallies, published by the join.
            cursors[k as usize].fetch_add(1, Ordering::Relaxed);
            capacities[k as usize].fetch_add(degree_of(i), Ordering::Relaxed);
        });

        // Grouped-CSR offsets from the counts (in place, no staging).
        {
            let offsets = &mut self.group_offsets[..g + 1];
            offsets[..g]
                .par_iter_mut()
                .enumerate()
                // Relaxed: post-join read-back of the counts.
                .for_each(|(c, slot)| *slot = cursors[c].load(Ordering::Relaxed) as u64);
            let total = parallel_exclusive_scan(&mut offsets[..g]);
            offsets[g] = total;
            debug_assert_eq!(total as usize, keys.len());
        }

        // Scatter members, reusing the cursors.
        (0..g).into_par_iter().for_each(|c| {
            // Relaxed: bulk reset between joins, as above.
            cursors[c].store(0, Ordering::Relaxed);
        });
        {
            let out = SharedSlice::new(&mut self.members[..keys.len()]);
            let offsets = &self.group_offsets;
            (0..keys.len()).into_par_iter().for_each(|i| {
                let grp = keys[i] as usize;
                // Relaxed slot claim: uniqueness comes from fetch_add.
                let slot = cursors[grp].fetch_add(1, Ordering::Relaxed) as u64;
                // SAFETY: (group base + claimed slot) pairs are unique.
                unsafe { out.write((offsets[grp] + slot) as usize, i as VertexId) };
            });
        }

        // Holey offsets over the capacity overestimates.
        let total_cap = {
            let offsets = &mut self.holey_offsets[..g + 1];
            offsets[..g]
                .par_iter_mut()
                .enumerate()
                // Relaxed: post-join read-back of the capacities.
                .for_each(|(c, slot)| *slot = capacities[c].load(Ordering::Relaxed));
            let total = parallel_exclusive_scan(&mut offsets[..g]);
            offsets[g] = total;
            total as usize
        };
        // Slot arrays are written before being read (gated by `fill`),
        // so growth needs no clearing.
        if self.slot_targets.len() < total_cap {
            self.slot_targets
                .resize_with(total_cap, || AtomicU32::new(0));
            self.slot_weights
                .resize_with(total_cap, || AtomicU32::new(0));
        }
    }

    /// Members of group `g` in the current epoch.
    #[inline]
    pub fn members(&self, g: VertexId) -> &[VertexId] {
        let g = g as usize;
        debug_assert!(g < self.num_groups);
        &self.members[self.group_offsets[g] as usize..self.group_offsets[g + 1] as usize]
    }

    /// Capacity overestimate (total member degree) of super-vertex `c`.
    #[inline]
    pub fn capacity(&self, c: VertexId) -> u64 {
        let c = c as usize;
        self.holey_offsets[c + 1] - self.holey_offsets[c]
    }

    /// Adds arc `u → v` with weight `w` to the holey super-CSR.
    /// Thread-safe, as in [`HoleyCsrBuilder::add_arc`].
    ///
    /// # Panics
    /// Panics when super-vertex `u`'s capacity is exceeded.
    #[inline]
    pub fn add_arc(&self, u: VertexId, v: VertexId, w: EdgeWeight) {
        let u = u as usize;
        // Relaxed slot claim + payload stores into the uniquely claimed
        // slot; readers only run after the building phase's join.
        let slot = self.fill[u].fetch_add(1, Ordering::Relaxed) as u64;
        let lo = self.holey_offsets[u];
        let hi = self.holey_offsets[u + 1];
        assert!(
            lo + slot < hi,
            "holey CSR capacity exceeded for vertex {u}: cap {}",
            hi - lo
        );
        let index = (lo + slot) as usize;
        self.targets_store(index, v, w);
    }

    #[inline]
    fn targets_store(&self, index: usize, v: VertexId, w: EdgeWeight) {
        // Relaxed: payload stores into a uniquely claimed slot; readers
        // only run after the building phase's join.
        self.slot_targets[index].store(v, Ordering::Relaxed);
        self.slot_weights[index].store(w.to_bits(), Ordering::Relaxed);
    }

    /// Squeezes the holes out into a dense [`CsrGraph`], writing into
    /// buffers recovered by [`AggregateScratch::recycle`] when any are
    /// available. The scratch itself stays allocated for the next pass.
    pub fn squeeze(&mut self) -> CsrGraph {
        let g = self.num_groups;
        let fill = &self.fill[..g];
        // Take the *largest* recycled set, not the most recent: runs
        // retire their buffers small-to-large (the last, smallest
        // supergraph is recycled at run end, on top of the stack), so a
        // LIFO pop would hand pass 1 — the biggest squeeze — the
        // smallest buffers and reallocate every run.
        let (mut dense_offsets, mut targets, mut weights) = self
            .recycled
            .iter()
            .enumerate()
            .max_by_key(|(_, (_, t, _))| t.capacity())
            .map(|(i, _)| i)
            .map(|i| self.recycled.swap_remove(i))
            .unwrap_or_default();

        // Dense offsets from the fill counts. Shrinking reuse is a
        // truncate; only a first-use or growing buffer pays the zero
        // fill. Relaxed loads: post-join read-back.
        dense_offsets.clear();
        dense_offsets.resize(g + 1, 0);
        dense_offsets[..g]
            .par_iter_mut()
            .enumerate()
            .for_each(|(c, slot)| *slot = fill[c].load(Ordering::Relaxed) as u64);
        let total = parallel_exclusive_scan(&mut dense_offsets[..g]) as usize;
        dense_offsets[g] = total as u64;

        targets.clear();
        targets.resize(total, 0);
        weights.clear();
        weights.resize(total, 0.0);
        {
            let t_out = SharedSlice::new(&mut targets);
            let w_out = SharedSlice::new(&mut weights);
            let src_t = &self.slot_targets;
            let src_w = &self.slot_weights;
            let holey_offsets = &self.holey_offsets;
            let dense_offsets = &dense_offsets;
            (0..g).into_par_iter().for_each(|u| {
                let src = holey_offsets[u] as usize;
                let dst = dense_offsets[u] as usize;
                // Relaxed: post-join read-back of the fill counts.
                let len = fill[u].load(Ordering::Relaxed) as usize;
                for k in 0..len {
                    // SAFETY: destination ranges [dst, dst+len) are
                    // disjoint across vertices by construction of the
                    // prefix sum. (Relaxed source loads: published by
                    // the building phase's join.)
                    unsafe {
                        t_out.write(dst + k, src_t[src + k].load(Ordering::Relaxed));
                        w_out.write(
                            dst + k,
                            EdgeWeight::from_bits(src_w[src + k].load(Ordering::Relaxed)),
                        );
                    }
                }
            });
        }
        // Trusted: targets are dense ids < g scattered by the builder,
        // offsets are a prefix sum over the fill counts.
        CsrGraph::from_raw_trusted(dense_offsets, targets, weights)
    }

    /// Recovers a retired graph's buffers for reuse by a later
    /// [`AggregateScratch::squeeze`]. Keeps at most [`RECYCLE_DEPTH`]
    /// sets; extras are dropped.
    pub fn recycle(&mut self, graph: CsrGraph) {
        if self.recycled.len() < RECYCLE_DEPTH {
            self.recycled.push(graph.into_raw());
        }
    }

    /// Number of buffer sets currently waiting for reuse (test hook).
    #[inline]
    pub fn recycled_buffers(&self) -> usize {
        self.recycled.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn holey_roundtrip_with_holes() {
        // Capacities larger than actual arcs: 0 gets cap 4 but 2 arcs.
        let b = HoleyCsrBuilder::new(&[4, 3, 2]);
        b.add_arc(0, 1, 1.0);
        b.add_arc(0, 2, 2.0);
        b.add_arc(1, 0, 1.0);
        b.add_arc(2, 0, 2.0);
        assert_eq!(b.degree(0), 2);
        assert_eq!(b.num_vertices(), 3);
        let g = b.into_csr();
        assert_eq!(g.num_arcs(), 4);
        let mut e0: Vec<_> = g.edges(0).collect();
        e0.sort_by_key(|&(v, _)| v);
        assert_eq!(e0, vec![(1, 1.0), (2, 2.0)]);
        assert_eq!(g.edges(1).collect::<Vec<_>>(), vec![(0, 1.0)]);
    }

    #[test]
    fn holey_zero_capacity_vertices() {
        let b = HoleyCsrBuilder::new(&[0, 2, 0]);
        b.add_arc(1, 0, 1.0);
        let g = b.into_csr();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.degree(0), 0);
        assert_eq!(g.degree(1), 1);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    #[should_panic(expected = "capacity exceeded")]
    fn holey_overflow_panics() {
        let b = HoleyCsrBuilder::new(&[1]);
        b.add_arc(0, 0, 1.0);
        b.add_arc(0, 0, 1.0);
    }

    #[test]
    fn holey_concurrent_fill() {
        use rayon::prelude::*;
        let n = 100u32;
        let per = 50u32;
        let caps = vec![per as u64; n as usize];
        let b = HoleyCsrBuilder::new(&caps);
        (0..n * per).into_par_iter().for_each(|i| {
            b.add_arc(i % n, i / n, 1.0);
        });
        let g = b.into_csr();
        assert_eq!(g.num_arcs(), (n * per) as usize);
        for u in 0..n {
            assert_eq!(g.degree(u), per as usize);
            let mut nb: Vec<_> = g.neighbors(u).to_vec();
            nb.sort_unstable();
            assert_eq!(nb, (0..per).collect::<Vec<_>>());
        }
    }

    #[test]
    fn group_by_basic() {
        let keys = vec![1, 0, 1, 2, 1];
        let g = GroupedCsr::group_by(&keys, 3);
        assert_eq!(g.num_groups(), 3);
        assert_eq!(g.num_members(), 5);
        assert_eq!(g.members(0), &[1]);
        let mut g1 = g.members(1).to_vec();
        g1.sort_unstable();
        assert_eq!(g1, vec![0, 2, 4]);
        assert_eq!(g.members(2), &[3]);
        assert_eq!(g.group_len(1), 3);
    }

    #[test]
    fn group_by_empty_groups() {
        let keys = vec![2, 2];
        let g = GroupedCsr::group_by(&keys, 4);
        assert_eq!(g.group_len(0), 0);
        assert_eq!(g.group_len(1), 0);
        assert_eq!(g.group_len(2), 2);
        assert_eq!(g.group_len(3), 0);
    }

    #[test]
    fn group_by_no_elements() {
        let g = GroupedCsr::group_by(&[], 3);
        assert_eq!(g.num_groups(), 3);
        assert_eq!(g.num_members(), 0);
    }

    /// Reference implementation: the scratch must reproduce exactly
    /// what the one-shot GroupedCsr + HoleyCsrBuilder pair produces.
    fn reference_aggregate(keys: &[VertexId], num_groups: usize, degrees: &[u64]) -> CsrGraph {
        let grouped = GroupedCsr::group_by(keys, num_groups);
        let capacities: Vec<u64> = (0..num_groups as u32)
            .map(|c| {
                grouped
                    .members(c)
                    .iter()
                    .map(|&v| degrees[v as usize])
                    .sum()
            })
            .collect();
        let builder = HoleyCsrBuilder::new(&capacities);
        for c in 0..num_groups as u32 {
            for (slot, &v) in grouped.members(c).iter().enumerate() {
                builder.add_arc(c, v % num_groups as u32, slot as f32 + 1.0);
            }
        }
        builder.into_csr()
    }

    fn scratch_aggregate(
        scratch: &mut AggregateScratch,
        keys: &[VertexId],
        num_groups: usize,
        degrees: &[u64],
    ) -> CsrGraph {
        scratch.prepare(keys, num_groups, |v| degrees[v]);
        for c in 0..num_groups as u32 {
            let expected: u64 = scratch
                .members(c)
                .iter()
                .map(|&v| degrees[v as usize])
                .sum();
            assert_eq!(scratch.capacity(c), expected, "fused capacity of {c}");
            for (slot, &v) in scratch.members(c).iter().enumerate() {
                scratch.add_arc(c, v % num_groups as u32, slot as f32 + 1.0);
            }
        }
        scratch.squeeze()
    }

    #[test]
    fn aggregate_scratch_matches_one_shot_builders_across_reuse() {
        let mut scratch = AggregateScratch::new();
        // Shrinking epochs, as in the pass loop; one growth in between
        // to exercise the grow path too.
        let epochs: Vec<(Vec<u32>, usize)> = vec![
            ((0..600u32).map(|i| i % 37).collect(), 37),
            ((0..300u32).map(|i| (i * 7) % 11).collect(), 11),
            ((0..900u32).map(|i| (i * 13) % 53).collect(), 53),
            (vec![0, 0, 0], 1),
        ];
        for (keys, num_groups) in epochs {
            let degrees: Vec<u64> = (0..keys.len() as u64).map(|i| 1 + i % 5).collect();
            let expected = reference_aggregate(&keys, num_groups, &degrees);
            let got = scratch_aggregate(&mut scratch, &keys, num_groups, &degrees);
            // Same per-vertex arc multisets (claim order may differ).
            assert_eq!(got.num_vertices(), expected.num_vertices());
            assert_eq!(got.num_arcs(), expected.num_arcs());
            assert_eq!(got.offsets(), expected.offsets());
            for u in 0..got.num_vertices() as u32 {
                let mut a: Vec<_> = got.edges(u).map(|(v, w)| (v, w.to_bits())).collect();
                let mut b: Vec<_> = expected.edges(u).map(|(v, w)| (v, w.to_bits())).collect();
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "arcs of {u}");
            }
            // Feed the graph back in: the next squeeze reuses its buffers.
            scratch.recycle(got);
            assert!(scratch.recycled_buffers() >= 1);
        }
    }

    #[test]
    fn recycle_stack_is_bounded() {
        let mut scratch = AggregateScratch::new();
        for _ in 0..5 {
            scratch.recycle(CsrGraph::empty(3));
        }
        assert_eq!(scratch.recycled_buffers(), RECYCLE_DEPTH);
    }

    #[test]
    #[should_panic(expected = "capacity exceeded")]
    fn aggregate_scratch_overflow_panics() {
        let mut scratch = AggregateScratch::new();
        scratch.prepare(&[0], 1, |_| 1);
        scratch.add_arc(0, 0, 1.0);
        scratch.add_arc(0, 0, 1.0);
    }

    #[test]
    fn group_by_large_partitions_everything_once() {
        let n = 200_000usize;
        let keys: Vec<u32> = (0..n).map(|i| (i % 977) as u32).collect();
        let g = GroupedCsr::group_by(&keys, 977);
        assert_eq!(g.num_members(), n);
        let mut seen = vec![false; n];
        for grp in 0..977u32 {
            for &m in g.members(grp) {
                assert_eq!(keys[m as usize], grp);
                assert!(!seen[m as usize]);
                seen[m as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
