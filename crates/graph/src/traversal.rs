//! Graph traversal: BFS and parallel connected components.
//!
//! The Leiden connectivity guarantee is defined in terms of connected
//! components of induced subgraphs; the whole-graph component structure
//! is also a useful dataset statistic (the paper's road/k-mer graphs are
//! far from connected). Components are computed with parallel
//! label-propagation hooking (a simplified Shiloach–Vishkin), BFS with a
//! plain frontier queue.

use crate::{CsrGraph, VertexId};
use rayon::prelude::*;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

/// Breadth-first search from `source`; returns the hop distance of every
/// vertex (`u32::MAX` for unreachable ones).
pub fn bfs_distances(graph: &CsrGraph, source: VertexId) -> Vec<u32> {
    let n = graph.num_vertices();
    assert!((source as usize) < n, "source out of range");
    let mut dist = vec![u32::MAX; n];
    dist[source as usize] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let next = dist[u as usize] + 1;
        for &v in graph.neighbors(u) {
            if dist[v as usize] == u32::MAX {
                dist[v as usize] = next;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Parallel connected components via label-propagation hooking: every
/// vertex starts with its own label; rounds of parallel min-label
/// adoption run until a fixed point. Returns `(component_of, count)`
/// with dense component ids.
pub fn connected_components(graph: &CsrGraph) -> (Vec<VertexId>, usize) {
    let n = graph.num_vertices();
    let labels: Vec<AtomicU32> = (0..n as u32).map(AtomicU32::new).collect();
    let changed = AtomicBool::new(true);
    // Relaxed atomics throughout: labels only ever decrease (fetch_min
    // keeps races monotone), stale reads merely cost extra rounds, and
    // the per-round rayon joins order the `changed` flag hand-off.
    while changed.swap(false, Ordering::Relaxed) {
        (0..n as VertexId).into_par_iter().for_each(|u| {
            let mut best = labels[u as usize].load(Ordering::Relaxed);
            for &v in graph.neighbors(u) {
                best = best.min(labels[v as usize].load(Ordering::Relaxed));
            }
            // Propagate the smaller label; Relaxed fetch_min keeps this
            // monotone under races.
            if labels[u as usize].fetch_min(best, Ordering::Relaxed) > best {
                changed.store(true, Ordering::Relaxed);
            }
        });
        // Pointer-jumping: compress label chains so long paths converge
        // in O(log n) rounds instead of O(diameter).
        // (Relaxed label walks: monotone, as above.)
        (0..n).into_par_iter().for_each(|u| {
            let mut l = labels[u].load(Ordering::Relaxed);
            loop {
                let parent = labels[l as usize].load(Ordering::Relaxed);
                if parent == l {
                    break;
                }
                l = parent;
            }
            // Relaxed: monotone fetch_min, as above.
            labels[u].fetch_min(l, Ordering::Relaxed);
        });
    }
    // Relaxed: post-join read-back.
    let raw: Vec<VertexId> = labels.iter().map(|l| l.load(Ordering::Relaxed)).collect();
    // Densify.
    let mut remap = vec![VertexId::MAX; n.max(1)];
    let mut next = 0;
    let mut out = Vec::with_capacity(n);
    for &l in &raw {
        let slot = &mut remap[l as usize];
        if *slot == VertexId::MAX {
            *slot = next;
            next += 1;
        }
        out.push(*slot);
    }
    (out, next as usize)
}

/// True when the whole graph is one connected component (vacuously true
/// for the empty graph).
pub fn is_connected(graph: &CsrGraph) -> bool {
    graph.num_vertices() == 0 || connected_components(graph).1 == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn two_components() -> CsrGraph {
        // Path 0-1-2 and edge 3-4, vertex 5 isolated.
        GraphBuilder::from_edges(6, &[(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0)])
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = two_components();
        let dist = bfs_distances(&g, 0);
        assert_eq!(dist[0], 0);
        assert_eq!(dist[1], 1);
        assert_eq!(dist[2], 2);
        assert_eq!(dist[3], u32::MAX);
        assert_eq!(dist[5], u32::MAX);
    }

    #[test]
    #[should_panic(expected = "source out of range")]
    fn bfs_rejects_bad_source() {
        bfs_distances(&two_components(), 6);
    }

    #[test]
    fn components_are_found_and_dense() {
        let g = two_components();
        let (comp, count) = connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[3]);
        assert_ne!(comp[0], comp[5]);
        assert_eq!(*comp.iter().max().unwrap() as usize + 1, count);
    }

    #[test]
    fn connectivity_predicate() {
        assert!(!is_connected(&two_components()));
        let ring =
            GraphBuilder::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)]);
        assert!(is_connected(&ring));
        assert!(is_connected(&CsrGraph::empty(0)));
        assert!(!is_connected(&CsrGraph::empty(2)));
    }

    #[test]
    fn long_path_converges() {
        // Path of 10_000 vertices: pointer jumping must keep rounds low
        // enough to finish fast.
        let edges: Vec<(u32, u32, f32)> = (0..9999u32).map(|i| (i, i + 1, 1.0)).collect();
        let g = GraphBuilder::from_edges(10_000, &edges);
        let (comp, count) = connected_components(&g);
        assert_eq!(count, 1);
        assert!(comp.iter().all(|&c| c == 0));
    }

    #[test]
    fn matches_bfs_reachability() {
        let g = gve_test_graph();
        let (comp, _) = connected_components(&g);
        let dist = bfs_distances(&g, 0);
        for v in 0..g.num_vertices() {
            assert_eq!(
                comp[v] == comp[0],
                dist[v] != u32::MAX,
                "vertex {v}: component vs reachability disagree"
            );
        }
    }

    fn gve_test_graph() -> CsrGraph {
        // Pseudo-random sparse graph with several components.
        let mut edges = Vec::new();
        let mut state = 99u64;
        for _ in 0..300 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let u = ((state >> 16) % 400) as u32;
            let v = ((state >> 40) % 400) as u32;
            edges.push((u, v, 1.0));
        }
        GraphBuilder::from_edges(400, &edges)
    }
}
