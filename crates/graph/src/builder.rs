//! Edge-list ingestion into a clean symmetric CSR.
//!
//! The paper preprocesses every input graph so that "edges are undirected
//! and weighted with a default of 1" (§5.1.3). [`GraphBuilder`] performs
//! that normalization: optional symmetrization (add reverse arcs),
//! duplicate-arc merging (weights summed), and a self-loop policy. The
//! build is a parallel counting sort by source followed by per-vertex
//! sorting and in-place deduplication.

use crate::{CsrGraph, EdgeWeight, VertexId};
use gve_prim::scan::parallel_offsets_from_counts;
use gve_prim::SharedSlice;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

/// Builder accumulating `(u, v, w)` edges and producing a [`CsrGraph`].
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    edges: Vec<(VertexId, VertexId, EdgeWeight)>,
    num_vertices: Option<usize>,
    symmetrize: bool,
    dedup: bool,
    drop_self_loops: bool,
}

impl Default for GraphBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl GraphBuilder {
    /// A builder with the paper's defaults: symmetrize, merge duplicate
    /// arcs, keep self-loops.
    pub fn new() -> Self {
        Self {
            edges: Vec::new(),
            num_vertices: None,
            symmetrize: true,
            dedup: true,
            drop_self_loops: false,
        }
    }

    /// Fixes the vertex count instead of inferring `max id + 1`.
    pub fn with_vertices(mut self, n: usize) -> Self {
        self.num_vertices = Some(n);
        self
    }

    /// Enables/disables adding reverse arcs (default on).
    pub fn symmetrize(mut self, on: bool) -> Self {
        self.symmetrize = on;
        self
    }

    /// Enables/disables merging duplicate arcs by summing weights
    /// (default on).
    pub fn dedup(mut self, on: bool) -> Self {
        self.dedup = on;
        self
    }

    /// Enables/disables dropping self-loops (default off — kept).
    pub fn drop_self_loops(mut self, on: bool) -> Self {
        self.drop_self_loops = on;
        self
    }

    /// Number of raw edges added so far.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True when no edge has been added.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Adds one edge.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId, w: EdgeWeight) -> &mut Self {
        self.edges.push((u, v, w));
        self
    }

    /// Adds one edge with the default unit weight.
    pub fn add_unweighted(&mut self, u: VertexId, v: VertexId) -> &mut Self {
        self.add_edge(u, v, 1.0)
    }

    /// Bulk-adds edges.
    pub fn extend(
        &mut self,
        edges: impl IntoIterator<Item = (VertexId, VertexId, EdgeWeight)>,
    ) -> &mut Self {
        self.edges.extend(edges);
        self
    }

    /// One-shot construction from a fixed edge slice.
    pub fn from_edges(n: usize, edges: &[(VertexId, VertexId, EdgeWeight)]) -> CsrGraph {
        let mut b = Self::new().with_vertices(n);
        b.extend(edges.iter().copied());
        b.build()
    }

    /// Builds the CSR graph, consuming nothing (the builder can be
    /// reused).
    pub fn build(&self) -> CsrGraph {
        let inferred = self
            .edges
            .iter()
            .map(|&(u, v, _)| u.max(v) as usize + 1)
            .max()
            .unwrap_or(0);
        let n = self.num_vertices.unwrap_or(inferred).max(inferred);

        // Expand to arcs according to policy.
        let mut arcs: Vec<(VertexId, VertexId, EdgeWeight)> =
            Vec::with_capacity(self.edges.len() * if self.symmetrize { 2 } else { 1 });
        for &(u, v, w) in &self.edges {
            if u == v {
                if !self.drop_self_loops {
                    arcs.push((u, v, w));
                }
                continue;
            }
            arcs.push((u, v, w));
            if self.symmetrize {
                arcs.push((v, u, w));
            }
        }

        // Parallel counting sort by source. Relaxed everywhere in this
        // block: the counters are pure tallies/slot cursors — the rayon
        // joins between the count, read-back and scatter steps order
        // them, and no other data is published through them.
        let counts: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        arcs.par_iter().for_each(|&(u, _, _)| {
            counts[u as usize].fetch_add(1, Ordering::Relaxed);
        });
        let counts_u64: Vec<u64> = counts
            .iter()
            // Relaxed: post-join read-back, then reset — see above.
            .map(|c| c.load(Ordering::Relaxed) as u64)
            .collect();
        let offsets = parallel_offsets_from_counts(&counts_u64);
        for c in &counts {
            c.store(0, Ordering::Relaxed);
        }
        let total = arcs.len();
        let mut targets = vec![0 as VertexId; total];
        let mut weights = vec![0.0 as EdgeWeight; total];
        {
            let t_out = SharedSlice::new(&mut targets);
            let w_out = SharedSlice::new(&mut weights);
            let offsets = &offsets;
            let counts = &counts;
            arcs.par_iter().for_each(|&(u, v, w)| {
                // Relaxed slot claim: uniqueness of (base + slot) is all
                // that matters, and fetch_add provides it on its own.
                let slot = counts[u as usize].fetch_add(1, Ordering::Relaxed) as u64;
                let index = (offsets[u as usize] + slot) as usize;
                // SAFETY: (vertex base + claimed slot) indices are unique.
                unsafe {
                    t_out.write(index, v);
                    w_out.write(index, w);
                }
            });
        }

        // Per-vertex neighbor sort (+ optional merge of duplicates).
        let mut rows: Vec<(Vec<VertexId>, Vec<EdgeWeight>)> = (0..n)
            .into_par_iter()
            .map(|u| {
                let lo = offsets[u] as usize;
                let hi = offsets[u + 1] as usize;
                let mut pairs: Vec<(VertexId, EdgeWeight)> = targets[lo..hi]
                    .iter()
                    .copied()
                    .zip(weights[lo..hi].iter().copied())
                    .collect();
                pairs.sort_unstable_by_key(|&(v, _)| v);
                let mut ts = Vec::with_capacity(pairs.len());
                let mut ws = Vec::with_capacity(pairs.len());
                for (v, w) in pairs {
                    if self.dedup && ts.last() == Some(&v) {
                        *ws.last_mut().unwrap() += w;
                    } else {
                        ts.push(v);
                        ws.push(w);
                    }
                }
                (ts, ws)
            })
            .collect();

        // Final assembly.
        let final_counts: Vec<u64> = rows.iter().map(|(t, _)| t.len() as u64).collect();
        let final_offsets = parallel_offsets_from_counts(&final_counts);
        let final_total = *final_offsets.last().unwrap() as usize;
        let mut final_targets = Vec::with_capacity(final_total);
        let mut final_weights = Vec::with_capacity(final_total);
        for (t, w) in rows.drain(..) {
            final_targets.extend(t);
            final_weights.extend(w);
        }
        CsrGraph::from_raw(final_offsets, final_targets, final_weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetrizes_by_default() {
        let g = GraphBuilder::from_edges(3, &[(0, 1, 1.0), (1, 2, 2.0)]);
        assert_eq!(g.num_arcs(), 4);
        assert!(g.is_symmetric());
        assert_eq!(g.edges(1).collect::<Vec<_>>(), vec![(0, 1.0), (2, 2.0)]);
    }

    #[test]
    fn merges_duplicates_summing_weights() {
        let g = GraphBuilder::from_edges(2, &[(0, 1, 1.0), (0, 1, 2.0), (1, 0, 4.0)]);
        // All three become the same undirected edge; both arcs get 7.0.
        assert_eq!(g.num_arcs(), 2);
        assert_eq!(g.edges(0).collect::<Vec<_>>(), vec![(1, 7.0)]);
        assert_eq!(g.edges(1).collect::<Vec<_>>(), vec![(0, 7.0)]);
    }

    #[test]
    fn keeps_self_loops_once_by_default() {
        let g = GraphBuilder::from_edges(2, &[(0, 0, 3.0), (0, 1, 1.0)]);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.edges(0).collect::<Vec<_>>(), vec![(0, 3.0), (1, 1.0)]);
    }

    #[test]
    fn drop_self_loops_policy() {
        let mut b = GraphBuilder::new().drop_self_loops(true);
        b.add_edge(0, 0, 3.0).add_edge(0, 1, 1.0);
        let g = b.build();
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn no_dedup_keeps_parallel_arcs() {
        let mut b = GraphBuilder::new().dedup(false);
        b.add_edge(0, 1, 1.0).add_edge(0, 1, 2.0);
        let g = b.build();
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.edges(0).collect::<Vec<_>>(), vec![(1, 1.0), (1, 2.0)]);
    }

    #[test]
    fn asymmetric_mode() {
        let mut b = GraphBuilder::new().symmetrize(false);
        b.add_edge(0, 1, 1.0);
        let g = b.build();
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 0);
    }

    #[test]
    fn infers_vertex_count_and_respects_floor() {
        let mut b = GraphBuilder::new();
        b.add_unweighted(0, 5);
        assert_eq!(b.build().num_vertices(), 6);
        let mut b = GraphBuilder::new().with_vertices(10);
        b.add_unweighted(0, 5);
        assert_eq!(b.build().num_vertices(), 10);
        // Explicit count smaller than ids: grows to fit.
        let mut b = GraphBuilder::new().with_vertices(2);
        b.add_unweighted(0, 5);
        assert_eq!(b.build().num_vertices(), 6);
    }

    #[test]
    fn empty_builder() {
        let b = GraphBuilder::new();
        assert!(b.is_empty());
        let g = b.build();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_arcs(), 0);
    }

    #[test]
    fn neighbors_come_out_sorted() {
        let g = GraphBuilder::from_edges(5, &[(0, 4, 1.0), (0, 2, 1.0), (0, 3, 1.0), (0, 1, 1.0)]);
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4]);
    }

    #[test]
    fn large_random_build_is_symmetric_and_clean() {
        let mut edges = Vec::new();
        let mut state = 12345u64;
        for _ in 0..20_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let u = ((state >> 16) % 500) as u32;
            let v = ((state >> 40) % 500) as u32;
            edges.push((u, v, 1.0));
        }
        let g = GraphBuilder::from_edges(500, &edges);
        assert!(g.is_symmetric());
        // Dedup: no repeated neighbor entries.
        for u in 0..500u32 {
            let nb = g.neighbors(u);
            assert!(nb.windows(2).all(|w| w[0] < w[1]), "vertex {u}");
        }
    }
}
