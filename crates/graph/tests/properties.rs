//! Property-based tests of the graph substrate.

use gve_graph::holey::{GroupedCsr, HoleyCsrBuilder};
use gve_graph::{io, AdjacencyList, CsrGraph, GraphBuilder};
use proptest::prelude::*;

fn arb_edges(max_n: u32, max_m: usize) -> impl Strategy<Value = (u32, Vec<(u32, u32, f32)>)> {
    (2..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n, 1u32..5), 0..max_m).prop_map(move |edges| {
            (
                n,
                edges
                    .into_iter()
                    .map(|(u, v, w)| (u, v, w as f32))
                    .collect(),
            )
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The builder always yields a structurally valid, symmetric,
    /// sorted-and-deduplicated CSR.
    #[test]
    fn builder_output_is_clean((n, edges) in arb_edges(80, 300)) {
        let g = GraphBuilder::from_edges(n as usize, &edges);
        g.validate().unwrap();
        prop_assert!(g.is_symmetric());
        for u in 0..g.num_vertices() as u32 {
            let nb = g.neighbors(u);
            prop_assert!(nb.windows(2).all(|w| w[0] < w[1]), "vertex {} not clean", u);
        }
        // Total weight = 2 × Σ non-loop weights + Σ loop weights.
        let loops: f64 = edges.iter().filter(|&&(u, v, _)| u == v).map(|&(_, _, w)| w as f64).sum();
        let nonloops: f64 = edges.iter().filter(|&&(u, v, _)| u != v).map(|&(_, _, w)| w as f64).sum();
        prop_assert!((g.total_arc_weight() - (2.0 * nonloops + loops)).abs() < 1e-6);
    }

    /// AdjacencyList ↔ CSR conversion is lossless.
    #[test]
    fn adjacency_roundtrip((n, edges) in arb_edges(60, 200)) {
        let g = GraphBuilder::from_edges(n as usize, &edges);
        let adj = AdjacencyList::from_csr(&g);
        prop_assert_eq!(adj.to_csr(), g);
    }

    /// Matrix Market and binary formats round-trip any built graph.
    #[test]
    fn io_roundtrips((n, edges) in arb_edges(50, 150)) {
        let g = GraphBuilder::from_edges(n as usize, &edges);
        let mut mtx = Vec::new();
        io::write_matrix_market(&g, &mut mtx).unwrap();
        prop_assert_eq!(io::read_matrix_market(mtx.as_slice()).unwrap(), g.clone());
        let bin = io::binary::encode(&g);
        prop_assert_eq!(io::binary::decode(&bin).unwrap(), g);
    }

    /// Holey CSR with exact capacities reproduces the dense build.
    #[test]
    fn holey_equals_direct_build((n, edges) in arb_edges(50, 150)) {
        let reference = GraphBuilder::from_edges(n as usize, &edges);
        let caps: Vec<u64> = (0..reference.num_vertices() as u32)
            .map(|u| reference.degree(u) as u64)
            .collect();
        let holey = HoleyCsrBuilder::new(&caps);
        for (u, v, w) in reference.arcs() {
            holey.add_arc(u, v, w);
        }
        let rebuilt = holey.into_csr();
        // Arc order within a vertex may differ; compare sorted rows.
        prop_assert_eq!(rebuilt.num_vertices(), reference.num_vertices());
        prop_assert_eq!(rebuilt.num_arcs(), reference.num_arcs());
        for u in 0..reference.num_vertices() as u32 {
            let mut a: Vec<_> = rebuilt.edges(u).map(|(v, w)| (v, w.to_bits())).collect();
            let mut b: Vec<_> = reference.edges(u).map(|(v, w)| (v, w.to_bits())).collect();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b, "vertex {} differs", u);
        }
    }

    /// group_by produces an exact partition of the elements.
    #[test]
    fn group_by_is_a_partition(keys in proptest::collection::vec(0u32..20, 0..500)) {
        let groups = GroupedCsr::group_by(&keys, 20);
        prop_assert_eq!(groups.num_members(), keys.len());
        let mut seen = vec![false; keys.len()];
        for g in 0..20u32 {
            for &member in groups.members(g) {
                prop_assert_eq!(keys[member as usize], g);
                prop_assert!(!seen[member as usize], "member {} twice", member);
                seen[member as usize] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// Connected components agree with BFS reachability from every
    /// component representative.
    #[test]
    fn components_agree_with_bfs((n, edges) in arb_edges(60, 120)) {
        let g = GraphBuilder::from_edges(n as usize, &edges);
        let (comp, count) = gve_graph::traversal::connected_components(&g);
        prop_assert_eq!(comp.len(), g.num_vertices());
        if g.num_vertices() > 0 {
            prop_assert_eq!(*comp.iter().max().unwrap() as usize + 1, count);
            let dist = gve_graph::traversal::bfs_distances(&g, 0);
            for v in 0..g.num_vertices() {
                prop_assert_eq!(comp[v] == comp[0], dist[v] != u32::MAX);
            }
        }
    }

    /// Vertex weights sum to the total arc weight.
    #[test]
    fn weights_are_consistent((n, edges) in arb_edges(60, 200)) {
        let g = GraphBuilder::from_edges(n as usize, &edges);
        let k = gve_graph::props::vertex_weights(&g);
        let total: f64 = k.iter().sum();
        prop_assert!((total - g.total_arc_weight()).abs() < 1e-6);
        prop_assert!(
            (gve_graph::props::total_edge_weight(&g) - total / 2.0).abs() < 1e-9
        );
    }
}

#[test]
fn empty_graph_edge_cases() {
    let g = CsrGraph::empty(0);
    assert!(g.is_symmetric());
    let (comp, count) = gve_graph::traversal::connected_components(&g);
    assert!(comp.is_empty());
    assert_eq!(count, 0);
}
