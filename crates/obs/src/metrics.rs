//! Metric handles and the Prometheus text-format registry.
//!
//! Handles ([`Counter`], [`FloatCounter`], [`Gauge`], [`Histogram`])
//! are cheap `Arc`-backed atomics: create them anywhere, clone them
//! freely, update them from any thread. A [`MetricsRegistry`] is just a
//! collection of handle clones plus the metadata (name, help, labels)
//! needed to render them in Prometheus text exposition format — so the
//! hot path that increments a counter never touches a lock, and
//! subsystems can keep owning their counters (the registry *attaches*
//! to them rather than replacing them).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Default latency buckets (seconds): 500µs … 10s, roughly ×2.5 steps —
/// wide enough for both sub-millisecond cache hits and multi-second
/// full detections.
pub const DEFAULT_LATENCY_BUCKETS: &[f64] = &[
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
];

/// A monotonically increasing integer counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        // Relaxed: monotone reporting-only counter; nothing synchronizes
        // on it and cross-counter snapshot skew is acceptable.
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        // Relaxed: reporting-only read, as above.
        self.0.load(Ordering::Relaxed)
    }
}

/// A monotonically increasing floating-point counter (e.g. seconds of
/// work done).
#[derive(Debug, Clone)]
pub struct FloatCounter(Arc<AtomicU64>);

impl Default for FloatCounter {
    fn default() -> Self {
        Self(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl FloatCounter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `v` (negative, zero, and NaN values are ignored to keep the
    /// counter monotone).
    pub fn add(&self, v: f64) {
        if v.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return;
        }
        // Relaxed CAS loop: reporting-only accumulator over f64 bits;
        // the loop only needs atomicity of the single word, not
        // ordering against other memory.
        let mut current = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + v).to_bits();
            match self
                .0
                .compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(observed) => current = observed,
            }
        }
    }

    /// Adds a duration, in seconds.
    pub fn add_duration(&self, d: Duration) {
        self.add(d.as_secs_f64());
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        // Relaxed: reporting-only read.
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A floating-point gauge: a value that can go up and down (queue
/// depth, last-observed ratio, resident entries).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Default for Gauge {
    fn default() -> Self {
        Self(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value.
    pub fn set(&self, v: f64) {
        // Relaxed: reporting-only gauge; last-writer-wins is fine.
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: f64) {
        // Relaxed CAS loop: single-word accumulator, reporting-only.
        let mut current = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + delta).to_bits();
            match self
                .0
                .compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(observed) => current = observed,
            }
        }
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1.0);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.add(-1.0);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        // Relaxed: reporting-only read.
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramInner {
    /// Upper bounds of the finite buckets, strictly increasing. An
    /// implicit `+Inf` bucket follows.
    bounds: Box<[f64]>,
    /// Per-bucket (non-cumulative) observation counts; `len() ==
    /// bounds.len() + 1`, the last being the `+Inf` overflow bucket.
    counts: Box<[AtomicU64]>,
    /// Sum of all observed values, as f64 bits.
    sum: AtomicU64,
    /// Total number of observations.
    total: AtomicU64,
}

/// A fixed-bucket histogram (Prometheus semantics: cumulative buckets,
/// `_sum`, `_count`).
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

/// Point-in-time view of a histogram, with *cumulative* bucket counts
/// (monotone by construction).
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Finite bucket upper bounds.
    pub bounds: Vec<f64>,
    /// Cumulative counts per finite bound, then the `+Inf` total last;
    /// `len() == bounds.len() + 1`.
    pub cumulative: Vec<u64>,
    /// Sum of observations.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::with_buckets(DEFAULT_LATENCY_BUCKETS)
    }
}

impl Histogram {
    /// Creates a histogram with the default latency buckets.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a histogram with the given finite bucket upper bounds
    /// (must be non-empty and strictly increasing); a `+Inf` bucket is
    /// added implicitly.
    pub fn with_buckets(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let counts = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Self(Arc::new(HistogramInner {
            bounds: bounds.into(),
            counts,
            sum: AtomicU64::new(0f64.to_bits()),
            total: AtomicU64::new(0),
        }))
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let inner = &self.0;
        let idx = inner.bounds.partition_point(|&b| b < v);
        // Relaxed throughout: reporting-only tallies; renderers accept
        // cross-field snapshot skew (bucket/sum/count may momentarily
        // disagree by in-flight observations).
        inner.counts[idx].fetch_add(1, Ordering::Relaxed);
        inner.total.fetch_add(1, Ordering::Relaxed);
        if v > 0.0 {
            let mut current = inner.sum.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(current) + v).to_bits();
                // Relaxed CAS: only single-word atomicity of the sum
                // bits is needed; no ordering against other memory.
                match inner.sum.compare_exchange_weak(
                    current,
                    next,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(observed) => current = observed,
                }
            }
        }
    }

    /// Records a duration, in seconds.
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        // Relaxed: reporting-only read.
        self.0.total.load(Ordering::Relaxed)
    }

    /// Cumulative snapshot (Prometheus bucket semantics).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let inner = &self.0;
        let mut cumulative = Vec::with_capacity(inner.counts.len());
        let mut running = 0u64;
        for c in inner.counts.iter() {
            // Relaxed: reporting-only read; the running sum makes the
            // cumulative vector monotone regardless of skew.
            running += c.load(Ordering::Relaxed);
            cumulative.push(running);
        }
        HistogramSnapshot {
            bounds: inner.bounds.to_vec(),
            cumulative,
            // Relaxed: reporting-only reads; sum/count may skew from
            // the buckets by in-flight observations.
            sum: f64::from_bits(inner.sum.load(Ordering::Relaxed)),
            count: inner.total.load(Ordering::Relaxed),
        }
    }
}

/// The handle kinds a registry entry can hold.
#[derive(Debug, Clone)]
enum Handle {
    Counter(Counter),
    FloatCounter(FloatCounter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Handle {
    fn type_name(&self) -> &'static str {
        match self {
            Handle::Counter(_) | Handle::FloatCounter(_) => "counter",
            Handle::Gauge(_) => "gauge",
            Handle::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug)]
struct Entry {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    handle: Handle,
}

/// A global-free collection of metric handles, rendered on demand in
/// Prometheus text exposition format. Clones share the same underlying
/// collection, so one registry handle can be threaded through
/// independent subsystems.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    entries: Arc<Mutex<Vec<Entry>>>,
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().enumerate().all(|(i, c)| {
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
        })
}

fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Formats an f64 the way Prometheus expects (shortest round-trip
/// decimal; infinities spelled `+Inf`/`-Inf`).
fn fmt_f64(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn attach(&self, name: &str, help: &str, labels: &[(&str, &str)], handle: Handle) {
        assert!(valid_name(name), "invalid metric name '{name}'");
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|&(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let mut entries = self.entries.lock().expect("metrics registry poisoned");
        // Re-attaching the same (name, labels) replaces the old handle:
        // deterministic, and lets a subsystem re-register after restart.
        entries.retain(|e| !(e.name == name && e.labels == labels));
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            labels,
            handle,
        });
    }

    /// Registers an existing counter under `name`.
    pub fn register_counter(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        counter: &Counter,
    ) {
        self.attach(name, help, labels, Handle::Counter(counter.clone()));
    }

    /// Registers an existing float counter under `name`.
    pub fn register_float_counter(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        counter: &FloatCounter,
    ) {
        self.attach(name, help, labels, Handle::FloatCounter(counter.clone()));
    }

    /// Registers an existing gauge under `name`.
    pub fn register_gauge(&self, name: &str, help: &str, labels: &[(&str, &str)], gauge: &Gauge) {
        self.attach(name, help, labels, Handle::Gauge(gauge.clone()));
    }

    /// Registers an existing histogram under `name`.
    pub fn register_histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        histogram: &Histogram,
    ) {
        self.attach(name, help, labels, Handle::Histogram(histogram.clone()));
    }

    /// Returns the histogram registered under `(name, labels)`,
    /// creating and registering one (with `buckets`) on first use —
    /// the idiom for per-label-value families like request latency per
    /// endpoint.
    pub fn histogram_or_register(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        buckets: &[f64],
    ) -> Histogram {
        {
            let entries = self.entries.lock().expect("metrics registry poisoned");
            if let Some(existing) = entries.iter().find_map(|e| match &e.handle {
                Handle::Histogram(h)
                    if e.name == name
                        && e.labels.len() == labels.len()
                        && e.labels
                            .iter()
                            .zip(labels.iter())
                            .all(|((k0, v0), (k1, v1))| k0 == k1 && v0 == v1) =>
                {
                    Some(h.clone())
                }
                _ => None,
            }) {
                return existing;
            }
        }
        let histogram = Histogram::with_buckets(buckets);
        self.attach(name, help, labels, Handle::Histogram(histogram.clone()));
        histogram
    }

    /// Renders every registered metric in Prometheus text exposition
    /// format (version 0.0.4). Metrics sharing a name are grouped under
    /// one `# HELP`/`# TYPE` header, in first-registration order.
    pub fn render(&self) -> String {
        let entries = self.entries.lock().expect("metrics registry poisoned");
        let mut names: Vec<&str> = Vec::new();
        for e in entries.iter() {
            if !names.contains(&e.name.as_str()) {
                names.push(&e.name);
            }
        }
        let mut out = String::new();
        for name in names {
            let group: Vec<&Entry> = entries.iter().filter(|e| e.name == name).collect();
            let first = group[0];
            out.push_str(&format!("# HELP {name} {}\n", first.help));
            out.push_str(&format!("# TYPE {name} {}\n", first.handle.type_name()));
            for entry in group {
                render_entry(&mut out, entry);
            }
        }
        out
    }
}

fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn render_entry(out: &mut String, entry: &Entry) {
    let name = &entry.name;
    match &entry.handle {
        Handle::Counter(c) => {
            out.push_str(&format!(
                "{name}{} {}\n",
                label_block(&entry.labels, None),
                c.get()
            ));
        }
        Handle::FloatCounter(c) => {
            out.push_str(&format!(
                "{name}{} {}\n",
                label_block(&entry.labels, None),
                fmt_f64(c.get())
            ));
        }
        Handle::Gauge(g) => {
            out.push_str(&format!(
                "{name}{} {}\n",
                label_block(&entry.labels, None),
                fmt_f64(g.get())
            ));
        }
        Handle::Histogram(h) => {
            let snap = h.snapshot();
            for (i, &bound) in snap.bounds.iter().enumerate() {
                out.push_str(&format!(
                    "{name}_bucket{} {}\n",
                    label_block(&entry.labels, Some(("le", &fmt_f64(bound)))),
                    snap.cumulative[i]
                ));
            }
            out.push_str(&format!(
                "{name}_bucket{} {}\n",
                label_block(&entry.labels, Some(("le", "+Inf"))),
                snap.cumulative[snap.bounds.len()]
            ));
            out.push_str(&format!(
                "{name}_sum{} {}\n",
                label_block(&entry.labels, None),
                fmt_f64(snap.sum)
            ));
            out.push_str(&format!(
                "{name}_count{} {}\n",
                label_block(&entry.labels, None),
                snap.count
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let clone = c.clone();
        clone.inc();
        assert_eq!(c.get(), 6, "clones share state");

        let g = Gauge::new();
        g.set(3.5);
        g.add(1.0);
        g.dec();
        assert!((g.get() - 3.5).abs() < 1e-12);

        let f = FloatCounter::new();
        f.add(0.25);
        f.add(-1.0); // ignored: counters are monotone
        f.add_duration(Duration::from_millis(750));
        assert!((f.get() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_monotone() {
        let h = Histogram::with_buckets(&[0.1, 1.0, 10.0]);
        for v in [0.05, 0.5, 0.5, 5.0, 50.0] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.cumulative, vec![1, 3, 4, 5]);
        assert_eq!(snap.count, 5);
        assert!((snap.sum - 56.05).abs() < 1e-9);
        assert!(
            snap.cumulative.windows(2).all(|w| w[0] <= w[1]),
            "cumulative counts must be monotone"
        );
        // A value exactly on a bound lands in that bucket (le semantics).
        let edge = Histogram::with_buckets(&[1.0, 2.0]);
        edge.observe(1.0);
        assert_eq!(edge.snapshot().cumulative, vec![1, 1, 1]);
    }

    #[test]
    fn histogram_is_thread_safe() {
        let h = Histogram::with_buckets(&[0.5]);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let h = h.clone();
                scope.spawn(move || {
                    for i in 0..1000 {
                        h.observe(if i % 2 == 0 { 0.1 } else { 0.9 });
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count, 4000);
        assert_eq!(snap.cumulative, vec![2000, 4000]);
    }

    #[test]
    fn render_groups_names_and_escapes_labels() {
        let reg = MetricsRegistry::new();
        let a = Counter::new();
        a.add(7);
        let b = Counter::new();
        b.add(9);
        reg.register_counter(
            "gve_requests_total",
            "Requests.",
            &[("endpoint", "/x\"y")],
            &a,
        );
        reg.register_counter("gve_requests_total", "Requests.", &[("endpoint", "/z")], &b);
        let g = Gauge::new();
        g.set(2.5);
        reg.register_gauge("gve_queue_depth", "Depth.", &[], &g);
        let text = reg.render();
        assert_eq!(
            text.matches("# TYPE gve_requests_total counter").count(),
            1,
            "one TYPE line per family:\n{text}"
        );
        assert!(
            text.contains("gve_requests_total{endpoint=\"/x\\\"y\"} 7"),
            "{text}"
        );
        assert!(text.contains("gve_requests_total{endpoint=\"/z\"} 9"));
        assert!(text.contains("# TYPE gve_queue_depth gauge"));
        assert!(text.contains("gve_queue_depth 2.5"));
    }

    #[test]
    fn render_histogram_prometheus_shape() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram_or_register(
            "gve_latency_seconds",
            "Latency.",
            &[("endpoint", "detect")],
            &[0.01, 0.1],
        );
        h.observe(0.05);
        // Second lookup returns the same underlying histogram.
        let again = reg.histogram_or_register(
            "gve_latency_seconds",
            "Latency.",
            &[("endpoint", "detect")],
            &[0.01, 0.1],
        );
        again.observe(0.002);
        let text = reg.render();
        assert!(text.contains("# TYPE gve_latency_seconds histogram"));
        assert!(text.contains("gve_latency_seconds_bucket{endpoint=\"detect\",le=\"0.01\"} 1"));
        assert!(text.contains("gve_latency_seconds_bucket{endpoint=\"detect\",le=\"0.1\"} 2"));
        assert!(text.contains("gve_latency_seconds_bucket{endpoint=\"detect\",le=\"+Inf\"} 2"));
        assert!(text.contains("gve_latency_seconds_count{endpoint=\"detect\"} 2"));
    }

    #[test]
    fn reattach_replaces_and_names_validate() {
        let reg = MetricsRegistry::new();
        let old = Counter::new();
        old.add(1);
        let new = Counter::new();
        new.add(2);
        reg.register_counter("gve_x_total", "X.", &[], &old);
        reg.register_counter("gve_x_total", "X.", &[], &new);
        let text = reg.render();
        assert!(text.contains("gve_x_total 2"));
        assert!(!text.contains("gve_x_total 1"));
        assert!(valid_name("gve_phase_seconds_total"));
        assert!(!valid_name("9starts_with_digit"));
        assert!(!valid_name("has space"));
        assert!(!valid_name(""));
    }
}
