//! `gve-obs`: a zero-dependency observability substrate.
//!
//! The paper's whole evaluation is built on per-phase/per-pass
//! measurement (Figure 7 runtime splits, Figure 9 strong scaling);
//! diagnosing a parallel community-detection deployment needs the same
//! numbers *at runtime* — pruning hit-rates, aggregation shrink ratios,
//! threshold-scaling schedules, request latencies. This crate provides
//! the plumbing, nothing domain-specific:
//!
//! * [`metrics`] — atomic [`Counter`]/[`FloatCounter`]/[`Gauge`] and
//!   fixed-bucket [`Histogram`] handles, collected by a global-free
//!   [`MetricsRegistry`] that renders Prometheus text exposition
//!   format. Handles are the source of truth (plain `Arc`-backed
//!   atomics, usable from any thread with no registry in sight); the
//!   registry only holds clones for rendering.
//! * [`trace`] — a structured run [`Tracer`] writing JSONL span events
//!   (phase/pass labels, microsecond timestamps and durations), gated
//!   by the `GVE_TRACE` environment variable or an explicit path.
//!
//! No third-party dependencies, no global state, no `unsafe`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod trace;

pub use metrics::{
    Counter, FloatCounter, Gauge, Histogram, MetricsRegistry, DEFAULT_LATENCY_BUCKETS,
};
pub use trace::{Tracer, Value};
