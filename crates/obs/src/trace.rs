//! Structured run tracing: one JSON object per line (JSONL).
//!
//! A [`Tracer`] records *events* — a name plus typed fields — with a
//! microsecond timestamp relative to tracer creation. The algorithm
//! core emits one event per phase of every pass (`phase` events with
//! `pass`, `phase`, `dur_us`) plus per-pass summaries, which is exactly
//! the data behind the paper's Figure 7 runtime split; see
//! `EXPERIMENTS.md` for how to reproduce that split from a trace file.
//!
//! The format is deliberately boring: every line is a flat JSON object
//! with an `event` string and a `ts_us` integer, so `grep` + any JSON
//! parser (including `crates/serve/src/json.rs`) can consume it.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;
use std::time::Instant;

/// The environment variable checked by [`Tracer::from_env`]: when set
/// to a non-empty path, a tracer writing to that path is created.
pub const TRACE_ENV_VAR: &str = "GVE_TRACE";

/// A typed field value in a trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (non-finite values are emitted as `null`).
    F64(f64),
    /// String (JSON-escaped on write).
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) if x.is_finite() => out.push_str(&format!("{x}")),
        Value::F64(_) => out.push_str("null"),
        Value::Str(s) => write_json_string(out, s),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
    }
}

/// A thread-safe JSONL event writer with a monotonic clock.
///
/// Dropping the tracer flushes the underlying writer; I/O errors after
/// construction are swallowed (tracing must never take down a run).
pub struct Tracer {
    start: Instant,
    out: Mutex<BufWriter<Box<dyn Write + Send>>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer").finish_non_exhaustive()
    }
}

impl Tracer {
    /// Creates a tracer writing to (truncating) the file at `path`.
    pub fn to_path(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self::to_writer(Box::new(file)))
    }

    /// Creates a tracer writing to an arbitrary sink (used by tests and
    /// in-memory consumers).
    pub fn to_writer(writer: Box<dyn Write + Send>) -> Self {
        Self {
            start: Instant::now(),
            out: Mutex::new(BufWriter::new(writer)),
        }
    }

    /// Creates a tracer from the `GVE_TRACE` environment variable:
    /// `Some` if the variable names a writable path, `None` if unset or
    /// empty. A set-but-unwritable path is reported on stderr and
    /// treated as unset.
    pub fn from_env() -> Option<Self> {
        let path = std::env::var(TRACE_ENV_VAR).ok()?;
        if path.is_empty() {
            return None;
        }
        match Self::to_path(&path) {
            Ok(tracer) => Some(tracer),
            Err(e) => {
                eprintln!("gve-obs: cannot open {TRACE_ENV_VAR}={path}: {e}");
                None
            }
        }
    }

    /// Microseconds since the tracer was created.
    pub fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    /// Records one event: a line `{"event":name,"ts_us":...,fields...}`.
    ///
    /// Field names must be plain identifiers (they are not escaped);
    /// values are escaped. Duplicate field names and the reserved names
    /// `event`/`ts_us` are the caller's responsibility to avoid.
    pub fn event(&self, name: &str, fields: &[(&str, Value)]) {
        let ts = self.elapsed_us();
        let mut line = String::with_capacity(64 + fields.len() * 24);
        line.push_str("{\"event\":");
        write_json_string(&mut line, name);
        line.push_str(&format!(",\"ts_us\":{ts}"));
        for (key, value) in fields {
            line.push(',');
            line.push('"');
            line.push_str(key);
            line.push_str("\":");
            write_value(&mut line, value);
        }
        line.push_str("}\n");
        if let Ok(mut out) = self.out.lock() {
            let _ = out.write_all(line.as_bytes());
        }
    }

    /// Flushes buffered events to the sink.
    pub fn flush(&self) {
        if let Ok(mut out) = self.out.lock() {
            let _ = out.flush();
        }
    }
}

impl Drop for Tracer {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// A `Write` sink tests can read back after the tracer flushed.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    impl SharedBuf {
        fn contents(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    #[test]
    fn events_are_one_json_object_per_line() {
        let buf = SharedBuf::default();
        let tracer = Tracer::to_writer(Box::new(buf.clone()));
        tracer.event("run_start", &[("vertices", Value::U64(10))]);
        tracer.event(
            "phase",
            &[
                ("pass", Value::U64(0)),
                ("phase", Value::from("local_move")),
                ("dur_us", Value::U64(1234)),
                ("gain", Value::F64(0.5)),
                ("moved", Value::Bool(true)),
            ],
        );
        tracer.flush();
        let text = buf.contents();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"event\":\"run_start\",\"ts_us\":"));
        assert!(lines[0].ends_with(",\"vertices\":10}"));
        assert!(lines[1].contains("\"phase\":\"local_move\""));
        assert!(lines[1].contains("\"gain\":0.5"));
        assert!(lines[1].contains("\"moved\":true"));
    }

    #[test]
    fn strings_are_escaped_and_nonfinite_floats_are_null() {
        let buf = SharedBuf::default();
        let tracer = Tracer::to_writer(Box::new(buf.clone()));
        tracer.event(
            "weird",
            &[
                ("s", Value::from("a\"b\\c\nd\u{1}")),
                ("nan", Value::F64(f64::NAN)),
                ("inf", Value::F64(f64::INFINITY)),
                ("neg", Value::I64(-3)),
            ],
        );
        tracer.flush();
        let text = buf.contents();
        assert!(text.contains("\"s\":\"a\\\"b\\\\c\\nd\\u0001\""));
        assert!(text.contains("\"nan\":null"));
        assert!(text.contains("\"inf\":null"));
        assert!(text.contains("\"neg\":-3"));
    }

    #[test]
    fn drop_flushes() {
        let buf = SharedBuf::default();
        {
            let tracer = Tracer::to_writer(Box::new(buf.clone()));
            tracer.event("end", &[]);
        }
        assert!(buf.contents().contains("\"event\":\"end\""));
    }

    #[test]
    fn tracer_is_share_safe() {
        let buf = SharedBuf::default();
        let tracer = Arc::new(Tracer::to_writer(Box::new(buf.clone())));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let tracer = Arc::clone(&tracer);
                scope.spawn(move || {
                    for i in 0..50 {
                        tracer.event("tick", &[("t", Value::U64(t)), ("i", Value::U64(i))]);
                    }
                });
            }
        });
        tracer.flush();
        assert_eq!(buf.contents().lines().count(), 200);
    }
}
