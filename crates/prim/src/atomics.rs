//! Atomic `f64` built on `AtomicU64` bit manipulation.
//!
//! GVE-Leiden updates the total edge weight of each community (`Σ'`)
//! *asynchronously* from many threads (Algorithm 2, line 12 and
//! Algorithm 3, lines 10–11). Rust has no `AtomicF64`, so we emulate one
//! with compare-and-swap loops over the IEEE-754 bit pattern, exactly as
//! the C++ original does with `#pragma omp atomic` / `atomicCAS`.

use std::sync::atomic::{AtomicU64, Ordering};

/// A `f64` that can be read and updated atomically.
///
/// All operations use [`Ordering::Relaxed`] by default: the Leiden
/// local-moving phase is a heuristic that tolerates stale reads (this is
/// what the paper calls the *asynchronous* variant), so no cross-variable
/// ordering is required. Operations that need stronger guarantees (the
/// refinement phase's isolation CAS) take an explicit ordering.
#[derive(Debug, Default)]
pub struct AtomicF64(AtomicU64);

impl AtomicF64 {
    /// Creates a new atomic with the given initial value.
    #[inline]
    pub fn new(value: f64) -> Self {
        Self(AtomicU64::new(value.to_bits()))
    }

    /// Loads the current value (relaxed).
    #[inline]
    pub fn load(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// Stores a new value (relaxed).
    #[inline]
    pub fn store(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Atomically adds `delta` and returns the previous value.
    ///
    /// Implemented as a CAS loop over the bit pattern; `fetch_update` with
    /// relaxed orderings compiles down to the same `lock cmpxchg` loop the
    /// OpenMP atomic add uses on x86-64.
    #[inline]
    pub fn fetch_add(&self, delta: f64) -> f64 {
        // Relaxed: only the add's atomicity matters — Σ' totals are
        // value-published, with phase joins ordering any readers.
        let mut current = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + delta).to_bits();
            match self
                .0
                .compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(prev) => return f64::from_bits(prev),
                Err(observed) => current = observed,
            }
        }
    }

    /// Atomically subtracts `delta` and returns the previous value.
    #[inline]
    pub fn fetch_sub(&self, delta: f64) -> f64 {
        self.fetch_add(-delta)
    }

    /// Single-shot compare-and-swap on the exact bit pattern.
    ///
    /// This is the `atomicCAS(Σ'[c], K'[i], 0)` of Algorithm 3: the
    /// refinement phase claims an *isolated* vertex by swapping its
    /// community weight from exactly `K'[i]` to `0`. Returns `Ok(old)` on
    /// success and `Err(observed)` on failure, mirroring
    /// [`AtomicU64::compare_exchange`].
    ///
    /// Bit-pattern equality is what we want here: `Σ'[c]` was *stored* as
    /// the same `f64` it is compared against, so no epsilon is needed.
    #[inline]
    pub fn compare_exchange(&self, expected: f64, new: f64) -> Result<f64, f64> {
        match self.0.compare_exchange(
            expected.to_bits(),
            new.to_bits(),
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(prev) => Ok(f64::from_bits(prev)),
            Err(observed) => Err(f64::from_bits(observed)),
        }
    }

    /// Consumes the atomic and returns the inner value.
    #[inline]
    pub fn into_inner(self) -> f64 {
        f64::from_bits(self.0.into_inner())
    }
}

impl From<f64> for AtomicF64 {
    fn from(value: f64) -> Self {
        Self::new(value)
    }
}

impl Clone for AtomicF64 {
    fn clone(&self) -> Self {
        Self::new(self.load())
    }
}

/// Allocates a vector of `n` atomics, all initialized to `value`.
pub fn atomic_f64_vec(n: usize, value: f64) -> Vec<AtomicF64> {
    (0..n).map(|_| AtomicF64::new(value)).collect()
}

/// Copies a plain `f64` slice into a freshly allocated atomic vector.
pub fn atomic_f64_from_slice(values: &[f64]) -> Vec<AtomicF64> {
    values.iter().map(|&v| AtomicF64::new(v)).collect()
}

/// Snapshots an atomic vector back into a plain `Vec<f64>`.
pub fn atomic_f64_snapshot(values: &[AtomicF64]) -> Vec<f64> {
    values.iter().map(AtomicF64::load).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn new_load_store_roundtrip() {
        let a = AtomicF64::new(1.5);
        assert_eq!(a.load(), 1.5);
        a.store(-2.25);
        assert_eq!(a.load(), -2.25);
    }

    #[test]
    fn fetch_add_returns_previous() {
        let a = AtomicF64::new(1.0);
        assert_eq!(a.fetch_add(2.0), 1.0);
        assert_eq!(a.load(), 3.0);
        assert_eq!(a.fetch_sub(0.5), 3.0);
        assert_eq!(a.load(), 2.5);
    }

    #[test]
    fn compare_exchange_succeeds_on_exact_bits() {
        let a = AtomicF64::new(4.25);
        assert_eq!(a.compare_exchange(4.25, 0.0), Ok(4.25));
        assert_eq!(a.load(), 0.0);
    }

    #[test]
    fn compare_exchange_fails_on_mismatch() {
        let a = AtomicF64::new(4.25);
        assert_eq!(a.compare_exchange(4.0, 0.0), Err(4.25));
        assert_eq!(a.load(), 4.25);
    }

    #[test]
    fn compare_exchange_distinguishes_zero_signs() {
        // Bit-pattern CAS treats +0.0 and -0.0 as different, which is the
        // conservative behaviour we rely on: weights are stored, not
        // computed, so the expected pattern always matches exactly.
        let a = AtomicF64::new(0.0);
        assert!(a.compare_exchange(-0.0, 1.0).is_err());
        assert!(a.compare_exchange(0.0, 1.0).is_ok());
    }

    #[test]
    fn concurrent_adds_sum_exactly_with_integral_values() {
        let a = Arc::new(AtomicF64::new(0.0));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let a = Arc::clone(&a);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        a.fetch_add(1.0);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        // Integral doubles up to 2^53 add associatively, so the result is exact.
        assert_eq!(a.load(), 80_000.0);
    }

    #[test]
    fn into_inner_and_clone() {
        let a = AtomicF64::new(7.0);
        let b = a.clone();
        assert_eq!(b.into_inner(), 7.0);
        assert_eq!(a.into_inner(), 7.0);
    }

    #[test]
    fn vector_helpers_roundtrip() {
        let v = atomic_f64_vec(4, 2.0);
        assert_eq!(atomic_f64_snapshot(&v), vec![2.0; 4]);
        let w = atomic_f64_from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(atomic_f64_snapshot(&w), vec![1.0, 2.0, 3.0]);
    }
}
