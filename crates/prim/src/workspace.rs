//! Per-worker scratch buffers.
//!
//! GVE-Leiden allocates one collision-free hashtable per thread, reused
//! across iterations and passes (the `O(T·N)` space term). [`PerThread`]
//! is the ownership story for that: a fixed array of slots, one per rayon
//! worker, each claimed by the worker for the duration of a parallel
//! region. Slots are aligned to cache-line boundaries so the per-thread
//! state is "well separated in memory addresses" as the paper puts it —
//! the headers never false-share (the bulk of each scratch object lives in
//! its own heap allocations anyway).

use std::sync::Mutex;

/// Cache-line-aligned wrapper to keep neighbouring slots off the same line.
#[repr(align(64))]
struct Padded<T>(Mutex<Option<T>>);

/// A pool of lazily created per-worker values of type `T`.
///
/// `with` hands the calling rayon worker exclusive access to "its" slot,
/// creating the value on first use. Access from outside a rayon pool (or
/// from oversubscribed contexts) falls back to an overflow list, so the
/// abstraction is always safe, merely fastest on the happy path.
pub struct PerThread<T> {
    slots: Vec<Padded<T>>,
    overflow: Mutex<Vec<T>>,
    make: Box<dyn Fn() -> T + Send + Sync>,
}

impl<T: Send> PerThread<T> {
    /// Creates a pool sized for the current rayon thread pool, using
    /// `make` to lazily construct each worker's value.
    pub fn new(make: impl Fn() -> T + Send + Sync + 'static) -> Self {
        Self::with_capacity(rayon::current_num_threads(), make)
    }

    /// Creates a pool with an explicit number of fast-path slots.
    pub fn with_capacity(slots: usize, make: impl Fn() -> T + Send + Sync + 'static) -> Self {
        Self {
            slots: (0..slots.max(1))
                .map(|_| Padded(Mutex::new(None)))
                .collect(),
            overflow: Mutex::new(Vec::new()),
            make: Box::new(make),
        }
    }

    /// Runs `f` with exclusive access to this worker's scratch value.
    ///
    /// Do not call `with` reentrantly from within `f` on the same pool —
    /// the inner call would see the slot busy and construct a fresh
    /// overflow value, which is correct but wasteful.
    pub fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let index = rayon::current_thread_index().unwrap_or(0);
        if let Some(slot) = self.slots.get(index) {
            if let Ok(mut guard) = slot.0.try_lock() {
                let value = guard.get_or_insert_with(|| self.pop_overflow());
                return f(value);
            }
        }
        // Slow path: slot busy (nested call / foreign thread). Use a
        // pooled overflow value so repeated slow paths don't reallocate.
        let mut value = self.pop_overflow();
        let result = f(&mut value);
        self.overflow.lock().unwrap().push(value);
        result
    }

    fn pop_overflow(&self) -> T {
        self.overflow
            .lock()
            .unwrap()
            .pop()
            .unwrap_or_else(|| (self.make)())
    }

    /// Mutable sweep over every value materialized so far. The
    /// exclusive borrow guarantees no worker holds a slot concurrently.
    pub fn for_each_mut(&mut self, mut f: impl FnMut(&mut T)) {
        for slot in &mut self.slots {
            if let Some(value) = slot.0.get_mut().expect("slot poisoned").as_mut() {
                f(value);
            }
        }
        for value in self
            .overflow
            .get_mut()
            .expect("overflow poisoned")
            .iter_mut()
        {
            f(value);
        }
    }

    /// Consumes the pool and returns every value that was materialized.
    pub fn into_values(self) -> Vec<T> {
        let mut values: Vec<T> = self
            .slots
            .into_iter()
            .filter_map(|s| s.0.into_inner().unwrap())
            .collect();
        values.extend(self.overflow.into_inner().unwrap());
        values
    }
}

impl<T: Send> std::fmt::Debug for PerThread<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PerThread")
            .field("slots", &self.slots.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn with_reuses_value_on_same_thread() {
        let pool = PerThread::with_capacity(1, Vec::<u32>::new);
        pool.with(|v| v.push(1));
        pool.with(|v| v.push(2));
        let values = pool.into_values();
        assert_eq!(values, vec![vec![1, 2]]);
    }

    #[test]
    fn lazily_constructs_at_most_once_per_worker() {
        let constructed = std::sync::Arc::new(AtomicUsize::new(0));
        let c = std::sync::Arc::clone(&constructed);
        let pool = PerThread::new(move || {
            c.fetch_add(1, Ordering::SeqCst);
            0u64
        });
        (0..10_000usize).into_par_iter().for_each(|_| {
            pool.with(|v| *v += 1);
        });
        let values = pool.into_values();
        assert_eq!(values.iter().sum::<u64>(), 10_000);
        assert!(constructed.load(Ordering::SeqCst) <= rayon::current_num_threads() + 1);
    }

    #[test]
    fn nested_with_falls_back_safely() {
        let pool = PerThread::with_capacity(1, || 0u32);
        pool.with(|outer| {
            *outer += 1;
            // Reentrant call must not deadlock; it gets an overflow value.
            pool.with(|inner| *inner += 10);
        });
        let mut values = pool.into_values();
        values.sort_unstable();
        assert_eq!(values, vec![1, 10]);
    }

    #[test]
    fn overflow_values_are_pooled() {
        let made = std::sync::Arc::new(AtomicUsize::new(0));
        let m = std::sync::Arc::clone(&made);
        let pool = PerThread::with_capacity(1, move || {
            m.fetch_add(1, Ordering::SeqCst);
            0u32
        });
        pool.with(|_| {
            pool.with(|_| {});
            pool.with(|_| {});
        });
        // One slot value + one reused overflow value.
        assert_eq!(made.load(Ordering::SeqCst), 2);
    }
}
