//! Allocation-counting global allocator for the zero-steady-state-
//! allocation benchmarks.
//!
//! The paper's headline engineering discipline is *preallocation*:
//! every per-pass buffer is sized once and reused, so the steady-state
//! hot path performs no heap traffic. This module makes that claim
//! measurable. A binary opts in with
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: gve_prim::alloc_count::CountingAllocator =
//!     gve_prim::alloc_count::CountingAllocator;
//! ```
//!
//! after which [`snapshot`] reads monotone process-wide counters; the
//! difference of two snapshots bounds the allocator traffic of the code
//! between them. Without the `#[global_allocator]` registration the
//! counters stay at zero (the hooks never run) — callers should treat
//! an all-zero snapshot as "not instrumented".
//!
//! All counters use `Relaxed` ordering: they are advisory statistics
//! read at measurement boundaries (after joins), never synchronization.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static DEALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);
static CURRENT: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);
static LARGEST: AtomicU64 = AtomicU64::new(0);

/// A [`GlobalAlloc`] that forwards to [`System`] while counting every
/// allocation, the bytes requested, the live-byte high-water mark, and
/// the largest single request. Zero overhead beyond a handful of
/// relaxed atomic RMWs per allocator call.
pub struct CountingAllocator;

#[inline]
fn record_alloc(size: usize) {
    let size = size as u64;
    ALLOCS.fetch_add(1, Ordering::Relaxed);
    BYTES.fetch_add(size, Ordering::Relaxed);
    LARGEST.fetch_max(size, Ordering::Relaxed);
    let live = CURRENT.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

#[inline]
fn record_dealloc(size: usize) {
    DEALLOCS.fetch_add(1, Ordering::Relaxed);
    // Saturating: a dealloc of memory allocated before the counters
    // were observed cannot drive the live count below zero.
    let _ = CURRENT.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |live| {
        Some(live.saturating_sub(size as u64))
    });
}

// SAFETY: every method forwards verbatim to `System`, which upholds the
// `GlobalAlloc` contract; the counter updates touch only `static`
// atomics and never allocate, recurse, panic, or unwind.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: caller upholds `alloc`'s contract; forwarded as-is.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // SAFETY: caller upholds `alloc`'s contract; forwarded as-is.
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            record_alloc(layout.size());
        }
        ptr
    }

    // SAFETY: caller upholds `alloc_zeroed`'s contract; forwarded as-is.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        // SAFETY: caller upholds `alloc_zeroed`'s contract.
        let ptr = unsafe { System.alloc_zeroed(layout) };
        if !ptr.is_null() {
            record_alloc(layout.size());
        }
        ptr
    }

    // SAFETY: caller guarantees `ptr`/`layout` validity; forwarded as-is.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: caller guarantees `ptr` came from this allocator with
        // this `layout`.
        unsafe { System.dealloc(ptr, layout) };
        record_dealloc(layout.size());
    }

    // SAFETY: caller upholds `realloc`'s contract; forwarded as-is.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // SAFETY: caller guarantees `ptr`/`layout` validity and a
        // non-zero rounded `new_size`, per `realloc`'s contract.
        let new_ptr = unsafe { System.realloc(ptr, layout, new_size) };
        if !new_ptr.is_null() {
            // A grow-in-place still counts: the hot path's contract is
            // "no allocator traffic at all", not "no new blocks".
            record_alloc(new_size);
            record_dealloc(layout.size());
        }
        new_ptr
    }
}

/// Point-in-time reading of the allocator counters.
///
/// `allocs`/`deallocs`/`bytes` are monotone; subtract two snapshots to
/// bound the traffic in between. `peak` and `largest` are high-water
/// marks — reset them with [`reset_watermarks`] before a measured
/// region to scope them to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocSnapshot {
    /// Total successful allocations (including reallocs) so far.
    pub allocs: u64,
    /// Total deallocations so far.
    pub deallocs: u64,
    /// Total bytes requested across all allocations.
    pub bytes: u64,
    /// Bytes currently live.
    pub current: u64,
    /// High-water mark of live bytes.
    pub peak: u64,
    /// Largest single allocation observed.
    pub largest: u64,
}

impl AllocSnapshot {
    /// Allocations performed since `earlier` was taken.
    pub fn allocs_since(&self, earlier: &AllocSnapshot) -> u64 {
        self.allocs.saturating_sub(earlier.allocs)
    }

    /// Bytes requested since `earlier` was taken.
    pub fn bytes_since(&self, earlier: &AllocSnapshot) -> u64 {
        self.bytes.saturating_sub(earlier.bytes)
    }
}

/// Reads the current counters (all zero when no binary registered
/// [`CountingAllocator`] as the global allocator).
pub fn snapshot() -> AllocSnapshot {
    AllocSnapshot {
        allocs: ALLOCS.load(Ordering::Relaxed),
        deallocs: DEALLOCS.load(Ordering::Relaxed),
        bytes: BYTES.load(Ordering::Relaxed),
        current: CURRENT.load(Ordering::Relaxed),
        peak: PEAK.load(Ordering::Relaxed),
        largest: LARGEST.load(Ordering::Relaxed),
    }
}

/// Rebases `peak` to the currently-live byte count and zeroes
/// `largest`, scoping both high-water marks to the region that follows.
pub fn reset_watermarks() {
    PEAK.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
    LARGEST.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    // The test binary does not install the allocator, so the hooks are
    // exercised directly and via snapshot arithmetic. The counters are
    // process-global; a lock keeps the two tests from interleaving.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn record_hooks_track_counts_bytes_and_watermarks() {
        let _guard = LOCK.lock().unwrap();
        let before = snapshot();
        record_alloc(100);
        record_alloc(40);
        record_dealloc(100);
        let after = snapshot();
        assert_eq!(after.allocs_since(&before), 2);
        assert_eq!(after.bytes_since(&before), 140);
        assert_eq!(after.deallocs - before.deallocs, 1);
        assert!(after.largest >= 100);
        assert!(after.peak >= before.current + 140);
    }

    #[test]
    fn dealloc_saturates_instead_of_underflowing() {
        let _guard = LOCK.lock().unwrap();
        record_dealloc(u64::MAX as usize);
        assert_eq!(snapshot().current, 0);
        // Watermark reset rebases peak onto the live count.
        record_alloc(8);
        reset_watermarks();
        let s = snapshot();
        assert_eq!(s.largest, 0);
        assert_eq!(s.peak, s.current);
    }
}
