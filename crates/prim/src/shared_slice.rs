//! Unsynchronized shared mutable slice for provably disjoint writes.
//!
//! Several GVE-Leiden phases write into preallocated arrays from many
//! threads at *disjoint* indices — e.g. compacting a holey CSR, where
//! each vertex owns a distinct destination range computed by prefix sum,
//! or scattering renumbered community ids. Atomics would impose needless
//! ordering; `SharedSlice` exposes raw writes and places the disjointness
//! obligation on the (unsafe) caller, exactly like the C++ original's
//! plain stores into `omp parallel for` partitions.

use std::cell::UnsafeCell;
use std::marker::PhantomData;

/// A `&mut [T]` that may be shared across threads for disjoint-index
/// writes.
///
/// All access is `unsafe`: the caller must guarantee that no index is
/// written by two threads concurrently and that reads do not race with
/// writes to the same index.
pub struct SharedSlice<'a, T> {
    data: *const UnsafeCell<T>,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: SharedSlice is a borrow of `&mut [T]` storage; moving it to
// another thread moves only the pointer, so `T: Send` suffices (as for
// `&mut [T]` itself).
unsafe impl<T: Send> Send for SharedSlice<'_, T> {}
// SAFETY: sharing `&SharedSlice` across threads exposes nothing by
// itself — every read/write is an `unsafe` method whose caller contract
// (disjoint indices, no read/write races) carries the synchronization
// obligation. `T: Send` (not `Sync`) is the right bound because
// distinct threads access *disjoint* elements, exactly as if each had
// been sent its own `&mut T`.
unsafe impl<T: Send> Sync for SharedSlice<'_, T> {}

impl<'a, T> SharedSlice<'a, T> {
    /// Wraps a mutable slice. The borrow keeps the underlying storage
    /// exclusively reachable through this wrapper for `'a`.
    pub fn new(slice: &'a mut [T]) -> Self {
        let len = slice.len();
        // Cast through UnsafeCell to make later aliased writes defined.
        let data = slice.as_mut_ptr() as *const UnsafeCell<T>;
        Self {
            data,
            len,
            _marker: PhantomData,
        }
    }

    /// Length of the wrapped slice.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the wrapped slice is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Writes `value` at `index`.
    ///
    /// # Safety
    /// `index` must be in bounds, and no other thread may access the same
    /// index concurrently.
    #[inline]
    pub unsafe fn write(&self, index: usize, value: T) {
        debug_assert!(index < self.len);
        // SAFETY: caller guarantees bounds and exclusivity for this index.
        unsafe { *UnsafeCell::raw_get(self.data.add(index)) = value };
    }

    /// Reads the value at `index`.
    ///
    /// # Safety
    /// `index` must be in bounds, and no other thread may be writing the
    /// same index concurrently.
    #[inline]
    pub unsafe fn read(&self, index: usize) -> T
    where
        T: Copy,
    {
        debug_assert!(index < self.len);
        // SAFETY: caller guarantees bounds and no concurrent writer.
        unsafe { *UnsafeCell::raw_get(self.data.add(index)) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn disjoint_parallel_writes_land() {
        let n = 100_000;
        let mut buf = vec![0u64; n];
        {
            let shared = SharedSlice::new(&mut buf);
            (0..n).into_par_iter().for_each(|i| {
                // SAFETY: each index written by exactly one task.
                unsafe { shared.write(i, i as u64 * 3) };
            });
        }
        assert!(buf.iter().enumerate().all(|(i, &v)| v == i as u64 * 3));
    }

    #[test]
    fn read_back_sequentially() {
        let mut buf = vec![1u32, 2, 3];
        let shared = SharedSlice::new(&mut buf);
        assert_eq!(shared.len(), 3);
        assert!(!shared.is_empty());
        // SAFETY: single-threaded access.
        unsafe {
            shared.write(1, 9);
            assert_eq!(shared.read(1), 9);
            assert_eq!(shared.read(0), 1);
        }
    }

    #[test]
    fn range_partitioned_writes() {
        // Mimics CSR compaction: each "vertex" owns a distinct range.
        let ranges = [(0usize, 3usize), (3, 4), (4, 9), (9, 10)];
        let mut buf = vec![0u8; 10];
        {
            let shared = SharedSlice::new(&mut buf);
            ranges.par_iter().enumerate().for_each(|(id, &(lo, hi))| {
                for i in lo..hi {
                    // SAFETY: ranges are disjoint.
                    unsafe { shared.write(i, id as u8) };
                }
            });
        }
        assert_eq!(buf, vec![0, 0, 0, 1, 2, 2, 2, 2, 2, 3]);
    }
}
