//! Arc-aware loop scheduling: static, guided, and work-stealing claims.
//!
//! [`crate::parfor::dynamic_workers`] hands out fixed-size *vertex*
//! chunks from one shared cursor. On power-law graphs that is unfair in
//! the dimension that matters: a 2048-vertex chunk of hubs can carry
//! orders of magnitude more arcs than a chunk of leaves, and whoever
//! draws it finishes last while the cursor sits exhausted. This module
//! schedules by *arc mass* instead, using the CSR offset array (a
//! degree prefix sum) that every caller already has:
//!
//! * [`Schedule::Static`] — the parfor behaviour (fixed vertex chunks,
//!   one shared cursor), kept here so all policies share one entry
//!   point and report the same [`SchedStats`];
//! * [`Schedule::Guided`] — OpenMP `schedule(guided)`: each claim takes
//!   `remaining_arcs / (2·workers)` arcs (floored at
//!   [`GUIDED_MIN_ARCS`]), so chunks shrink as the range drains and the
//!   tail self-balances without per-claim tuning;
//! * [`Schedule::Stealing`] — the range is pre-split into one
//!   arc-balanced contiguous segment per worker ([`arc_balanced_bounds`]);
//!   each worker drains its own segment through a private cursor and,
//!   when empty, steals chunks from the victim with the most arcs left.
//!
//! All claim protocols are the saturating compare-exchange of
//! `ChunkClaims` (never advance a cursor past its limit), so every index
//! in `0..len` is claimed exactly once — the property the loom model in
//! `tests/loom.rs` checks under adversarial interleavings.

use std::ops::Range;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Floor on the arc mass of one guided claim. Keeps the tail of the
/// schedule from degenerating into per-vertex cursor traffic once
/// `remaining / (2·workers)` underflows useful sizes.
pub const GUIDED_MIN_ARCS: u64 = 4096;

/// Maximum workers the stealing policy tracks. Cursor state is a
/// stack-resident array (no heap in the phase hot path), so the bound
/// is a compile-time constant; extra rayon threads beyond it share
/// segments, which the claim protocol tolerates.
pub const MAX_WORKERS: usize = 64;

/// Scheduling behaviour for one parallel region.
#[derive(Debug, Clone, Copy)]
pub enum Schedule<'a> {
    /// Fixed-size vertex chunks off one shared cursor.
    Static {
        /// Vertices per claim (clamped to ≥ 1).
        chunk: usize,
    },
    /// Arc-proportional shrinking chunks (OpenMP guided).
    Guided {
        /// CSR offsets: `offsets[v]` = arcs before vertex `v`, length
        /// `len + 1` for a region over `0..len`.
        offsets: &'a [u64],
    },
    /// Arc-balanced per-worker segments with steal-on-empty.
    Stealing {
        /// CSR offsets, as for `Guided`.
        offsets: &'a [u64],
        /// Vertices per claim within a segment (clamped to ≥ 1).
        chunk: usize,
    },
}

/// Counters describing how a scheduled region executed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Chunks claimed (all policies).
    pub chunks: u64,
    /// Chunks claimed from another worker's segment (stealing only).
    pub steals: u64,
}

impl SchedStats {
    /// Element-wise accumulation, for folding per-iteration stats into a
    /// per-pass total.
    pub fn merge(&mut self, other: SchedStats) {
        self.chunks += other.chunks;
        self.steals += other.steals;
    }
}

/// Cache-line-padded cursor: each stealing segment's cursor lives on
/// its own line so owners don't false-share with thieves.
#[repr(align(64))]
#[derive(Debug)]
struct PaddedCursor(AtomicUsize);

/// Saturating chunk claim on `cursor`, bounded by `hi`: claims
/// `start..end` only while `start < hi`, so the cursor never exceeds
/// the limit (same protocol as `ChunkClaims` in `parfor`).
#[inline]
fn claim_chunk(cursor: &AtomicUsize, hi: usize, chunk: usize) -> Option<Range<usize>> {
    // Relaxed: the cursor carries no payload — claimed ranges index
    // data published before the broadcast fork, and the fork/join
    // provides all cross-thread ordering.
    let mut start = cursor.load(Ordering::Relaxed);
    loop {
        if start >= hi {
            return None;
        }
        let end = (start + chunk).min(hi);
        // Relaxed CX: see the ordering note above.
        match cursor.compare_exchange_weak(start, end, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return Some(start..end),
            Err(observed) => start = observed,
        }
    }
}

/// Splits `0..len` into `workers` contiguous segments of approximately
/// equal arc mass, computed from the degree prefix sum `offsets`
/// (length `len + 1`). Returns the `workers + 1` boundary array (only
/// the first `workers + 1` entries are meaningful) and the effective
/// worker count after clamping to `[1, MAX_WORKERS]`.
///
/// The boundaries partition the range exactly: `bounds[0] == 0`,
/// `bounds[workers] == len`, and the sequence is non-decreasing — the
/// property the adversarial-degree proptest in `tests/` checks.
pub fn arc_balanced_bounds(
    offsets: &[u64],
    len: usize,
    workers: usize,
) -> ([usize; MAX_WORKERS + 1], usize) {
    debug_assert!(
        offsets.len() == len + 1,
        "offsets must be a len+1 prefix sum"
    );
    let w = workers.clamp(1, MAX_WORKERS);
    let mut bounds = [0usize; MAX_WORKERS + 1];
    let base = offsets.first().copied().unwrap_or(0);
    let total = offsets.get(len).copied().unwrap_or(base) - base;
    for (i, bound) in bounds.iter_mut().enumerate().take(w + 1).skip(1) {
        // Target arc prefix for worker i's start, with u128 math so
        // total · i cannot overflow.
        let goal = base + ((total as u128 * i as u128) / w as u128) as u64;
        // First vertex whose prefix reaches the goal.
        *bound = offsets[..=len].partition_point(|&o| o < goal).min(len);
        if i == w {
            *bound = len;
        }
    }
    // Zero-degree runs can make partition points collapse; restore
    // monotonicity so segments never overlap.
    for i in 1..=w {
        if bounds[i] < bounds[i - 1] {
            bounds[i] = bounds[i - 1];
        }
    }
    (bounds, w)
}

enum ClaimsInner<'a> {
    Static {
        cursor: &'a AtomicUsize,
        len: usize,
        chunk: usize,
    },
    Guided {
        cursor: &'a AtomicUsize,
        len: usize,
        offsets: &'a [u64],
        workers: usize,
    },
    Stealing {
        cursors: &'a [PaddedCursor],
        bounds: &'a [usize],
        offsets: &'a [u64],
        me: usize,
        chunk: usize,
    },
}

/// Iterator over the index ranges one worker claims from a scheduled
/// region. Yielded ranges across all workers partition `0..len`.
pub struct Claims<'a> {
    inner: ClaimsInner<'a>,
    chunks: &'a AtomicU64,
    steals: &'a AtomicU64,
}

impl Claims<'_> {
    fn next_range(&mut self) -> Option<(Range<usize>, bool)> {
        match &mut self.inner {
            ClaimsInner::Static { cursor, len, chunk } => {
                claim_chunk(cursor, *len, *chunk).map(|r| (r, false))
            }
            ClaimsInner::Guided {
                cursor,
                len,
                offsets,
                workers,
            } => {
                let len = *len;
                // Relaxed: cursor ordering note in `claim_chunk`.
                let mut start = cursor.load(Ordering::Relaxed);
                loop {
                    if start >= len {
                        return None;
                    }
                    // Guided sizing: half the remaining arc mass shared
                    // across workers, floored so the tail stays coarse.
                    let remaining = offsets[len] - offsets[start];
                    let target = (remaining / (2 * *workers as u64)).max(GUIDED_MIN_ARCS);
                    let goal = offsets[start].saturating_add(target);
                    // Smallest end > start whose prefix reaches the
                    // goal; a hub vertex alone may overshoot, which the
                    // `start + 1` base turns into guaranteed progress.
                    let rel = offsets[start + 1..=len].partition_point(|&o| o < goal);
                    let end = (start + 1 + rel).min(len);
                    // Relaxed CX: cursor ordering note in `claim_chunk`.
                    match cursor.compare_exchange_weak(
                        start,
                        end,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => return Some((start..end, false)),
                        Err(observed) => start = observed,
                    }
                }
            }
            ClaimsInner::Stealing {
                cursors,
                bounds,
                offsets,
                me,
                chunk,
            } => {
                let me = *me;
                // Own segment first.
                if let Some(r) = claim_chunk(&cursors[me].0, bounds[me + 1], *chunk) {
                    return Some((r, false));
                }
                // Steal from the victim with the most arcs left.
                loop {
                    let mut victim = None;
                    let mut richest = 0u64;
                    for v in 0..cursors.len() {
                        if v == me {
                            continue;
                        }
                        let hi = bounds[v + 1];
                        // Relaxed: advisory richness estimate only; the
                        // claim itself re-validates via the CX protocol.
                        let pos = cursors[v].0.load(Ordering::Relaxed).min(hi);
                        let left = offsets[hi] - offsets[pos];
                        if left > richest || (left > 0 && victim.is_none()) {
                            richest = left;
                            victim = Some(v);
                        }
                    }
                    let v = victim?;
                    if let Some(r) = claim_chunk(&cursors[v].0, bounds[v + 1], *chunk) {
                        return Some((r, true));
                    }
                    // Lost the race to the owner or another thief:
                    // re-scan for the next-richest victim.
                }
            }
        }
    }
}

impl Iterator for Claims<'_> {
    type Item = Range<usize>;

    #[inline]
    fn next(&mut self) -> Option<Range<usize>> {
        let (range, stolen) = self.next_range()?;
        // Relaxed: advisory telemetry counters, read after the join.
        self.chunks.fetch_add(1, Ordering::Relaxed);
        if stolen {
            self.steals.fetch_add(1, Ordering::Relaxed);
        }
        Some(range)
    }
}

/// Runs `worker` once on every rayon worker thread, each pulling claims
/// of `0..len` under the given schedule until the range is exhausted.
/// Returns each worker's result plus the region's scheduling counters.
///
/// The arc-aware policies require `offsets.len() == len + 1` (the CSR
/// prefix-sum contract); `Static` ignores offsets entirely and matches
/// [`crate::parfor::dynamic_workers`] claim-for-claim.
pub fn scheduled_workers<R, F>(
    len: usize,
    schedule: Schedule<'_>,
    worker: F,
) -> (Vec<R>, SchedStats)
where
    F: Fn(Claims<'_>) -> R + Sync,
    R: Send,
{
    let chunks = AtomicU64::new(0);
    let steals = AtomicU64::new(0);
    let results = match schedule {
        Schedule::Static { chunk } => {
            let chunk = chunk.max(1);
            let cursor = AtomicUsize::new(0);
            rayon::broadcast(|_| {
                worker(Claims {
                    inner: ClaimsInner::Static {
                        cursor: &cursor,
                        len,
                        chunk,
                    },
                    chunks: &chunks,
                    steals: &steals,
                })
            })
        }
        Schedule::Guided { offsets } => {
            debug_assert!(
                offsets.len() == len + 1,
                "offsets must be a len+1 prefix sum"
            );
            let workers = rayon::current_num_threads().max(1);
            let cursor = AtomicUsize::new(0);
            rayon::broadcast(|_| {
                worker(Claims {
                    inner: ClaimsInner::Guided {
                        cursor: &cursor,
                        len,
                        offsets,
                        workers,
                    },
                    chunks: &chunks,
                    steals: &steals,
                })
            })
        }
        Schedule::Stealing { offsets, chunk } => {
            let chunk = chunk.max(1);
            let (bounds, w) = arc_balanced_bounds(offsets, len, rayon::current_num_threads());
            // Segment cursors start at their segment's lower bound;
            // stack-resident so the phase loop stays allocation-free.
            let cursors: [PaddedCursor; MAX_WORKERS] = std::array::from_fn(|v| {
                PaddedCursor(AtomicUsize::new(if v < w { bounds[v] } else { len }))
            });
            rayon::broadcast(|ctx| {
                worker(Claims {
                    inner: ClaimsInner::Stealing {
                        cursors: &cursors[..w],
                        bounds: &bounds[..=w],
                        offsets,
                        me: ctx.index() % w,
                        chunk,
                    },
                    chunks: &chunks,
                    steals: &steals,
                })
            })
        }
    };
    (
        results,
        SchedStats {
            // Relaxed: post-join read-back — the broadcast/scope above
            // already published every worker's counter increments.
            chunks: chunks.load(Ordering::Relaxed),
            steals: steals.load(Ordering::Relaxed),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Degree sequence → CSR-style prefix sum (len + 1 entries).
    fn prefix(degrees: &[u64]) -> Vec<u64> {
        let mut offsets = Vec::with_capacity(degrees.len() + 1);
        let mut acc = 0u64;
        offsets.push(0);
        for &d in degrees {
            acc += d;
            offsets.push(acc);
        }
        offsets
    }

    fn assert_exactly_once(len: usize, schedule: Schedule<'_>) -> SchedStats {
        let counts: Vec<AtomicU64> = (0..len).map(|_| AtomicU64::new(0)).collect();
        let (_, stats) = scheduled_workers(len, schedule, |claims| {
            for range in claims {
                for i in range {
                    counts[i].fetch_add(1, Ordering::Relaxed);
                }
            }
        });
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "index {i}");
        }
        stats
    }

    #[test]
    fn static_policy_covers_exactly_once() {
        let stats = assert_exactly_once(10_007, Schedule::Static { chunk: 97 });
        assert!(stats.chunks >= 103, "10_007/97 chunks minimum");
        assert_eq!(stats.steals, 0);
    }

    #[test]
    fn guided_policy_covers_exactly_once() {
        let degrees: Vec<u64> = (0u64..5_000).map(|i| (i % 17) + 1).collect();
        let offsets = prefix(&degrees);
        let stats = assert_exactly_once(5_000, Schedule::Guided { offsets: &offsets });
        assert!(stats.chunks > 0);
        assert_eq!(stats.steals, 0);
    }

    #[test]
    fn stealing_policy_covers_exactly_once() {
        // Heavy hub head: the first worker's segment is tiny in
        // vertices, so everyone else's segments get stolen from under
        // multi-thread pools.
        let mut degrees = vec![1u64; 8_000];
        degrees[0] = 100_000;
        degrees[1] = 50_000;
        let offsets = prefix(&degrees);
        let stats = assert_exactly_once(
            8_000,
            Schedule::Stealing {
                offsets: &offsets,
                chunk: 64,
            },
        );
        assert!(stats.chunks > 0);
    }

    #[test]
    fn zero_length_regions_run_nothing() {
        let offsets = [0u64];
        for schedule in [
            Schedule::Static { chunk: 8 },
            Schedule::Guided { offsets: &offsets },
            Schedule::Stealing {
                offsets: &offsets,
                chunk: 8,
            },
        ] {
            let touched = AtomicU64::new(0);
            let (_, stats) = scheduled_workers(0, schedule, |claims| {
                for range in claims {
                    touched.fetch_add(range.len() as u64, Ordering::Relaxed);
                }
            });
            assert_eq!(touched.load(Ordering::Relaxed), 0);
            assert_eq!(stats.chunks, 0);
        }
    }

    #[test]
    fn guided_chunks_shrink_with_remaining_arcs() {
        // Uniform degrees, arcs ≫ GUIDED_MIN_ARCS: the first claim must
        // be strictly larger than a late claim.
        let degrees = vec![64u64; 100_000];
        let offsets = prefix(&degrees);
        let sizes = std::sync::Mutex::new(Vec::new());
        scheduled_workers(100_000, Schedule::Guided { offsets: &offsets }, |claims| {
            for range in claims {
                sizes.lock().unwrap().push(range.len());
            }
        });
        let sizes = sizes.into_inner().unwrap();
        assert!(sizes.len() > 2, "expected a multi-chunk schedule");
        let first = sizes[0];
        let last = *sizes.last().unwrap();
        assert!(
            first > last,
            "guided chunks should shrink: first={first} last={last}"
        );
        assert_eq!(sizes.iter().sum::<usize>(), 100_000);
    }

    #[test]
    fn guided_single_hub_claim_still_progresses() {
        // One vertex owning more arcs than the whole guided target must
        // be claimable on its own.
        let degrees = [1_000_000u64, 1, 1, 1];
        let offsets = prefix(&degrees);
        assert_exactly_once(4, Schedule::Guided { offsets: &offsets });
    }

    #[test]
    fn bounds_partition_the_range() {
        let degrees: Vec<u64> = (0..1_000)
            .map(|i| if i % 100 == 0 { 5_000 } else { 2 })
            .collect();
        let offsets = prefix(&degrees);
        for workers in [1, 2, 3, 7, 16, 64, 200] {
            let (bounds, w) = arc_balanced_bounds(&offsets, 1_000, workers);
            assert_eq!(bounds[0], 0);
            assert_eq!(bounds[w], 1_000);
            for i in 1..=w {
                assert!(bounds[i] >= bounds[i - 1], "workers={workers} i={i}");
            }
        }
    }

    #[test]
    fn bounds_balance_arcs_not_vertices() {
        // 10 hubs of degree 10_000 then 10_000 leaves of degree 1: with
        // two workers the split point must fall just after the hubs,
        // not at the vertex midpoint.
        let mut degrees = vec![10_000u64; 10];
        degrees.extend(vec![1u64; 10_000]);
        let offsets = prefix(&degrees);
        let (bounds, w) = arc_balanced_bounds(&offsets, degrees.len(), 2);
        assert_eq!(w, 2);
        assert!(
            bounds[1] < 100,
            "split {} should sit in the hub head",
            bounds[1]
        );
    }

    #[test]
    fn stealing_two_worker_sequential_run_has_exact_counts() {
        // Drive the claim protocol deterministically: two workers over
        // eight uniform vertices, worker 0 drained to exhaustion before
        // worker 1 starts. Worker 0 takes its own segment in two chunks,
        // then steals worker 1's segment in two more; worker 1 finds
        // nothing left. Exact counts, not bounds.
        let degrees = vec![1u64; 8];
        let offsets = prefix(&degrees);
        let (bounds, w) = arc_balanced_bounds(&offsets, 8, 2);
        assert_eq!(w, 2);
        assert_eq!(&bounds[..=2], &[0, 4, 8]);
        let cursors = [
            PaddedCursor(AtomicUsize::new(bounds[0])),
            PaddedCursor(AtomicUsize::new(bounds[1])),
        ];
        let chunks = AtomicU64::new(0);
        let steals = AtomicU64::new(0);
        let claims_for = |me: usize| Claims {
            inner: ClaimsInner::Stealing {
                cursors: &cursors,
                bounds: &bounds[..=2],
                offsets: &offsets,
                me,
                chunk: 2,
            },
            chunks: &chunks,
            steals: &steals,
        };
        let first: Vec<Range<usize>> = claims_for(0).collect();
        assert_eq!(first, vec![0..2, 2..4, 4..6, 6..8]);
        let second: Vec<Range<usize>> = claims_for(1).collect();
        assert!(second.is_empty(), "{second:?}");
        assert_eq!(chunks.load(Ordering::Relaxed), 4);
        assert_eq!(steals.load(Ordering::Relaxed), 2, "both 4..6 and 6..8");
    }

    #[test]
    fn guided_chunk_sizes_are_monotonically_nonincreasing() {
        // A single sequential driver sees the pure guided shrink curve:
        // each claim takes remaining/(2·workers) arcs, so with uniform
        // degrees sizes never grow, bottoming out at the
        // GUIDED_MIN_ARCS floor.
        let degrees = vec![64u64; 50_000];
        let offsets = prefix(&degrees);
        let cursor = AtomicUsize::new(0);
        let chunks = AtomicU64::new(0);
        let steals = AtomicU64::new(0);
        let claims = Claims {
            inner: ClaimsInner::Guided {
                cursor: &cursor,
                len: 50_000,
                offsets: &offsets,
                workers: 2,
            },
            chunks: &chunks,
            steals: &steals,
        };
        let sizes: Vec<usize> = claims.map(|r| r.len()).collect();
        assert!(sizes.len() > 3, "expected a multi-chunk schedule");
        for pair in sizes.windows(2) {
            assert!(
                pair[0] >= pair[1],
                "guided sizes grew: {} then {} in {sizes:?}",
                pair[0],
                pair[1]
            );
        }
        // The floor: every mid-schedule chunk carries at least
        // GUIDED_MIN_ARCS arcs (64 arcs per vertex here).
        for &size in &sizes[..sizes.len() - 1] {
            assert!(size as u64 * 64 >= GUIDED_MIN_ARCS, "{sizes:?}");
        }
        assert_eq!(sizes.iter().sum::<usize>(), 50_000);
        assert_eq!(chunks.load(Ordering::Relaxed), sizes.len() as u64);
        assert_eq!(steals.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn zero_degree_tail_is_still_owned() {
        // Trailing isolated vertices have flat prefix sums; they must
        // still land inside the final segment.
        let degrees = [5u64, 5, 0, 0, 0];
        let offsets = prefix(&degrees);
        let (bounds, w) = arc_balanced_bounds(&offsets, 5, 4);
        assert_eq!(bounds[w], 5);
        assert_exactly_once(
            5,
            Schedule::Stealing {
                offsets: &offsets,
                chunk: 2,
            },
        );
    }
}
