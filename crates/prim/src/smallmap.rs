//! Fixed-capacity stack-resident scan map — the low-degree tier of the
//! two-tier "kernel v2" neighbourhood scan.
//!
//! The collision-free [`CommunityMap`](crate::CommunityMap) buys O(1)
//! insert at the price of an O(N)-slot backing array per thread: every
//! scan of a degree-`d` vertex touches up to `d` cache lines scattered
//! across that array. For the overwhelming majority of vertices in
//! power-law graphs `d` is tiny, and a *linear* map over at most
//! [`SMALL_SCAN_CAP`] entries that lives entirely on the worker's stack
//! beats the big table: every probe walks the same handful of cache
//! lines, nothing is heap-resident, and clearing is a single length
//! reset. Hubs (degree > threshold) keep using the big table.
//!
//! Each entry carries an auxiliary `f64` slot (`aux`) so the fused
//! scan-and-choose kernel can cache the community's `Σ'` value loaded on
//! first touch — the "single sigma load per candidate" part of the
//! kernel-v2 design.

/// Capacity of [`SmallScanMap`]: the maximum number of *distinct* keys a
/// single scan may touch. A vertex of degree ≤ `SMALL_SCAN_CAP` can
/// never overflow the map, so degree is the dispatch criterion.
///
/// 64 entries × (4 + 8 + 8) bytes ≈ 1.3 KiB — comfortably stack-sized,
/// about 20 cache lines.
pub const SMALL_SCAN_CAP: usize = 64;

/// Fixed-capacity linear-probe accumulator map from `u32` keys to
/// weights, with one cached auxiliary value per key.
///
/// Lookup is a linear scan over the live prefix; insertion appends.
/// Intended for key sets bounded by [`SMALL_SCAN_CAP`] (enforced with a
/// debug assertion — callers dispatch on vertex degree).
#[derive(Debug, Clone)]
pub struct SmallScanMap {
    len: usize,
    /// Slot of the most recent hit — checked first on the next lookup.
    /// Neighbour lists cluster by community (especially after cache-aware
    /// relabeling and in later passes), so consecutive edges usually land
    /// on the same key and skip the linear search entirely.
    last: usize,
    keys: [u32; SMALL_SCAN_CAP],
    weights: [f64; SMALL_SCAN_CAP],
    aux: [f64; SMALL_SCAN_CAP],
}

impl Default for SmallScanMap {
    fn default() -> Self {
        Self::new()
    }
}

impl SmallScanMap {
    /// Creates an empty map. Cheap: no heap allocation.
    pub fn new() -> Self {
        Self {
            len: 0,
            last: 0,
            keys: [0; SMALL_SCAN_CAP],
            weights: [0.0; SMALL_SCAN_CAP],
            aux: [0.0; SMALL_SCAN_CAP],
        }
    }

    /// Number of live keys.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no key is live.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Resets the map. O(1): just the length (and the hit memo).
    #[inline]
    pub fn clear(&mut self) {
        self.len = 0;
        self.last = 0;
    }

    /// Adds `weight` to `key`'s accumulator, returning the key's slot
    /// index and whether this was the key's first touch (in which case
    /// the slot's aux value is reset to 0).
    ///
    /// # Panics
    /// Debug-asserts that a fresh key still fits ([`SMALL_SCAN_CAP`]).
    #[inline]
    pub fn add(&mut self, key: u32, weight: f64) -> (usize, bool) {
        if self.last < self.len && self.keys[self.last] == key {
            self.weights[self.last] += weight;
            return (self.last, false);
        }
        for slot in 0..self.len {
            if self.keys[slot] == key {
                self.weights[slot] += weight;
                self.last = slot;
                return (slot, false);
            }
        }
        let slot = self.len;
        debug_assert!(
            slot < SMALL_SCAN_CAP,
            "SmallScanMap overflow: dispatch must bound distinct keys by degree"
        );
        self.keys[slot] = key;
        self.weights[slot] = weight;
        self.aux[slot] = 0.0;
        self.len = slot + 1;
        self.last = slot;
        (slot, true)
    }

    /// Accumulated weight at `slot`.
    #[inline]
    pub fn weight_at(&self, slot: usize) -> f64 {
        debug_assert!(slot < self.len);
        self.weights[slot]
    }

    /// Auxiliary value at `slot` (0 until [`SmallScanMap::set_aux`]).
    #[inline]
    pub fn aux_at(&self, slot: usize) -> f64 {
        debug_assert!(slot < self.len);
        self.aux[slot]
    }

    /// Stores an auxiliary value for `slot` (the fused kernel caches the
    /// community's Σ' here on first touch).
    #[inline]
    pub fn set_aux(&mut self, slot: usize, value: f64) {
        debug_assert!(slot < self.len);
        self.aux[slot] = value;
    }

    /// Accumulated weight for `key`, or `None` if untouched.
    #[inline]
    pub fn get(&self, key: u32) -> Option<f64> {
        (0..self.len)
            .find(|&slot| self.keys[slot] == key)
            .map(|slot| self.weights[slot])
    }

    /// Accumulated weight for `key`, `0.0` if untouched.
    #[inline]
    pub fn weight(&self, key: u32) -> f64 {
        self.get(key).unwrap_or(0.0)
    }

    /// Iterates over live `(key, weight)` pairs in insertion order —
    /// the same iteration contract as
    /// [`CommunityMap::iter`](crate::CommunityMap::iter).
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        (0..self.len).map(move |slot| (self.keys[slot], self.weights[slot]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_accumulates_like_community_map() {
        let mut m = SmallScanMap::new();
        assert!(m.is_empty());
        let (s3, first) = m.add(3, 1.0);
        assert!(first);
        let (s3b, again) = m.add(3, 2.5);
        assert!(!again);
        assert_eq!(s3, s3b);
        m.add(5, 4.0);
        assert_eq!(m.get(3), Some(3.5));
        assert_eq!(m.get(5), Some(4.0));
        assert_eq!(m.get(4), None);
        assert_eq!(m.weight(4), 0.0);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn aux_is_per_slot_and_reset_on_first_touch() {
        let mut m = SmallScanMap::new();
        let (slot, _) = m.add(7, 1.0);
        assert_eq!(m.aux_at(slot), 0.0);
        m.set_aux(slot, 9.5);
        let (slot2, first) = m.add(7, 1.0);
        assert_eq!((slot, false), (slot2, first));
        assert_eq!(m.aux_at(slot), 9.5, "aux survives re-adds");
        m.clear();
        let (slot3, _) = m.add(8, 1.0);
        assert_eq!(
            m.aux_at(slot3),
            0.0,
            "aux resets across clear via first touch"
        );
    }

    #[test]
    fn iter_preserves_insertion_order() {
        let mut m = SmallScanMap::new();
        m.add(9, 1.0);
        m.add(0, 2.0);
        m.add(9, 1.0);
        m.add(4, 3.0);
        let pairs: Vec<_> = m.iter().collect();
        assert_eq!(pairs, vec![(9, 2.0), (0, 2.0), (4, 3.0)]);
    }

    #[test]
    fn clear_is_constant_time_reset() {
        let mut m = SmallScanMap::new();
        for k in 0..SMALL_SCAN_CAP as u32 {
            m.add(k, 1.0);
        }
        assert_eq!(m.len(), SMALL_SCAN_CAP);
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.get(0), None);
        m.add(63, 2.0);
        assert_eq!(m.get(63), Some(2.0));
    }

    #[test]
    fn full_capacity_is_usable() {
        let mut m = SmallScanMap::new();
        for k in 0..SMALL_SCAN_CAP as u32 {
            m.add(k, k as f64);
        }
        for k in 0..SMALL_SCAN_CAP as u32 {
            assert_eq!(m.get(k), Some(k as f64));
        }
    }

    #[test]
    fn zero_weight_keys_are_live() {
        let mut m = SmallScanMap::new();
        m.add(1, 0.0);
        assert_eq!(m.get(1), Some(0.0));
        assert_eq!(m.len(), 1);
    }
}
