//! Fixed-capacity stack-resident scan map — the low-degree tier of the
//! two-tier "kernel v2" neighbourhood scan.
//!
//! The collision-free [`CommunityMap`](crate::CommunityMap) buys O(1)
//! insert at the price of an O(N)-slot backing array per thread: every
//! scan of a degree-`d` vertex touches up to `d` cache lines scattered
//! across that array. For the overwhelming majority of vertices in
//! power-law graphs `d` is tiny, and a *linear* map over at most
//! [`SMALL_SCAN_CAP`] entries that lives entirely on the worker's stack
//! beats the big table: every probe walks the same handful of cache
//! lines, nothing is heap-resident, and clearing is a single length
//! reset. Hubs (degree > threshold) keep using the big table.
//!
//! Each entry carries an auxiliary `f64` slot (`aux`) so the fused
//! scan-and-choose kernel can cache the community's `Σ'` value loaded on
//! first touch — the "single sigma load per candidate" part of the
//! kernel-v2 design.

/// Capacity of [`SmallScanMap`]: the maximum number of *distinct* keys a
/// single scan may touch. A vertex of degree ≤ `SMALL_SCAN_CAP` can
/// never overflow the map, so degree is the dispatch criterion.
///
/// 64 entries × (4 + 8 + 8) bytes ≈ 1.3 KiB — comfortably stack-sized,
/// about 20 cache lines.
pub const SMALL_SCAN_CAP: usize = 64;

/// Fixed-capacity linear-probe accumulator map from `u32` keys to
/// weights, with one cached auxiliary value per key.
///
/// Lookup is a linear scan over the live prefix; insertion appends.
/// Intended for key sets bounded by [`SMALL_SCAN_CAP`] (enforced with a
/// debug assertion — callers dispatch on vertex degree).
#[derive(Debug, Clone)]
pub struct SmallScanMap {
    len: usize,
    /// Slot of the most recent hit — checked first on the next lookup.
    /// Neighbour lists cluster by community (especially after cache-aware
    /// relabeling and in later passes), so consecutive edges usually land
    /// on the same key and skip the linear search entirely.
    last: usize,
    keys: [u32; SMALL_SCAN_CAP],
    weights: [f64; SMALL_SCAN_CAP],
    aux: [f64; SMALL_SCAN_CAP],
}

impl Default for SmallScanMap {
    fn default() -> Self {
        Self::new()
    }
}

impl SmallScanMap {
    /// Creates an empty map. Cheap: no heap allocation.
    pub fn new() -> Self {
        Self {
            len: 0,
            last: 0,
            keys: [0; SMALL_SCAN_CAP],
            weights: [0.0; SMALL_SCAN_CAP],
            aux: [0.0; SMALL_SCAN_CAP],
        }
    }

    /// Number of live keys.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no key is live.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Resets the map. O(1): just the length (and the hit memo).
    #[inline]
    pub fn clear(&mut self) {
        self.len = 0;
        self.last = 0;
    }

    /// Adds `weight` to `key`'s accumulator, returning the key's slot
    /// index and whether this was the key's first touch (in which case
    /// the slot's aux value is reset to 0).
    ///
    /// # Panics
    /// Debug-asserts that a fresh key still fits ([`SMALL_SCAN_CAP`]).
    #[inline]
    pub fn add(&mut self, key: u32, weight: f64) -> (usize, bool) {
        if self.last < self.len && self.keys[self.last] == key {
            self.weights[self.last] += weight;
            return (self.last, false);
        }
        for slot in 0..self.len {
            if self.keys[slot] == key {
                self.weights[slot] += weight;
                self.last = slot;
                return (slot, false);
            }
        }
        let slot = self.len;
        debug_assert!(
            slot < SMALL_SCAN_CAP,
            "SmallScanMap overflow: dispatch must bound distinct keys by degree"
        );
        self.keys[slot] = key;
        self.weights[slot] = weight;
        self.aux[slot] = 0.0;
        self.len = slot + 1;
        self.last = slot;
        (slot, true)
    }

    /// Accumulated weight at `slot`.
    #[inline]
    pub fn weight_at(&self, slot: usize) -> f64 {
        debug_assert!(slot < self.len);
        self.weights[slot]
    }

    /// Auxiliary value at `slot` (0 until [`SmallScanMap::set_aux`]).
    #[inline]
    pub fn aux_at(&self, slot: usize) -> f64 {
        debug_assert!(slot < self.len);
        self.aux[slot]
    }

    /// Stores an auxiliary value for `slot` (the fused kernel caches the
    /// community's Σ' here on first touch).
    #[inline]
    pub fn set_aux(&mut self, slot: usize, value: f64) {
        debug_assert!(slot < self.len);
        self.aux[slot] = value;
    }

    /// Accumulated weight for `key`, or `None` if untouched.
    #[inline]
    pub fn get(&self, key: u32) -> Option<f64> {
        (0..self.len)
            .find(|&slot| self.keys[slot] == key)
            .map(|slot| self.weights[slot])
    }

    /// Accumulated weight for `key`, `0.0` if untouched.
    #[inline]
    pub fn weight(&self, key: u32) -> f64 {
        self.get(key).unwrap_or(0.0)
    }

    /// Live keys in insertion order.
    #[inline]
    pub fn keys(&self) -> &[u32] {
        &self.keys[..self.len]
    }

    /// Live accumulated weights, parallel to [`SmallScanMap::keys`].
    #[inline]
    pub fn weights(&self) -> &[f64] {
        &self.weights[..self.len]
    }

    /// Iterates over live `(key, weight)` pairs in insertion order —
    /// the same iteration contract as
    /// [`CommunityMap::iter`](crate::CommunityMap::iter).
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        (0..self.len).map(move |slot| (self.keys[slot], self.weights[slot]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_accumulates_like_community_map() {
        let mut m = SmallScanMap::new();
        assert!(m.is_empty());
        let (s3, first) = m.add(3, 1.0);
        assert!(first);
        let (s3b, again) = m.add(3, 2.5);
        assert!(!again);
        assert_eq!(s3, s3b);
        m.add(5, 4.0);
        assert_eq!(m.get(3), Some(3.5));
        assert_eq!(m.get(5), Some(4.0));
        assert_eq!(m.get(4), None);
        assert_eq!(m.weight(4), 0.0);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn aux_is_per_slot_and_reset_on_first_touch() {
        let mut m = SmallScanMap::new();
        let (slot, _) = m.add(7, 1.0);
        assert_eq!(m.aux_at(slot), 0.0);
        m.set_aux(slot, 9.5);
        let (slot2, first) = m.add(7, 1.0);
        assert_eq!((slot, false), (slot2, first));
        assert_eq!(m.aux_at(slot), 9.5, "aux survives re-adds");
        m.clear();
        let (slot3, _) = m.add(8, 1.0);
        assert_eq!(
            m.aux_at(slot3),
            0.0,
            "aux resets across clear via first touch"
        );
    }

    #[test]
    fn iter_preserves_insertion_order() {
        let mut m = SmallScanMap::new();
        m.add(9, 1.0);
        m.add(0, 2.0);
        m.add(9, 1.0);
        m.add(4, 3.0);
        let pairs: Vec<_> = m.iter().collect();
        assert_eq!(pairs, vec![(9, 2.0), (0, 2.0), (4, 3.0)]);
    }

    #[test]
    fn clear_is_constant_time_reset() {
        let mut m = SmallScanMap::new();
        for k in 0..SMALL_SCAN_CAP as u32 {
            m.add(k, 1.0);
        }
        assert_eq!(m.len(), SMALL_SCAN_CAP);
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.get(0), None);
        m.add(63, 2.0);
        assert_eq!(m.get(63), Some(2.0));
    }

    #[test]
    fn full_capacity_is_usable() {
        let mut m = SmallScanMap::new();
        for k in 0..SMALL_SCAN_CAP as u32 {
            m.add(k, k as f64);
        }
        for k in 0..SMALL_SCAN_CAP as u32 {
            assert_eq!(m.get(k), Some(k as f64));
        }
    }

    #[test]
    fn zero_weight_keys_are_live() {
        let mut m = SmallScanMap::new();
        m.add(1, 0.0);
        assert_eq!(m.get(1), Some(0.0));
        assert_eq!(m.len(), 1);
    }
}

/// Capacity of [`HashScanMap`]: the maximum number of *distinct* keys a
/// single scan may touch. The dispatch threshold is user-configurable up
/// to this cap, so the map must stay correct at full occupancy: its hash
/// index has [`HASH_SLOTS`] (= 2×) slots, guaranteeing a free slot — and
/// hence probe termination — even with all 64 entries live.
pub const HASH_SCAN_CAP: usize = 64;

/// Power-of-two hash-slot count of [`HashScanMap`]'s open-addressed
/// index. Twice [`HASH_SCAN_CAP`] keeps the load factor ≤ 1/2 at full
/// entry occupancy, so every probe sequence reaches a free slot and
/// terminates — including lookups for absent keys on a full map.
pub const HASH_SLOTS: usize = 2 * HASH_SCAN_CAP;

/// Stack-resident open-addressing accumulator map — the kernel-v3
/// low-degree scan tier.
///
/// [`SmallScanMap`]'s linear probe costs O(live) compares per edge,
/// which is quadratic over a row whose neighbours all sit in distinct
/// communities (exactly the first local-moving iteration, where every
/// membership is a singleton). This map keeps the same three dense,
/// insertion-ordered arrays (`keys`/`weights`/`aux` — the choose pass
/// folds straight over them as parallel slices) but finds a key's slot
/// through a half-loaded 128-slot open-addressed index in O(1) probes,
/// like the big [`CommunityMap`](crate::CommunityMap) table — without
/// that table's O(N) heap arrays, scattered clears, or choose-time
/// gathers.
///
/// The aux slot is filled by the `aux_of` callback on a key's first
/// touch; kernel v3 uses it to issue each candidate's `Σ'` load during
/// the edge scan, while there are still misses to hide behind.
#[derive(Debug, Clone)]
pub struct HashScanMap {
    len: usize,
    /// Hash slot → dense entry index + 1; 0 marks a free slot.
    idx: [u8; HASH_SLOTS],
    /// Dense entry → its hash slot, for O(live) clearing.
    hslot: [u8; HASH_SCAN_CAP],
    keys: [u32; HASH_SCAN_CAP],
    weights: [f64; HASH_SCAN_CAP],
    aux: [f64; HASH_SCAN_CAP],
}

impl Default for HashScanMap {
    fn default() -> Self {
        Self::new()
    }
}

impl HashScanMap {
    /// Creates an empty map. Cheap: no heap allocation.
    pub fn new() -> Self {
        Self {
            len: 0,
            idx: [0; HASH_SLOTS],
            hslot: [0; HASH_SCAN_CAP],
            keys: [0; HASH_SCAN_CAP],
            weights: [0.0; HASH_SCAN_CAP],
            aux: [0.0; HASH_SCAN_CAP],
        }
    }

    /// Multiply-shift hash to a slot index: avalanches clustered
    /// community ids (post-aggregation ids are dense) across the table.
    #[inline]
    fn slot_of(key: u32) -> usize {
        (key.wrapping_mul(0x9E37_79B9) >> 25) as usize
    }

    /// Number of live keys.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no key is live.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Adds `weight` to `key`'s accumulator; on the key's first touch,
    /// fills its aux slot with `aux_of(key)`.
    ///
    /// Callers must keep the distinct-key count at or below
    /// [`HASH_SCAN_CAP`] — the kernel dispatches on vertex degree, whose
    /// configurable threshold is validated against the cap, so a
    /// degree-≤64 vertex can fill the map completely. That is safe: the
    /// slot index holds [`HASH_SLOTS`] = 2× entries, so even a full map
    /// keeps free slots and every probe loop (insert *and* absent-key
    /// lookup) terminates. A fresh key past the cap is a caller bug:
    /// debug builds assert, release builds hit the dense arrays' bounds
    /// check.
    #[inline]
    pub fn add_with<F: FnOnce(u32) -> f64>(&mut self, key: u32, weight: f64, aux_of: F) {
        let mut h = Self::slot_of(key);
        loop {
            let d = self.idx[h] as usize;
            if d == 0 {
                let e = self.len;
                debug_assert!(
                    e < HASH_SCAN_CAP,
                    "HashScanMap overflow: dispatch must bound distinct keys by degree"
                );
                self.idx[h] = (e + 1) as u8;
                self.hslot[e] = h as u8;
                self.keys[e] = key;
                self.weights[e] = weight;
                self.aux[e] = aux_of(key);
                self.len = e + 1;
                return;
            }
            if self.keys[d - 1] == key {
                self.weights[d - 1] += weight;
                return;
            }
            h = (h + 1) & (HASH_SLOTS - 1);
        }
    }

    /// Accumulated weight for `key`, `0.0` if untouched.
    #[inline]
    pub fn weight(&self, key: u32) -> f64 {
        let mut h = Self::slot_of(key);
        loop {
            let d = self.idx[h] as usize;
            if d == 0 {
                return 0.0;
            }
            if self.keys[d - 1] == key {
                return self.weights[d - 1];
            }
            h = (h + 1) & (HASH_SLOTS - 1);
        }
    }

    /// Live keys in insertion order.
    #[inline]
    pub fn keys(&self) -> &[u32] {
        &self.keys[..self.len]
    }

    /// Live accumulated weights, parallel to [`HashScanMap::keys`].
    #[inline]
    pub fn weights(&self) -> &[f64] {
        &self.weights[..self.len]
    }

    /// Live aux values, parallel to [`HashScanMap::keys`].
    #[inline]
    pub fn aux(&self) -> &[f64] {
        &self.aux[..self.len]
    }

    /// Resets the map in O(live) stack stores.
    #[inline]
    pub fn clear(&mut self) {
        for e in 0..self.len {
            self.idx[self.hslot[e] as usize] = 0;
        }
        self.len = 0;
    }
}

#[cfg(test)]
mod hash_tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn accumulates_and_matches_model() {
        let mut m = HashScanMap::new();
        let mut model: HashMap<u32, f64> = HashMap::new();
        // Adversarial ids: stride-64 clusters that collide under cheap
        // masks, 48 distinct keys (below the 64-entry capacity).
        let ops: Vec<(u32, f64)> = (0..200u32)
            .map(|i| ((i % 48) * 64 + (i % 3), 0.5 + (i % 7) as f64))
            .collect();
        for &(k, w) in &ops {
            m.add_with(k, w, |_| 0.0);
            *model.entry(k).or_insert(0.0) += w;
        }
        assert_eq!(m.len(), model.len());
        for (&k, &w) in &model {
            assert!((m.weight(k) - w).abs() < 1e-9, "key {k}");
        }
        assert_eq!(m.weight(999_999), 0.0, "absent key reads zero");
    }

    #[test]
    fn aux_computed_once_on_first_touch() {
        let mut m = HashScanMap::new();
        let mut calls = 0;
        m.add_with(7, 1.0, |_| {
            calls += 1;
            42.0
        });
        m.add_with(7, 2.0, |_| {
            calls += 1;
            -1.0
        });
        assert_eq!(calls, 1, "aux_of runs only on first touch");
        assert_eq!(m.keys(), &[7]);
        assert_eq!(m.weights(), &[3.0]);
        assert_eq!(m.aux(), &[42.0]);
    }

    /// Regression: a degree-64 vertex whose neighbours all sit in
    /// distinct communities (the normal first local-moving iteration
    /// over singleton memberships, with `small_degree_threshold` at the
    /// cap) fills the map completely, and the kernel then looks up the
    /// vertex's own — absent — community. With a slot table equal in
    /// size to the entry count that lookup never terminated; the 2×
    /// slot table guarantees a free slot ends the probe.
    #[test]
    fn full_occupancy_absent_lookup_terminates() {
        let mut m = HashScanMap::new();
        for k in 0..HASH_SCAN_CAP as u32 {
            m.add_with(k * 64, 1.0 + k as f64, |key| key as f64);
        }
        assert_eq!(m.len(), HASH_SCAN_CAP);
        for k in 0..HASH_SCAN_CAP as u32 {
            assert_eq!(m.weight(k * 64), 1.0 + k as f64, "key {}", k * 64);
        }
        assert_eq!(m.weight(7), 0.0, "absent key on a full map reads zero");
        // Accumulating into an existing key of a full map is also legal.
        m.add_with(0, 2.0, |_| -1.0);
        assert_eq!(m.weight(0), 3.0);
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.weight(0), 0.0);
    }

    #[test]
    fn clear_forgets_everything() {
        let mut m = HashScanMap::new();
        for k in 0..(HASH_SCAN_CAP - 1) as u32 {
            m.add_with(k, 1.0, |_| 1.0);
        }
        assert_eq!(m.len(), HASH_SCAN_CAP - 1);
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.weight(3), 0.0);
        m.add_with(3, 2.5, |_| 0.5);
        assert_eq!(m.keys(), &[3]);
        assert_eq!(m.weights(), &[2.5]);
        assert_eq!(m.aux(), &[0.5]);
    }

    #[test]
    fn insertion_order_is_preserved() {
        let mut m = HashScanMap::new();
        for &k in &[90, 5, 33, 5, 90, 2] {
            m.add_with(k, 1.0, |_| 0.0);
        }
        assert_eq!(m.keys(), &[90, 5, 33, 2]);
    }
}
