//! Fast xorshift32 pseudo-random number generator.
//!
//! The paper's randomized refinement variant selects the target community
//! with probability proportional to its delta-modularity "using fast
//! xorshift32 random number generators" (§4.1). This is Marsaglia's
//! 13/17/5 xorshift with period 2³² − 1.

/// Marsaglia xorshift32 generator. Not cryptographic; cheap and good
/// enough for Monte-Carlo style community selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Xorshift32 {
    state: u32,
}

impl Xorshift32 {
    /// Creates a generator from a seed. A zero seed (which would be a
    /// fixed point of the recurrence) is remapped to a nonzero constant.
    #[inline]
    pub fn new(seed: u32) -> Self {
        Self {
            state: if seed == 0 { 0x9E37_79B9 } else { seed },
        }
    }

    /// Next raw 32-bit output (never zero).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        self.state = x;
        x
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 32 bits of entropy is plenty for proportional selection.
        (self.next_u32() as f64) / (u32::MAX as f64 + 1.0)
    }

    /// Uniform integer in `[0, bound)`. `bound` must be nonzero.
    #[inline]
    pub fn next_bounded(&mut self, bound: u32) -> u32 {
        debug_assert!(bound > 0);
        // Multiply-shift bounded sampling (Lemire); tiny bias is fine here.
        ((self.next_u32() as u64 * bound as u64) >> 32) as u32
    }

    /// Picks an index from `weights` with probability proportional to each
    /// nonnegative weight. Entries that are not finite or not positive are
    /// treated as zero. Returns `None` when the total weight is zero.
    ///
    /// This implements the original Leiden's proportional community
    /// selection over the candidate deltas collected in the hashtable.
    pub fn pick_proportional(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
        if total <= 0.0 {
            return None;
        }
        let mut target = self.next_f64() * total;
        let mut last_positive = None;
        for (i, &w) in weights.iter().enumerate() {
            if w.is_finite() && w > 0.0 {
                last_positive = Some(i);
                target -= w;
                if target < 0.0 {
                    return Some(i);
                }
            }
        }
        // Floating-point slack can leave target ≈ 0 after the loop.
        last_positive
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_remapped() {
        let mut a = Xorshift32::new(0);
        let mut b = Xorshift32::new(0x9E37_79B9);
        assert_eq!(a.next_u32(), b.next_u32());
        assert_ne!(a.next_u32(), 0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = Xorshift32::new(42);
        let mut b = Xorshift32::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn known_xorshift32_sequence() {
        // First output for seed 1 under the 13/17/5 triple.
        let mut r = Xorshift32::new(1);
        let x = r.next_u32();
        assert_eq!(x, 270_369);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Xorshift32::new(7);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn bounded_stays_in_bounds_and_covers() {
        let mut r = Xorshift32::new(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = r.next_bounded(5);
            assert!(v < 5);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn proportional_pick_empirical_distribution() {
        let mut r = Xorshift32::new(1234);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        let n = 40_000;
        for _ in 0..n {
            counts[r.pick_proportional(&weights).unwrap()] += 1;
        }
        assert_eq!(counts[1], 0);
        let frac2 = counts[2] as f64 / n as f64;
        assert!((frac2 - 0.75).abs() < 0.02, "frac2 = {frac2}");
    }

    #[test]
    fn proportional_pick_none_when_no_positive_weight() {
        let mut r = Xorshift32::new(9);
        assert_eq!(r.pick_proportional(&[]), None);
        assert_eq!(r.pick_proportional(&[0.0, -1.0, f64::NAN]), None);
    }

    #[test]
    fn proportional_pick_single_candidate() {
        let mut r = Xorshift32::new(9);
        assert_eq!(r.pick_proportional(&[0.0, 2.5, 0.0]), Some(1));
    }
}
