//! Lane-chunked candidate evaluation — the "choose" half of kernel v3.
//!
//! Kernel v1 interleaves, per candidate community, a `Σ'` load with the
//! score evaluation and the running argmax, all inside one serial loop
//! whose iterations chain through the comparison. Kernel v3's low-degree
//! tier removes the scattered loads from the choose pass entirely: each
//! candidate's `Σ'` is *prefetched* into the scan map's aux slot on
//! first touch (while the edge scan still has misses to hide behind), so
//! [`choose_prefetched`] folds over three parallel dense slices in
//! lane-sized blocks of [`LANES`] candidates — a branch-free
//! multiply/subtract the compiler autovectorizes, then a cheap
//! in-register argmax reduction. [`fold_candidates`] keeps the
//! gather-at-choose-time variant (the same blocks, with the `Σ'` loads
//! issued per block) as the slice-folding reference. The arithmetic is
//! *exactly* v1's `GainCoeffs::score` with the vertex-constant
//! `quad · p_i` factor hoisted:
//! `score = lin · K_{i→c} − (quad · p_i) · Σ'_c`, which is bit-identical
//! because `quad * p_i * sigma` already associates left-to-right in the
//! scalar kernel.
//!
//! The `scalar-scan` cargo feature replaces the lane-blocked fold with a
//! plain per-candidate loop using the same arithmetic, giving a
//! differential-testing baseline and an escape hatch for targets where
//! the blocked form pessimizes. Both paths must (and are tested to)
//! produce bit-identical choices.

use crate::atomics::AtomicF64;

/// Candidates evaluated per block: wide enough to fill two AVX2 `f64`
/// vectors and to keep eight independent `Σ'` loads in flight, small
/// enough that the gather buffers live in registers / one cache line.
pub const LANES: usize = 8;

/// The winning candidate of a choose pass: its community id, the
/// accumulated edge weight `K_{i→c}` towards it, and the `Σ'` value the
/// score was computed from (callers feed both into the gain formula).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Choice {
    /// Winning community id.
    pub key: u32,
    /// Accumulated `K_{i→key}`.
    pub weight: f64,
    /// The `Σ'_key` value loaded during evaluation.
    pub sigma: f64,
}

/// Running argmax state, foldable over any number of candidate blocks.
///
/// Selection rule — identical to kernel v1's `choose_best`: maximum
/// score, ties broken towards the smaller community id. Because every
/// candidate key appears at most once and its score is a pure function
/// of the inputs, the winner is independent of fold order.
#[derive(Debug, Clone, Copy)]
pub struct RunningBest {
    found: bool,
    key: u32,
    score: f64,
    weight: f64,
    sigma: f64,
}

impl Default for RunningBest {
    fn default() -> Self {
        Self::new()
    }
}

impl RunningBest {
    /// Empty state: no candidate seen yet.
    #[inline]
    pub fn new() -> Self {
        Self {
            found: false,
            key: u32::MAX,
            score: f64::NEG_INFINITY,
            weight: 0.0,
            sigma: 0.0,
        }
    }

    /// Offers one candidate to the running argmax.
    #[inline]
    fn offer(&mut self, key: u32, score: f64, weight: f64, sigma: f64) {
        if !self.found || score > self.score || (score == self.score && key < self.key) {
            *self = Self {
                found: true,
                key,
                score,
                weight,
                sigma,
            };
        }
    }

    /// The winner, or `None` if no candidate was ever offered (all keys
    /// matched `skip`, or the slices were empty).
    #[inline]
    pub fn finish(self) -> Option<Choice> {
        self.found.then_some(Choice {
            key: self.key,
            weight: self.weight,
            sigma: self.sigma,
        })
    }
}

/// Folds one candidate through the scalar score path. Shared by the
/// lane tail, the `scalar-scan` build, and the reference implementation.
#[inline]
fn fold_one(
    best: &mut RunningBest,
    key: u32,
    weight: f64,
    skip: u32,
    lin: f64,
    qp: f64,
    sigma: &[AtomicF64],
) {
    if key == skip {
        return;
    }
    let sig = sigma[key as usize].load();
    let score = lin * weight - qp * sig;
    best.offer(key, score, weight, sig);
}

/// Reference fold: one candidate at a time, v1 loop shape. Always
/// compiled (the differential tests pit it against the lane path).
pub fn fold_candidates_scalar(
    best: &mut RunningBest,
    keys: &[u32],
    weights: &[f64],
    skip: u32,
    lin: f64,
    qp: f64,
    sigma: &[AtomicF64],
) {
    let len = keys.len().min(weights.len());
    for k in 0..len {
        fold_one(best, keys[k], weights[k], skip, lin, qp, sigma);
    }
}

/// Folds a block of candidates into `best`, lane-chunked.
///
/// `keys[k]` pairs with `weights[k]` (`K_{i→keys[k]}`); every key must
/// index into `sigma`. `skip` (the vertex's current community) is
/// excluded from the argmax, exactly as v1 skips it. `lin` and `qp` are
/// `GainCoeffs::lin` and `quad · p_i`.
#[cfg(not(feature = "scalar-scan"))]
pub fn fold_candidates(
    best: &mut RunningBest,
    keys: &[u32],
    weights: &[f64],
    skip: u32,
    lin: f64,
    qp: f64,
    sigma: &[AtomicF64],
) {
    let len = keys.len().min(weights.len());
    let keys = &keys[..len];
    let weights = &weights[..len];
    let mut sig = [0.0f64; LANES];
    let mut score = [0.0f64; LANES];
    let mut idx = 0;
    while idx + LANES <= len {
        // Gather: eight independent Σ' loads, no serial dependence.
        for k in 0..LANES {
            sig[k] = sigma[keys[idx + k] as usize].load();
        }
        // Evaluate: branch-free over the whole block (autovectorizes).
        for k in 0..LANES {
            score[k] = lin * weights[idx + k] - qp * sig[k];
        }
        // Reduce: in-register argmax with v1's exact tie-break.
        for k in 0..LANES {
            let key = keys[idx + k];
            if key != skip {
                best.offer(key, score[k], weights[idx + k], sig[k]);
            }
        }
        idx += LANES;
    }
    for k in idx..len {
        fold_one(best, keys[k], weights[k], skip, lin, qp, sigma);
    }
}

/// `scalar-scan` build: the fold is the reference loop.
#[cfg(feature = "scalar-scan")]
pub fn fold_candidates(
    best: &mut RunningBest,
    keys: &[u32],
    weights: &[f64],
    skip: u32,
    lin: f64,
    qp: f64,
    sigma: &[AtomicF64],
) {
    fold_candidates_scalar(best, keys, weights, skip, lin, qp, sigma);
}

/// Reference prefetched fold: per-candidate loop over slices whose `Σ'`
/// values were gathered during the edge scan. Always compiled (the
/// differential tests pit it against the lane path).
pub fn fold_prefetched_scalar(
    best: &mut RunningBest,
    keys: &[u32],
    weights: &[f64],
    sig: &[f64],
    skip: u32,
    lin: f64,
    qp: f64,
) {
    let len = keys.len().min(weights.len()).min(sig.len());
    for k in 0..len {
        if keys[k] != skip {
            let score = lin * weights[k] - qp * sig[k];
            best.offer(keys[k], score, weights[k], sig[k]);
        }
    }
}

/// Folds candidates whose `Σ'` values were already gathered — the
/// kernel-v3 stack tier caches each candidate's `Σ'` in its map's aux
/// slot on first touch *during* the edge scan, so this pass reads three
/// parallel dense slices: the score block is branch-free arithmetic the
/// compiler autovectorizes, and the serial argmax only walks registers.
/// Same arithmetic, same tie-break as [`fold_candidates`].
#[cfg(not(feature = "scalar-scan"))]
pub fn fold_prefetched(
    best: &mut RunningBest,
    keys: &[u32],
    weights: &[f64],
    sig: &[f64],
    skip: u32,
    lin: f64,
    qp: f64,
) {
    let len = keys.len().min(weights.len()).min(sig.len());
    let keys = &keys[..len];
    let weights = &weights[..len];
    let sig = &sig[..len];
    let mut score = [0.0f64; LANES];
    let mut idx = 0;
    while idx + LANES <= len {
        // Evaluate: branch-free over the whole block (autovectorizes).
        for k in 0..LANES {
            score[k] = lin * weights[idx + k] - qp * sig[idx + k];
        }
        // Reduce: in-register argmax with v1's exact tie-break.
        for k in 0..LANES {
            let key = keys[idx + k];
            if key != skip {
                best.offer(key, score[k], weights[idx + k], sig[idx + k]);
            }
        }
        idx += LANES;
    }
    for k in idx..len {
        if keys[k] != skip {
            let s = lin * weights[k] - qp * sig[k];
            best.offer(keys[k], s, weights[k], sig[k]);
        }
    }
}

/// `scalar-scan` build: the prefetched fold is the reference loop.
#[cfg(feature = "scalar-scan")]
pub fn fold_prefetched(
    best: &mut RunningBest,
    keys: &[u32],
    weights: &[f64],
    sig: &[f64],
    skip: u32,
    lin: f64,
    qp: f64,
) {
    fold_prefetched_scalar(best, keys, weights, sig, skip, lin, qp);
}

/// One-shot prefetched choose over parallel candidate slices (the
/// low-degree path: keys, weights, and cached `Σ'` all sit in the stack
/// scan map).
pub fn choose_prefetched(
    keys: &[u32],
    weights: &[f64],
    sig: &[f64],
    skip: u32,
    lin: f64,
    qp: f64,
) -> Option<Choice> {
    let mut best = RunningBest::new();
    fold_prefetched(&mut best, keys, weights, sig, skip, lin, qp);
    best.finish()
}

/// One-shot choose over parallel candidate slices (the low-degree path:
/// the whole candidate set already sits in the stack scan map).
pub fn choose_from_slices(
    keys: &[u32],
    weights: &[f64],
    skip: u32,
    lin: f64,
    qp: f64,
    sigma: &[AtomicF64],
) -> Option<Choice> {
    let mut best = RunningBest::new();
    fold_candidates(&mut best, keys, weights, skip, lin, qp, sigma);
    best.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atomics::atomic_f64_from_slice;

    fn choose_scalar(
        keys: &[u32],
        weights: &[f64],
        skip: u32,
        lin: f64,
        qp: f64,
        sigma: &[AtomicF64],
    ) -> Option<Choice> {
        let mut best = RunningBest::new();
        fold_candidates_scalar(&mut best, keys, weights, skip, lin, qp, sigma);
        best.finish()
    }

    #[test]
    fn empty_candidates_yield_none() {
        let sigma = atomic_f64_from_slice(&[1.0; 4]);
        assert_eq!(choose_from_slices(&[], &[], 0, 1.0, 0.5, &sigma), None);
    }

    #[test]
    fn all_skipped_yields_none() {
        let sigma = atomic_f64_from_slice(&[1.0; 4]);
        assert_eq!(choose_from_slices(&[2], &[3.0], 2, 1.0, 0.5, &sigma), None);
    }

    #[test]
    fn picks_max_score_with_tie_to_smaller_key() {
        // lin=1, qp=0 ⇒ score = weight. Keys 5 and 1 tie on weight.
        let sigma = atomic_f64_from_slice(&[0.0; 8]);
        let got = choose_from_slices(&[5, 1, 3], &[2.0, 2.0, 1.0], 7, 1.0, 0.0, &sigma);
        assert_eq!(
            got,
            Some(Choice {
                key: 1,
                weight: 2.0,
                sigma: 0.0
            })
        );
    }

    #[test]
    fn sigma_penalty_flips_winner() {
        // Key 0 has more weight but a huge Σ'; key 1 wins on score.
        let sigma = atomic_f64_from_slice(&[100.0, 1.0]);
        let got = choose_from_slices(&[0, 1], &[5.0, 4.0], 9, 1.0, 1.0, &sigma).unwrap();
        assert_eq!(got.key, 1);
        assert_eq!(got.sigma, 1.0);
    }

    #[test]
    fn tail_shorter_than_lanes_is_covered() {
        // 11 candidates: one full block of 8 plus a tail of 3, with the
        // overall winner sitting in the tail.
        let keys: Vec<u32> = (0..11).collect();
        let mut weights = vec![1.0f64; 11];
        weights[10] = 9.0;
        let sigma = atomic_f64_from_slice(&[0.0; 11]);
        let got = choose_from_slices(&keys, &weights, 99, 1.0, 0.0, &sigma).unwrap();
        assert_eq!(got.key, 10);
        assert_eq!(got.weight, 9.0);
    }

    #[test]
    fn blockwise_fold_matches_one_shot() {
        // Hub path shape: fold the same candidates in two chunks.
        let keys: Vec<u32> = (0..20).collect();
        let weights: Vec<f64> = (0..20).map(|k| ((k * 7) % 13) as f64).collect();
        let sigma = atomic_f64_from_slice(&(0..20).map(|k| (k % 5) as f64).collect::<Vec<_>>());
        let whole = choose_from_slices(&keys, &weights, 3, 0.25, 0.125, &sigma);
        let mut best = RunningBest::new();
        fold_candidates(&mut best, &keys[..9], &weights[..9], 3, 0.25, 0.125, &sigma);
        fold_candidates(&mut best, &keys[9..], &weights[9..], 3, 0.25, 0.125, &sigma);
        assert_eq!(best.finish(), whole);
    }

    #[test]
    fn lanes_match_scalar_reference_exactly() {
        // Deterministic pseudo-random candidate sets across lengths that
        // exercise full blocks, tails, and the skip key in every slot.
        let mut state = 0x9e3779b9u32;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 17;
            state ^= state << 5;
            state
        };
        for len in 0..40usize {
            let keys: Vec<u32> = (0..len).map(|_| next() % 64).collect();
            // Dedup keys (the kernel contract): keep first occurrence.
            let mut seen = [false; 64];
            let keys: Vec<u32> = keys
                .into_iter()
                .filter(|&k| !std::mem::replace(&mut seen[k as usize], true))
                .collect();
            let weights: Vec<f64> = keys.iter().map(|_| (next() % 1000) as f64 / 17.0).collect();
            let sigma_vals: Vec<f64> = (0..64).map(|_| (next() % 1000) as f64 / 3.0).collect();
            let sigma = atomic_f64_from_slice(&sigma_vals);
            for &skip in &[0u32, 5, 63, 99] {
                let a = choose_from_slices(&keys, &weights, skip, 0.01, 0.003, &sigma);
                let b = choose_scalar(&keys, &weights, skip, 0.01, 0.003, &sigma);
                assert_eq!(a, b, "len={} skip={skip}", keys.len());
            }
        }
    }
}
