//! Parallel primitives underpinning the GVE-Leiden reproduction.
//!
//! The paper's implementation leans on a small set of building blocks that
//! are independent of the Leiden algorithm itself:
//!
//! * [`scan`] — sequential and parallel exclusive/inclusive prefix sums,
//!   used to build CSR offset arrays during the aggregation phase
//!   (Algorithm 4, lines 3–4 and 8–9 of the paper);
//! * [`hashtable`] — the *collision-free per-thread hashtable* (`H_t` in
//!   Algorithms 2–4): a direct-indexed accumulator with a touched-key list,
//!   giving O(1) insert/lookup and O(touched) clear;
//! * [`atomics`] — an atomic `f64` add/CAS built on `AtomicU64` bit games,
//!   used for the asynchronously updated community weights `Σ'`;
//! * [`smallmap`] — a fixed-capacity, stack-resident linear map: the
//!   low-degree tier of the kernel-v2 two-tier neighbourhood scan;
//! * [`bitset`] — an atomic bitset used for flag-based vertex pruning;
//! * [`rng`] — the xorshift32 generator the paper uses for randomized
//!   refinement;
//! * [`workspace`] — per-worker scratch buffers sized once per pass (the
//!   `O(T·N)` memory term in the paper's space complexity);
//! * [`parfor`] — helpers approximating OpenMP's `schedule(dynamic, chunk)`
//!   on top of rayon;
//! * [`sched`] — arc-aware scheduling policies (guided shrinking chunks
//!   and work-stealing over arc-balanced segments) for the phase loops;
//! * [`simd`] — lane-chunked candidate scoring, the "choose" half of
//!   kernel v3 (scalar fallback behind the `scalar-scan` feature);
//! * [`alloc_count`] — an allocation-counting global allocator that lets
//!   the benchmarks prove the preallocation discipline (zero steady-state
//!   allocation in the Leiden hot path).

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod alloc_count;
pub mod atomics;
pub mod bitset;
pub mod hashtable;
pub mod parfor;
pub mod rng;
pub mod scan;
pub mod sched;
pub mod shared_slice;
pub mod simd;
pub mod smallmap;
pub mod workspace;

pub use alloc_count::{AllocSnapshot, CountingAllocator};
pub use atomics::AtomicF64;
pub use bitset::AtomicBitset;
pub use hashtable::CommunityMap;
pub use rng::Xorshift32;
pub use scan::{exclusive_scan_in_place, parallel_exclusive_scan};
pub use sched::{scheduled_workers, SchedStats, Schedule};
pub use shared_slice::SharedSlice;
pub use smallmap::{HashScanMap, SmallScanMap, HASH_SCAN_CAP, SMALL_SCAN_CAP};
pub use workspace::PerThread;
