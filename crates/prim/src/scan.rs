//! Sequential and parallel prefix sums.
//!
//! The aggregation phase builds two CSR offset arrays per pass with
//! exclusive scans over per-community counts (Algorithm 4, lines 3–4 and
//! 8–9). The parallel scan is the classic two-pass chunked algorithm:
//! per-chunk sums, a small sequential scan of the chunk totals, then a
//! parallel local scan with offsets — the same structure as
//! `__parallel_scan` in GCC's libstdc++ parallel mode that the original
//! C++ implementation relies on.

use rayon::prelude::*;

/// Minimum number of elements per parallel chunk; below
/// `PARALLEL_THRESHOLD` the sequential scan is used outright.
const CHUNK: usize = 16 * 1024;
const PARALLEL_THRESHOLD: usize = 64 * 1024;

/// In-place exclusive prefix sum; returns the total of all input values.
///
/// `[3, 1, 4]` becomes `[0, 3, 4]` and `8` is returned.
pub fn exclusive_scan_in_place(values: &mut [u64]) -> u64 {
    let mut running = 0u64;
    for v in values.iter_mut() {
        let next = running + *v;
        *v = running;
        running = next;
    }
    running
}

/// In-place inclusive prefix sum; returns the total.
pub fn inclusive_scan_in_place(values: &mut [u64]) -> u64 {
    let mut running = 0u64;
    for v in values.iter_mut() {
        running += *v;
        *v = running;
    }
    running
}

/// Parallel in-place exclusive prefix sum; returns the total.
///
/// Falls back to the sequential scan for small inputs where the
/// fork/join overhead would dominate.
pub fn parallel_exclusive_scan(values: &mut [u64]) -> u64 {
    if values.len() < PARALLEL_THRESHOLD {
        return exclusive_scan_in_place(values);
    }
    // Pass 1: per-chunk totals.
    let mut chunk_totals: Vec<u64> = values
        .par_chunks(CHUNK)
        .map(|chunk| chunk.iter().sum())
        .collect();
    // Small sequential scan over the totals.
    let grand_total = exclusive_scan_in_place(&mut chunk_totals);
    // Pass 2: local exclusive scan with the chunk offset added.
    values
        .par_chunks_mut(CHUNK)
        .zip(chunk_totals.par_iter())
        .for_each(|(chunk, &offset)| {
            let mut running = offset;
            for v in chunk.iter_mut() {
                let next = running + *v;
                *v = running;
                running = next;
            }
        });
    grand_total
}

/// Exclusive scan from a borrowed count slice into a fresh offsets array
/// with one extra trailing slot holding the total — the exact shape CSR
/// `offsets` arrays want.
///
/// `[3, 1, 4]` yields `[0, 3, 4, 8]`.
pub fn offsets_from_counts(counts: &[u64]) -> Vec<u64> {
    let mut offsets = Vec::with_capacity(counts.len() + 1);
    let mut running = 0u64;
    for &c in counts {
        offsets.push(running);
        running += c;
    }
    offsets.push(running);
    offsets
}

/// Parallel variant of [`offsets_from_counts`].
pub fn parallel_offsets_from_counts(counts: &[u64]) -> Vec<u64> {
    if counts.len() < PARALLEL_THRESHOLD {
        return offsets_from_counts(counts);
    }
    let mut offsets = vec![0u64; counts.len() + 1];
    offsets[..counts.len()].copy_from_slice(counts);
    let total = parallel_exclusive_scan(&mut offsets[..counts.len()]);
    offsets[counts.len()] = total;
    offsets
}

/// Allocation-free variant of [`parallel_offsets_from_counts`]: writes
/// the `counts.len() + 1` offsets into `offsets`, reusing its capacity.
/// Returns the total. Grow-only: the vector is resized, never shrunk
/// below the required length, so a workspace-owned buffer reaches a
/// steady state after the first pass.
pub fn parallel_offsets_from_counts_into(counts: &[u64], offsets: &mut Vec<u64>) -> u64 {
    offsets.clear();
    offsets.resize(counts.len() + 1, 0);
    if counts.len() < PARALLEL_THRESHOLD {
        let mut running = 0u64;
        for (slot, &c) in offsets.iter_mut().zip(counts) {
            *slot = running;
            running += c;
        }
        offsets[counts.len()] = running;
        return running;
    }
    offsets[..counts.len()].copy_from_slice(counts);
    let total = parallel_exclusive_scan(&mut offsets[..counts.len()]);
    offsets[counts.len()] = total;
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exclusive_scan_basic() {
        let mut v = vec![3, 1, 4, 1, 5];
        let total = exclusive_scan_in_place(&mut v);
        assert_eq!(v, vec![0, 3, 4, 8, 9]);
        assert_eq!(total, 14);
    }

    #[test]
    fn exclusive_scan_empty_and_single() {
        let mut empty: Vec<u64> = vec![];
        assert_eq!(exclusive_scan_in_place(&mut empty), 0);
        let mut one = vec![7];
        assert_eq!(exclusive_scan_in_place(&mut one), 7);
        assert_eq!(one, vec![0]);
    }

    #[test]
    fn inclusive_scan_basic() {
        let mut v = vec![3, 1, 4];
        let total = inclusive_scan_in_place(&mut v);
        assert_eq!(v, vec![3, 4, 8]);
        assert_eq!(total, 8);
    }

    #[test]
    fn parallel_matches_sequential_small() {
        let mut a = vec![5, 0, 2, 9];
        let mut b = a.clone();
        let ta = exclusive_scan_in_place(&mut a);
        let tb = parallel_exclusive_scan(&mut b);
        assert_eq!(a, b);
        assert_eq!(ta, tb);
    }

    #[test]
    fn parallel_matches_sequential_large() {
        let input: Vec<u64> = (0..300_000u64).map(|i| (i * 2_654_435_761) % 97).collect();
        let mut a = input.clone();
        let mut b = input;
        let ta = exclusive_scan_in_place(&mut a);
        let tb = parallel_exclusive_scan(&mut b);
        assert_eq!(ta, tb);
        assert_eq!(a, b);
    }

    #[test]
    fn offsets_from_counts_shape() {
        assert_eq!(offsets_from_counts(&[3, 1, 4]), vec![0, 3, 4, 8]);
        assert_eq!(offsets_from_counts(&[]), vec![0]);
    }

    #[test]
    fn parallel_offsets_match_large() {
        let counts: Vec<u64> = (0..200_000u64).map(|i| i % 13).collect();
        assert_eq!(
            parallel_offsets_from_counts(&counts),
            offsets_from_counts(&counts)
        );
    }

    #[test]
    fn offsets_into_reuses_buffer_and_matches() {
        let mut buf = Vec::new();
        for counts in [
            vec![3u64, 1, 4],
            vec![],
            (0..200_000u64).map(|i| i % 13).collect(),
        ] {
            let total = parallel_offsets_from_counts_into(&counts, &mut buf);
            assert_eq!(buf, offsets_from_counts(&counts));
            assert_eq!(total, counts.iter().sum::<u64>());
        }
        // Shrinking input reuses the larger capacity without reallocating.
        let cap = buf.capacity();
        parallel_offsets_from_counts_into(&[1, 2], &mut buf);
        assert_eq!(buf, vec![0, 1, 3]);
        assert_eq!(buf.capacity(), cap);
    }
}
