//! The collision-free per-thread hashtable (`H_t` in Algorithms 2–4).
//!
//! The paper allocates, per thread, a dense array with one slot per
//! possible community id plus a list of the keys actually touched. Because
//! community ids are bounded by the vertex count, the "hash" is the
//! identity function — hence *collision-free*. Insertion and lookup are a
//! single array access; clearing walks only the touched keys, so a scan of
//! a degree-`d` vertex costs O(d) regardless of the table size.
//!
//! This trades memory (O(N) per thread, the `T·N` term in the paper's
//! space complexity) for the removal of all hashing and probing from the
//! innermost loop of the algorithm.

/// Dense accumulator map from community id (`u32`) to accumulated weight.
///
/// Used to tally `K_{i→c}` — the total edge weight from a vertex `i` to
/// each neighbouring community `c` — in the local-moving and refinement
/// phases, and the total weight between super-vertices in the aggregation
/// phase.
#[derive(Debug, Clone)]
pub struct CommunityMap {
    /// values[c] = accumulated weight towards community c.
    values: Vec<f64>,
    /// Whether slot c currently holds live data.
    touched: Vec<bool>,
    /// List of live keys, for O(touched) iteration and clearing.
    keys: Vec<u32>,
}

impl CommunityMap {
    /// Creates a map able to hold keys in `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        Self {
            values: vec![0.0; capacity],
            touched: vec![false; capacity],
            keys: Vec::new(),
        }
    }

    /// Number of key slots (maximum community id + 1).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.values.len()
    }

    /// Number of live keys.
    #[inline]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when no key is live.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Grows the table to hold keys in `0..capacity`, keeping live entries.
    ///
    /// Capacity only ever needs to grow to the vertex count of the first
    /// (largest) graph in a Leiden run; later passes reuse the same tables.
    pub fn ensure_capacity(&mut self, capacity: usize) {
        if capacity > self.values.len() {
            self.values.resize(capacity, 0.0);
            self.touched.resize(capacity, false);
        }
    }

    /// Adds `weight` to key `key`'s accumulator.
    #[inline]
    pub fn add(&mut self, key: u32, weight: f64) {
        let slot = key as usize;
        debug_assert!(slot < self.values.len(), "key {key} exceeds capacity");
        if !self.touched[slot] {
            debug_assert!(
                self.values[slot] == 0.0,
                "untouched slot {key} must be zero on entry"
            );
            self.touched[slot] = true;
            self.values[slot] = weight;
            self.keys.push(key);
        } else {
            self.values[slot] += weight;
        }
    }

    /// Returns the accumulated weight for `key`, or `None` if untouched.
    #[inline]
    pub fn get(&self, key: u32) -> Option<f64> {
        let slot = key as usize;
        self.touched
            .get(slot)
            .copied()
            .unwrap_or(false)
            .then(|| self.values[slot])
    }

    /// Returns the accumulated weight for `key`, `0.0` if untouched.
    #[inline]
    pub fn weight(&self, key: u32) -> f64 {
        self.get(key).unwrap_or(0.0)
    }

    /// Whether `key` has been touched since the last clear.
    #[inline]
    pub fn contains(&self, key: u32) -> bool {
        self.touched.get(key as usize).copied().unwrap_or(false)
    }

    /// Iterates over live `(key, weight)` pairs in insertion order.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.keys.iter().map(move |&k| (k, self.values[k as usize]))
    }

    /// Live keys in insertion order.
    #[inline]
    pub fn keys(&self) -> &[u32] {
        &self.keys
    }

    /// Clears the map in O(touched) time.
    ///
    /// Only the `touched` flags are reset: zeroing `values` here would
    /// duplicate the store [`CommunityMap::add`] performs on a slot's
    /// first touch, so the value write is kept in exactly one place. In
    /// debug builds the values *are* zeroed so `add` can assert that
    /// untouched slots hold zero on entry.
    #[inline]
    pub fn clear(&mut self) {
        for &k in &self.keys {
            self.touched[k as usize] = false;
            #[cfg(debug_assertions)]
            {
                self.values[k as usize] = 0.0;
            }
        }
        self.keys.clear();
    }

    /// Returns the key with the maximum weight, breaking ties towards the
    /// smallest key, or `None` when empty.
    ///
    /// The smallest-key tie-break makes the greedy choice deterministic for
    /// a fixed scan content, which stabilizes tests.
    pub fn max_key(&self) -> Option<(u32, f64)> {
        let mut best: Option<(u32, f64)> = None;
        for (k, w) in self.iter() {
            best = match best {
                None => Some((k, w)),
                Some((bk, bw)) if w > bw || (w == bw && k < bk) => Some((k, w)),
                other => other,
            };
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_accumulates() {
        let mut m = CommunityMap::new(8);
        m.add(3, 1.0);
        m.add(3, 2.5);
        m.add(5, 4.0);
        assert_eq!(m.get(3), Some(3.5));
        assert_eq!(m.get(5), Some(4.0));
        assert_eq!(m.get(4), None);
        assert_eq!(m.weight(4), 0.0);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn zero_weight_keys_are_still_live() {
        // A key inserted with weight 0 must be visible: self-loop-free
        // scans can legitimately produce zero accumulations.
        let mut m = CommunityMap::new(4);
        m.add(1, 0.0);
        assert!(m.contains(1));
        assert_eq!(m.get(1), Some(0.0));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn clear_resets_only_touched() {
        let mut m = CommunityMap::new(1000);
        for k in (0..1000).step_by(7) {
            m.add(k, 1.0);
        }
        m.clear();
        assert!(m.is_empty());
        for k in 0..1000 {
            assert_eq!(m.get(k), None, "key {k}");
        }
        // Reusable after clear.
        m.add(999, 2.0);
        assert_eq!(m.get(999), Some(2.0));
    }

    #[test]
    fn iter_preserves_insertion_order() {
        let mut m = CommunityMap::new(10);
        m.add(9, 1.0);
        m.add(0, 2.0);
        m.add(9, 1.0);
        m.add(4, 3.0);
        let pairs: Vec<_> = m.iter().collect();
        assert_eq!(pairs, vec![(9, 2.0), (0, 2.0), (4, 3.0)]);
        assert_eq!(m.keys(), &[9, 0, 4]);
    }

    #[test]
    fn max_key_breaks_ties_to_smaller_key() {
        let mut m = CommunityMap::new(10);
        m.add(7, 5.0);
        m.add(2, 5.0);
        m.add(4, 1.0);
        assert_eq!(m.max_key(), Some((2, 5.0)));
    }

    #[test]
    fn max_key_empty_is_none() {
        let m = CommunityMap::new(4);
        assert_eq!(m.max_key(), None);
    }

    #[test]
    fn ensure_capacity_grows_preserving_content() {
        let mut m = CommunityMap::new(2);
        m.add(1, 1.5);
        m.ensure_capacity(100);
        assert_eq!(m.capacity(), 100);
        assert_eq!(m.get(1), Some(1.5));
        m.add(99, 2.0);
        assert_eq!(m.get(99), Some(2.0));
        // Shrinking is a no-op.
        m.ensure_capacity(10);
        assert_eq!(m.capacity(), 100);
    }

    #[test]
    fn negative_weights_accumulate() {
        let mut m = CommunityMap::new(4);
        m.add(0, 2.0);
        m.add(0, -3.0);
        assert_eq!(m.get(0), Some(-1.0));
        assert_eq!(m.max_key(), Some((0, -1.0)));
    }
}
