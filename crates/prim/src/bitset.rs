//! Atomic bitset used for flag-based vertex pruning.
//!
//! GVE-Leiden replaces NetworKit's global work queues with a per-vertex
//! "unprocessed" flag (Algorithm 2, lines 2, 6 and 14): a vertex is marked
//! processed when visited and its neighbours are re-marked unprocessed when
//! it moves. A `Vec<AtomicU64>` bitset keeps this O(N/8) bytes and lets
//! many threads flip flags without locks.

use std::sync::atomic::{AtomicU64, Ordering};

const BITS: usize = u64::BITS as usize;

/// A fixed-size bitset whose bits can be set/cleared/tested concurrently.
#[derive(Debug)]
pub struct AtomicBitset {
    words: Vec<AtomicU64>,
    len: usize,
}

impl Default for AtomicBitset {
    /// An empty (zero-length) bitset.
    fn default() -> Self {
        Self::new(0)
    }
}

impl AtomicBitset {
    /// Creates a bitset of `len` bits, all clear.
    pub fn new(len: usize) -> Self {
        let words = (0..len.div_ceil(BITS)).map(|_| AtomicU64::new(0)).collect();
        Self { words, len }
    }

    /// Creates a bitset of `len` bits, all set.
    pub fn new_all_set(len: usize) -> Self {
        let set = Self::new(len);
        set.set_all();
        set
    }

    /// Number of bits in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitset holds no bits at all.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn split(&self, index: usize) -> (usize, u64) {
        debug_assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        (index / BITS, 1u64 << (index % BITS))
    }

    /// Tests bit `index`.
    #[inline]
    pub fn get(&self, index: usize) -> bool {
        let (word, mask) = self.split(index);
        // Relaxed: flag reads tolerate staleness (pruning hints).
        self.words[word].load(Ordering::Relaxed) & mask != 0
    }

    /// Sets bit `index`; returns the previous value.
    #[inline]
    pub fn set(&self, index: usize) -> bool {
        let (word, mask) = self.split(index);
        // Relaxed: the RMW atomicity alone carries the claim semantics;
        // no payload is published through the bit.
        self.words[word].fetch_or(mask, Ordering::Relaxed) & mask != 0
    }

    /// Clears bit `index`; returns the previous value.
    #[inline]
    pub fn clear(&self, index: usize) -> bool {
        let (word, mask) = self.split(index);
        // Relaxed: as in `set` — RMW atomicity is the claim.
        self.words[word].fetch_and(!mask, Ordering::Relaxed) & mask != 0
    }

    /// Atomically tests-and-clears bit `index`; returns `true` when the bit
    /// was set and this call cleared it.
    ///
    /// This is the pruning primitive: "if unprocessed { mark processed }"
    /// becomes a single `fetch_and`, so two threads racing on the same
    /// vertex cannot both claim it within one iteration.
    #[inline]
    pub fn take(&self, index: usize) -> bool {
        self.clear(index)
    }

    /// Sets every bit.
    ///
    /// Relaxed stores: bulk (re)initialization between parallel phases;
    /// the phase-boundary join publishes the words.
    pub fn set_all(&self) {
        if self.len == 0 {
            return;
        }
        let full_words = self.len / BITS;
        for word in &self.words[..full_words] {
            word.store(u64::MAX, Ordering::Relaxed);
        }
        let tail = self.len % BITS;
        if tail != 0 {
            // Relaxed: bulk reset between phases, as above.
            self.words[full_words].store((1u64 << tail) - 1, Ordering::Relaxed);
        }
    }

    /// Sets bits `[0, n)` and clears bits `[n, len)`.
    ///
    /// This is the prefix-reset primitive behind workspace reuse: one
    /// capacity-`len` bitset serves every (shrinking) pass by marking
    /// exactly the current pass's vertices unprocessed. Relaxed stores,
    /// as in [`AtomicBitset::set_all`] — bulk reinitialization between
    /// parallel phases, published by the phase-boundary join.
    ///
    /// # Panics
    /// Panics when `n > len`.
    pub fn set_first(&self, n: usize) {
        assert!(n <= self.len, "prefix {n} out of range {}", self.len);
        let full_words = n / BITS;
        for word in &self.words[..full_words] {
            // Relaxed: bulk reset between phases, as in `set_all`.
            word.store(u64::MAX, Ordering::Relaxed);
        }
        let tail = n % BITS;
        if tail != 0 {
            // Relaxed: bulk reset between phases, as above.
            self.words[full_words].store((1u64 << tail) - 1, Ordering::Relaxed);
        }
        let first_clear = full_words + usize::from(tail != 0);
        for word in &self.words[first_clear..] {
            word.store(0, Ordering::Relaxed);
        }
    }

    /// Clears every bit.
    pub fn clear_all(&self) {
        for word in &self.words {
            // Relaxed: bulk reset between phases, as in `set_all`.
            word.store(0, Ordering::Relaxed);
        }
    }

    /// Counts the set bits (not atomic with respect to concurrent updates).
    pub fn count_ones(&self) -> usize {
        self.words
            .iter()
            // Relaxed: advisory snapshot by documented contract.
            .map(|w| w.load(Ordering::Relaxed).count_ones() as usize)
            .sum()
    }

    /// True when no bit is set (not atomic with respect to updates).
    pub fn none_set(&self) -> bool {
        // Relaxed: advisory snapshot by documented contract.
        self.words.iter().all(|w| w.load(Ordering::Relaxed) == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn new_is_all_clear() {
        let b = AtomicBitset::new(130);
        assert_eq!(b.len(), 130);
        assert!(!b.is_empty());
        assert_eq!(b.count_ones(), 0);
        assert!(b.none_set());
    }

    #[test]
    fn empty_bitset() {
        let b = AtomicBitset::new(0);
        assert!(b.is_empty());
        b.set_all(); // must not panic
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    fn set_get_clear_roundtrip() {
        let b = AtomicBitset::new(100);
        assert!(!b.set(63));
        assert!(b.get(63));
        assert!(b.set(63)); // second set reports previously-set
        assert!(b.clear(63));
        assert!(!b.get(63));
        assert!(!b.clear(63));
    }

    #[test]
    fn set_all_respects_tail_bits() {
        let b = AtomicBitset::new(70);
        b.set_all();
        assert_eq!(b.count_ones(), 70);
        for i in 0..70 {
            assert!(b.get(i), "bit {i}");
        }
        b.clear_all();
        assert!(b.none_set());
    }

    #[test]
    fn set_all_exact_word_boundary() {
        let b = AtomicBitset::new(128);
        b.set_all();
        assert_eq!(b.count_ones(), 128);
    }

    #[test]
    fn new_all_set() {
        let b = AtomicBitset::new_all_set(65);
        assert_eq!(b.count_ones(), 65);
    }

    #[test]
    fn set_first_prefix_and_suffix() {
        let b = AtomicBitset::new(200);
        b.set_all();
        b.set_first(70);
        assert_eq!(b.count_ones(), 70);
        for i in 0..70 {
            assert!(b.get(i), "prefix bit {i}");
        }
        for i in 70..200 {
            assert!(!b.get(i), "suffix bit {i}");
        }
        // Word-aligned prefix and the degenerate cases.
        b.set_first(128);
        assert_eq!(b.count_ones(), 128);
        b.set_first(0);
        assert!(b.none_set());
        b.set_first(200);
        assert_eq!(b.count_ones(), 200);
    }

    #[test]
    #[should_panic(expected = "prefix")]
    fn set_first_rejects_overlong_prefix() {
        AtomicBitset::new(10).set_first(11);
    }

    #[test]
    fn take_claims_exactly_once() {
        let b = AtomicBitset::new(1);
        b.set(0);
        assert!(b.take(0));
        assert!(!b.take(0));
    }

    #[test]
    fn concurrent_take_claims_each_bit_once() {
        let n = 4096;
        let b = Arc::new(AtomicBitset::new_all_set(n));
        let claimed: Vec<_> = (0..8)
            .map(|_| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || (0..n).filter(|&i| b.take(i)).count())
            })
            .map(|t| t.join().unwrap())
            .collect();
        assert_eq!(claimed.iter().sum::<usize>(), n);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn out_of_range_panics_in_debug() {
        let b = AtomicBitset::new(10);
        b.get(10);
    }
}
