//! OpenMP-`schedule(dynamic)`-style parallel loops on top of rayon.
//!
//! The paper attributes part of GVE-Leiden's load balance to OpenMP's
//! *dynamic* loop schedule: workers repeatedly grab fixed-size chunks of
//! the iteration space from a shared counter, so a worker stuck on a hub
//! vertex does not stall the rest of its static share. [`dynamic_workers`]
//! reproduces that exactly with an atomic cursor and
//! [`rayon::broadcast`], and is the scheduling primitive used by the
//! local-moving, refinement and aggregation phases.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default chunk size, matching the grain the GVE C++ code uses for its
/// `schedule(dynamic, 2048)` loops.
pub const DEFAULT_CHUNK: usize = 2048;

/// Iterator over the chunks a single worker claims from the shared cursor.
pub struct ChunkClaims<'a> {
    cursor: &'a AtomicUsize,
    len: usize,
    chunk: usize,
}

impl Iterator for ChunkClaims<'_> {
    type Item = Range<usize>;

    #[inline]
    fn next(&mut self) -> Option<Range<usize>> {
        // Saturating claim: an unconditional `fetch_add` would let the
        // shared cursor run arbitrarily far past `len` while workers
        // spin down a long tail (every exhausted worker still bumps it
        // by `chunk` once per poll). The compare-exchange claims
        // `start..end` only while `start` is in range, so the cursor
        // never exceeds `len`. Relaxed everywhere: the cursor carries no
        // payload — ranges index pre-published data, and the broadcast
        // fork/join provides the cross-thread ordering.
        let mut start = self.cursor.load(Ordering::Relaxed);
        loop {
            if start >= self.len {
                return None;
            }
            let end = (start + self.chunk).min(self.len);
            // Relaxed CX: see the ordering note above.
            match self.cursor.compare_exchange_weak(
                start,
                end,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(start..end),
                Err(observed) => start = observed,
            }
        }
    }
}

/// Runs `worker` once on every rayon worker thread; each invocation pulls
/// dynamic chunks of `0..len` from a shared cursor until the range is
/// exhausted. Returns each worker's result.
///
/// The worker closure receives the claims iterator, so per-worker state
/// (hashtables, RNGs) is naturally created once per thread:
///
/// ```
/// use gve_prim::parfor::dynamic_workers;
/// let hits: Vec<u64> = dynamic_workers(10_000, 256, |claims| {
///     let mut local = 0u64; // per-worker state
///     for range in claims {
///         local += range.len() as u64;
///     }
///     local
/// });
/// assert_eq!(hits.iter().sum::<u64>(), 10_000);
/// ```
pub fn dynamic_workers<R, F>(len: usize, chunk: usize, worker: F) -> Vec<R>
where
    F: Fn(ChunkClaims<'_>) -> R + Sync,
    R: Send,
{
    assert!(chunk > 0, "chunk size must be positive");
    let cursor = AtomicUsize::new(0);
    rayon::broadcast(|_| {
        worker(ChunkClaims {
            cursor: &cursor,
            len,
            chunk,
        })
    })
}

/// Dynamic-scheduled parallel for over `0..len`.
pub fn par_for_dynamic<F>(len: usize, chunk: usize, body: F)
where
    F: Fn(usize) + Sync,
{
    dynamic_workers(len, chunk, |claims| {
        for range in claims {
            for i in range {
                body(i);
            }
        }
    });
}

/// Dynamic-scheduled parallel for that sums a per-element `f64`
/// contribution (used for the per-iteration total delta-modularity `ΔQ`).
pub fn par_for_dynamic_sum<F>(len: usize, chunk: usize, body: F) -> f64
where
    F: Fn(usize) -> f64 + Sync,
{
    dynamic_workers(len, chunk, |claims| {
        let mut acc = 0.0;
        for range in claims {
            for i in range {
                acc += body(i);
            }
        }
        acc
    })
    .into_iter()
    .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn every_index_visited_exactly_once() {
        let n = 100_000;
        let counts: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        par_for_dynamic(n, 97, |i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn zero_length_runs_nothing() {
        let touched = AtomicUsize::new(0);
        par_for_dynamic(0, 8, |_| {
            touched.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(touched.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn chunk_larger_than_len_still_covers() {
        let sum = par_for_dynamic_sum(5, 1000, |i| i as f64);
        assert_eq!(sum, 10.0);
    }

    #[test]
    fn sum_matches_closed_form() {
        let n = 50_000usize;
        let sum = par_for_dynamic_sum(n, 64, |i| i as f64);
        assert_eq!(sum, (n as f64 - 1.0) * n as f64 / 2.0);
    }

    #[test]
    fn workers_results_are_collected() {
        let results = dynamic_workers(1000, 10, |claims| claims.map(|r| r.len()).sum::<usize>());
        assert_eq!(results.len(), rayon::current_num_threads());
        assert_eq!(results.iter().sum::<usize>(), 1000);
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_panics() {
        par_for_dynamic(10, 0, |_| {});
    }

    /// Regression: many workers hammering a tiny range must not push the
    /// shared cursor past `len` (the old `fetch_add` claim advanced it
    /// by `chunk` on every exhausted poll).
    #[test]
    fn cursor_never_runs_past_len() {
        let len = 3usize;
        let cursor = AtomicUsize::new(0);
        let counts: Vec<AtomicU64> = (0..len).map(|_| AtomicU64::new(0)).collect();
        std::thread::scope(|scope| {
            for _ in 0..16 {
                scope.spawn(|| {
                    let claims = ChunkClaims {
                        cursor: &cursor,
                        len,
                        chunk: 1,
                    };
                    for range in claims {
                        for i in range {
                            counts[i].fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(
            cursor.load(Ordering::Relaxed),
            len,
            "cursor must saturate exactly at len"
        );
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    /// The same bound holds through the public entry point with a chunk
    /// that overshoots the range end.
    #[test]
    fn tiny_range_many_claims_covered_exactly_once() {
        for _ in 0..50 {
            let n = 5;
            let counts: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
            par_for_dynamic(n, 3, |i| {
                counts[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
        }
    }
}
