//! Property-based tests of the primitive substrate against reference
//! models.

use gve_prim::scan::{
    exclusive_scan_in_place, inclusive_scan_in_place, offsets_from_counts, parallel_exclusive_scan,
    parallel_offsets_from_counts,
};
use gve_prim::{AtomicBitset, CommunityMap, Xorshift32};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Parallel scan ≡ sequential scan ≡ naive model.
    #[test]
    fn scans_match_reference(values in proptest::collection::vec(0u64..1000, 0..2000)) {
        let mut expected = Vec::with_capacity(values.len());
        let mut running = 0u64;
        for &v in &values {
            expected.push(running);
            running += v;
        }
        let mut seq = values.clone();
        let total_seq = exclusive_scan_in_place(&mut seq);
        prop_assert_eq!(&seq, &expected);
        prop_assert_eq!(total_seq, running);

        let mut par = values.clone();
        let total_par = parallel_exclusive_scan(&mut par);
        prop_assert_eq!(&par, &expected);
        prop_assert_eq!(total_par, running);
    }

    /// Inclusive scan is the exclusive scan shifted by each element.
    #[test]
    fn inclusive_is_shifted_exclusive(values in proptest::collection::vec(0u64..1000, 1..500)) {
        let mut inc = values.clone();
        inclusive_scan_in_place(&mut inc);
        let mut exc = values.clone();
        exclusive_scan_in_place(&mut exc);
        for i in 0..values.len() {
            prop_assert_eq!(inc[i], exc[i] + values[i]);
        }
    }

    /// Offsets arrays have the CSR shape: monotone, one extra slot.
    #[test]
    fn offsets_shape(counts in proptest::collection::vec(0u64..100, 0..1000)) {
        let offsets = offsets_from_counts(&counts);
        prop_assert_eq!(offsets.len(), counts.len() + 1);
        prop_assert_eq!(offsets[0], 0);
        for (i, w) in offsets.windows(2).enumerate() {
            prop_assert_eq!(w[1] - w[0], counts[i]);
        }
        prop_assert_eq!(parallel_offsets_from_counts(&counts), offsets);
    }

    /// CommunityMap behaves as a HashMap<u32, f64> accumulator.
    #[test]
    fn community_map_matches_hashmap_model(
        ops in proptest::collection::vec((0u32..64, 0.1f64..10.0), 0..300),
    ) {
        let mut map = CommunityMap::new(64);
        let mut model: HashMap<u32, f64> = HashMap::new();
        for &(k, w) in &ops {
            map.add(k, w);
            *model.entry(k).or_insert(0.0) += w;
        }
        prop_assert_eq!(map.len(), model.len());
        for (&k, &w) in &model {
            let got = map.get(k).unwrap();
            prop_assert!((got - w).abs() < 1e-9, "key {}: {} vs {}", k, got, w);
        }
        // max_key agrees with the model (modulo tie-breaks on equal
        // weights, which the float sums make vanishingly unlikely here).
        if let Some((mk, mw)) = map.max_key() {
            let best_model = model.values().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!((mw - best_model).abs() < 1e-9);
            prop_assert!((model[&mk] - best_model).abs() < 1e-9);
        } else {
            prop_assert!(model.is_empty());
        }
        // clear() really clears.
        map.clear();
        prop_assert!(map.is_empty());
        for &k in model.keys() {
            prop_assert_eq!(map.get(k), None);
        }
    }

    /// AtomicBitset behaves as a Vec<bool> model under set/clear/take.
    #[test]
    fn bitset_matches_model(
        len in 1usize..300,
        ops in proptest::collection::vec((0u8..3, 0usize..300), 0..200),
    ) {
        let bits = AtomicBitset::new(len);
        let mut model = vec![false; len];
        for &(op, raw_index) in &ops {
            let index = raw_index % len;
            match op {
                0 => {
                    let prev = bits.set(index);
                    prop_assert_eq!(prev, model[index]);
                    model[index] = true;
                }
                1 => {
                    let prev = bits.clear(index);
                    prop_assert_eq!(prev, model[index]);
                    model[index] = false;
                }
                _ => {
                    let took = bits.take(index);
                    prop_assert_eq!(took, model[index]);
                    model[index] = false;
                }
            }
        }
        prop_assert_eq!(bits.count_ones(), model.iter().filter(|&&b| b).count());
        for (i, &b) in model.iter().enumerate() {
            prop_assert_eq!(bits.get(i), b);
        }
    }

    /// Xorshift32 streams from different seeds are (pairwise) different
    /// and stay within bounds.
    #[test]
    fn rng_bounded_and_distinct(seed in 1u32.., bound in 1u32..10_000) {
        let mut a = Xorshift32::new(seed);
        let mut b = Xorshift32::new(seed.wrapping_add(1));
        let mut same = 0;
        for _ in 0..64 {
            let x = a.next_bounded(bound);
            prop_assert!(x < bound);
            if a.next_u32() == b.next_u32() {
                same += 1;
            }
        }
        prop_assert!(same < 8, "streams nearly identical");
    }
}
