//! Property-based tests of the primitive substrate against reference
//! models.

use gve_prim::scan::{
    exclusive_scan_in_place, inclusive_scan_in_place, offsets_from_counts, parallel_exclusive_scan,
    parallel_offsets_from_counts,
};
use gve_prim::{AtomicBitset, CommunityMap, Xorshift32};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Parallel scan ≡ sequential scan ≡ naive model.
    #[test]
    fn scans_match_reference(values in proptest::collection::vec(0u64..1000, 0..2000)) {
        let mut expected = Vec::with_capacity(values.len());
        let mut running = 0u64;
        for &v in &values {
            expected.push(running);
            running += v;
        }
        let mut seq = values.clone();
        let total_seq = exclusive_scan_in_place(&mut seq);
        prop_assert_eq!(&seq, &expected);
        prop_assert_eq!(total_seq, running);

        let mut par = values.clone();
        let total_par = parallel_exclusive_scan(&mut par);
        prop_assert_eq!(&par, &expected);
        prop_assert_eq!(total_par, running);
    }

    /// Inclusive scan is the exclusive scan shifted by each element.
    #[test]
    fn inclusive_is_shifted_exclusive(values in proptest::collection::vec(0u64..1000, 1..500)) {
        let mut inc = values.clone();
        inclusive_scan_in_place(&mut inc);
        let mut exc = values.clone();
        exclusive_scan_in_place(&mut exc);
        for i in 0..values.len() {
            prop_assert_eq!(inc[i], exc[i] + values[i]);
        }
    }

    /// Offsets arrays have the CSR shape: monotone, one extra slot.
    #[test]
    fn offsets_shape(counts in proptest::collection::vec(0u64..100, 0..1000)) {
        let offsets = offsets_from_counts(&counts);
        prop_assert_eq!(offsets.len(), counts.len() + 1);
        prop_assert_eq!(offsets[0], 0);
        for (i, w) in offsets.windows(2).enumerate() {
            prop_assert_eq!(w[1] - w[0], counts[i]);
        }
        prop_assert_eq!(parallel_offsets_from_counts(&counts), offsets);
    }

    /// CommunityMap behaves as a HashMap<u32, f64> accumulator.
    #[test]
    fn community_map_matches_hashmap_model(
        ops in proptest::collection::vec((0u32..64, 0.1f64..10.0), 0..300),
    ) {
        let mut map = CommunityMap::new(64);
        let mut model: HashMap<u32, f64> = HashMap::new();
        for &(k, w) in &ops {
            map.add(k, w);
            *model.entry(k).or_insert(0.0) += w;
        }
        prop_assert_eq!(map.len(), model.len());
        for (&k, &w) in &model {
            let got = map.get(k).unwrap();
            prop_assert!((got - w).abs() < 1e-9, "key {}: {} vs {}", k, got, w);
        }
        // max_key agrees with the model (modulo tie-breaks on equal
        // weights, which the float sums make vanishingly unlikely here).
        if let Some((mk, mw)) = map.max_key() {
            let best_model = model.values().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!((mw - best_model).abs() < 1e-9);
            prop_assert!((model[&mk] - best_model).abs() < 1e-9);
        } else {
            prop_assert!(model.is_empty());
        }
        // clear() really clears.
        map.clear();
        prop_assert!(map.is_empty());
        for &k in model.keys() {
            prop_assert_eq!(map.get(k), None);
        }
    }

    /// AtomicBitset behaves as a Vec<bool> model under set/clear/take.
    #[test]
    fn bitset_matches_model(
        len in 1usize..300,
        ops in proptest::collection::vec((0u8..3, 0usize..300), 0..200),
    ) {
        let bits = AtomicBitset::new(len);
        let mut model = vec![false; len];
        for &(op, raw_index) in &ops {
            let index = raw_index % len;
            match op {
                0 => {
                    let prev = bits.set(index);
                    prop_assert_eq!(prev, model[index]);
                    model[index] = true;
                }
                1 => {
                    let prev = bits.clear(index);
                    prop_assert_eq!(prev, model[index]);
                    model[index] = false;
                }
                _ => {
                    let took = bits.take(index);
                    prop_assert_eq!(took, model[index]);
                    model[index] = false;
                }
            }
        }
        prop_assert_eq!(bits.count_ones(), model.iter().filter(|&&b| b).count());
        for (i, &b) in model.iter().enumerate() {
            prop_assert_eq!(bits.get(i), b);
        }
    }

    /// Xorshift32 streams from different seeds are (pairwise) different
    /// and stay within bounds.
    #[test]
    fn rng_bounded_and_distinct(seed in 1u32.., bound in 1u32..10_000) {
        let mut a = Xorshift32::new(seed);
        let mut b = Xorshift32::new(seed.wrapping_add(1));
        let mut same = 0;
        for _ in 0..64 {
            let x = a.next_bounded(bound);
            prop_assert!(x < bound);
            if a.next_u32() == b.next_u32() {
                same += 1;
            }
        }
        prop_assert!(same < 8, "streams nearly identical");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arc-balanced worker bounds partition `[0, n)` exactly — monotone,
    /// starting at 0, ending at n, no gaps, no overlaps — for any degree
    /// sequence (zero-degree tails, uniform rows, and extreme hubs
    /// alike) and any requested worker count.
    #[test]
    fn arc_balanced_bounds_partition_exactly(
        degrees in proptest::collection::vec(0u64..10_000, 0..300),
        workers in 1usize..96,
    ) {
        let mut offsets = Vec::with_capacity(degrees.len() + 1);
        offsets.push(0u64);
        for &d in &degrees {
            let next = offsets.last().unwrap() + d;
            offsets.push(next);
        }
        let (bounds, w) = gve_prim::sched::arc_balanced_bounds(&offsets, degrees.len(), workers);
        prop_assert!((1..=gve_prim::sched::MAX_WORKERS).contains(&w));
        prop_assert_eq!(bounds[0], 0);
        prop_assert_eq!(bounds[w], degrees.len());
        for i in 0..w {
            prop_assert!(bounds[i] <= bounds[i + 1], "bounds not monotone at {i}");
        }
    }

    /// Adversarial hub sequences: a single vertex holding nearly every
    /// arc. The partition property must hold, and the hub's segment may
    /// not also swallow the balanced remainder when enough other work
    /// exists to split off.
    #[test]
    fn arc_balanced_bounds_survive_hub_adversaries(
        hub_at in 0usize..100,
        hub_degree in 1u64..1_000_000_000,
        tail in proptest::collection::vec(0u64..4, 100..200),
    ) {
        let mut degrees = tail;
        let hub = hub_at % degrees.len();
        degrees[hub] = hub_degree;
        let n = degrees.len();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u64);
        for &d in &degrees {
            let next = offsets.last().unwrap() + d;
            offsets.push(next);
        }
        let (bounds, w) = gve_prim::sched::arc_balanced_bounds(&offsets, n, 8);
        prop_assert_eq!(bounds[0], 0);
        prop_assert_eq!(bounds[w], n);
        for i in 0..w {
            prop_assert!(bounds[i] <= bounds[i + 1]);
        }
    }

    /// Every scheduling policy claims every vertex exactly once — the
    /// end-to-end exactly-once property over the real `scheduled_workers`
    /// entry point with arbitrary degree sequences.
    #[test]
    fn scheduled_workers_claim_each_vertex_once(
        degrees in proptest::collection::vec(0u64..50, 0..500),
        policy in 0usize..3,
        chunk in 1usize..64,
    ) {
        use gve_prim::sched::{scheduled_workers, Schedule};
        let n = degrees.len();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u64);
        for &d in &degrees {
            let next = offsets.last().unwrap() + d;
            offsets.push(next);
        }
        let schedule = match policy {
            0 => Schedule::Static { chunk },
            1 => Schedule::Guided { offsets: &offsets },
            _ => Schedule::Stealing { offsets: &offsets, chunk },
        };
        let (per_worker, stats) = scheduled_workers(n, schedule, |claims| {
            let mut mine = Vec::new();
            for range in claims {
                mine.extend(range);
            }
            mine
        });
        let mut all: Vec<usize> = per_worker.into_iter().flatten().collect();
        all.sort_unstable();
        let expect: Vec<usize> = (0..n).collect();
        prop_assert_eq!(all, expect, "policy {} lost or duplicated vertices", policy);
        if n > 0 {
            prop_assert!(stats.chunks > 0);
        }
        if policy != 2 {
            prop_assert_eq!(stats.steals, 0);
        }
    }
}
