//! Loom models for the three inter-thread claim protocols the Leiden
//! core relies on.
//!
//! Each model re-implements the protocol on `loom::sync::atomic` types
//! (the standard loom methodology: the model *is* the specification of
//! the protocol, kept line-for-line close to the production code it
//! mirrors) and asserts its invariant under perturbed schedules. With
//! the offline `shims/loom` stand-in these run as seeded stress
//! iterations; swap in crates.io loom and the same sources become
//! exhaustive model checks.
//!
//! The protocols, and the production sites they mirror:
//!
//! 1. **Dynamic-scheduler cursor** — `ChunkClaims::next` in
//!    `crates/prim/src/parfor.rs`: a saturating compare-exchange claim
//!    over a shared cursor. Invariants: every index claimed exactly
//!    once, and the cursor never runs past `len` (the regression the
//!    saturating CX fixed).
//! 2. **Σ′ isolation claim** — `AtomicF64::compare_exchange` in
//!    `crates/prim/src/atomics.rs`, used by refinement (Algorithm 3) to
//!    claim an isolated vertex by swapping its community weight from
//!    exactly `K'[i]` to `0`. Invariants: at most one claimant wins,
//!    and weight is conserved when the winner re-deposits.
//! 3. **Holey-CSR slot claim** — the `fetch_add` arc-slot claim in
//!    `crates/graph/src/holey.rs` `add_arc`. Invariants: claimed slots
//!    are unique, no slot exceeds the degree bound, and every payload
//!    lands intact in its claimed slot.
//! 4. **Work-stealing segment claim** — the per-worker cursor drain +
//!    steal-on-empty protocol of `Claims::next_range`'s `Stealing` arm
//!    in `crates/prim/src/sched.rs`. Invariants: every index claimed
//!    exactly once under owner/thief races, and no segment cursor runs
//!    past its bound.

use loom::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use loom::sync::Arc;
use loom::thread;

/// Model 1 helper: one worker's claim loop, verbatim from
/// `ChunkClaims::next` (saturating compare-exchange; Relaxed is the
/// production ordering — the cursor carries no payload and the model's
/// joins provide the cross-thread ordering, exactly like the rayon
/// broadcast join does in production).
fn claim_chunks(cursor: &AtomicUsize, len: usize, chunk: usize, claims: &mut Vec<usize>) {
    // Relaxed: mirrors the production cursor protocol; see above.
    let mut start = cursor.load(Ordering::Relaxed);
    loop {
        if start >= len {
            return;
        }
        let end = (start + chunk).min(len);
        match cursor.compare_exchange_weak(start, end, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => {
                claims.extend(start..end);
                // Relaxed: re-poll after a successful claim, as above.
                start = cursor.load(Ordering::Relaxed);
            }
            Err(observed) => start = observed,
        }
    }
}

#[test]
fn chunk_cursor_claims_each_index_once_and_saturates() {
    loom::model(|| {
        const LEN: usize = 5;
        let cursor = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let cursor = Arc::clone(&cursor);
                thread::spawn(move || {
                    let mut claims = Vec::new();
                    claim_chunks(&cursor, LEN, 2, &mut claims);
                    claims
                })
            })
            .collect();
        let mut seen = [0u32; LEN];
        for h in handles {
            for i in h.join().unwrap() {
                seen[i] += 1;
            }
        }
        assert!(
            seen.iter().all(|&c| c == 1),
            "each index claimed exactly once, got {seen:?}"
        );
        // The regression the saturating CX fixed: exhausted pollers must
        // not push the shared cursor past `len`.
        assert_eq!(cursor.load(Ordering::Relaxed), LEN);
    });
}

/// Model 2 helper: the refinement isolation claim from
/// `AtomicF64::compare_exchange` — bit-pattern CAS from exactly `k` to
/// `0.0`, with the production AcqRel/Acquire orderings.
fn try_claim(sigma: &AtomicU64, k: f64) -> bool {
    sigma
        .compare_exchange(
            k.to_bits(),
            0.0f64.to_bits(),
            Ordering::AcqRel,
            Ordering::Acquire,
        )
        .is_ok()
}

/// Model 2 helper: the Σ′ deposit, a bit-CAS `fetch_add` loop mirroring
/// `AtomicF64::fetch_add` (Relaxed: production ordering — only the
/// add's atomicity matters, totals are value-published at phase joins).
fn deposit(sigma: &AtomicU64, delta: f64) {
    // Relaxed: mirrors the production fetch_add protocol; see above.
    let mut current = sigma.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(current) + delta).to_bits();
        match sigma.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(observed) => current = observed,
        }
    }
}

#[test]
fn sigma_isolation_claim_has_single_winner_and_conserves_weight() {
    loom::model(|| {
        const K: f64 = 4.25; // the vertex's weighted degree K'[i]
        const TARGET: f64 = 1.5; // Σ′ of the community being joined
        let source = Arc::new(AtomicU64::new(K.to_bits()));
        let target = Arc::new(AtomicU64::new(TARGET.to_bits()));
        let wins = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let source = Arc::clone(&source);
                let target = Arc::clone(&target);
                let wins = Arc::clone(&wins);
                thread::spawn(move || {
                    if try_claim(&source, K) {
                        // Winner moves the vertex: deposit K into the
                        // target community, as refinement does after the
                        // isolation CAS succeeds.
                        deposit(&target, K);
                        // Relaxed: win tally is assertion bookkeeping.
                        wins.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            wins.load(Ordering::Relaxed),
            1,
            "exactly one thread may claim the isolated vertex"
        );
        // Relaxed: post-join read-back.
        let src = f64::from_bits(source.load(Ordering::Relaxed));
        let tgt = f64::from_bits(target.load(Ordering::Relaxed));
        assert_eq!(src, 0.0, "claimed community weight must be zeroed");
        assert_eq!(src + tgt, K + TARGET, "total weight conserved");
    });
}

#[test]
fn holey_slot_claims_are_unique_and_payloads_intact() {
    loom::model(|| {
        const SLOTS: usize = 6;
        // Per-vertex arc-slot cursor, as in `HoleyCsr::add_arc`: each
        // writer claims `fetch_add(1)` then owns slot exclusively.
        let cursor = Arc::new(AtomicUsize::new(0));
        // One atomic per slot standing in for the (target, weight)
        // payload; 0 means "unwritten".
        let slots: Arc<Vec<AtomicU64>> = Arc::new((0..SLOTS).map(|_| AtomicU64::new(0)).collect());
        let handles: Vec<_> = (0..3)
            .map(|t| {
                let cursor = Arc::clone(&cursor);
                let slots = Arc::clone(&slots);
                thread::spawn(move || {
                    for a in 0..2u64 {
                        // Relaxed: mirrors the production slot claim —
                        // the claim only needs the RMW's atomicity; the
                        // payload is published by the build-phase join.
                        let slot = cursor.fetch_add(1, Ordering::Relaxed);
                        assert!(slot < SLOTS, "claim exceeded the degree bound");
                        // Tagged payload: writer id and arc number, so
                        // torn or duplicated writes are detectable.
                        let payload = 1 + (t as u64) * 10 + a;
                        // Relaxed: exclusive slot, published at join.
                        slots[slot].store(payload, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cursor.load(Ordering::Relaxed), SLOTS);
        // Relaxed: post-join read-back.
        let mut payloads: Vec<u64> = slots.iter().map(|s| s.load(Ordering::Relaxed)).collect();
        payloads.sort_unstable();
        assert_eq!(
            payloads,
            vec![1, 2, 11, 12, 21, 22],
            "every claimed slot holds exactly its writer's payload"
        );
    });
}

/// Model 4 helper: a single saturating chunk claim against one cursor,
/// verbatim from `claim_chunk` in `crates/prim/src/sched.rs` (the same
/// protocol the per-worker stealing cursors use for both the owner's
/// drain and a thief's steal).
fn claim_one(cursor: &AtomicUsize, hi: usize, chunk: usize) -> Option<std::ops::Range<usize>> {
    // Relaxed: mirrors the production cursor protocol — the cursor
    // carries no payload and the joins publish the claimed work.
    let mut start = cursor.load(Ordering::Relaxed);
    loop {
        if start >= hi {
            return None;
        }
        let end = (start + chunk).min(hi);
        match cursor.compare_exchange_weak(start, end, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return Some(start..end),
            Err(observed) => start = observed,
        }
    }
}

/// Model 4 helper: one stealing worker's loop, mirroring the `Stealing`
/// arm of `Claims::next_range` in `crates/prim/src/sched.rs`: drain
/// your own arc-balanced segment, then claim from any victim cursor
/// with work remaining. (Production picks the richest victim by
/// remaining arcs; that changes only the victim *order*, not the claim
/// protocol this model checks.)
fn steal_chunks(
    cursors: &[AtomicUsize],
    bounds: &[usize],
    me: usize,
    chunk: usize,
    claims: &mut Vec<usize>,
) {
    loop {
        if let Some(r) = claim_one(&cursors[me], bounds[me + 1], chunk) {
            claims.extend(r);
            continue;
        }
        let mut stole = false;
        for v in 0..cursors.len() {
            if v == me {
                continue;
            }
            if let Some(r) = claim_one(&cursors[v], bounds[v + 1], chunk) {
                claims.extend(r);
                stole = true;
                break;
            }
        }
        if !stole {
            return;
        }
    }
}

#[test]
fn stealing_claims_each_index_exactly_once_under_races() {
    loom::model(|| {
        // Two workers over uneven arc-balanced segments ([0,4) and
        // [4,6)): worker 1 drains its short segment fast and races
        // worker 0 for the remainder of segment 0 — the exact owner vs
        // thief interleaving the per-worker deques must survive.
        const LEN: usize = 6;
        let bounds = [0usize, 4, LEN];
        let cursors = Arc::new([AtomicUsize::new(bounds[0]), AtomicUsize::new(bounds[1])]);
        let handles: Vec<_> = (0..2)
            .map(|me| {
                let cursors = Arc::clone(&cursors);
                thread::spawn(move || {
                    let mut claims = Vec::new();
                    steal_chunks(&cursors[..], &bounds, me, 2, &mut claims);
                    claims
                })
            })
            .collect();
        let mut seen = [0u32; LEN];
        for h in handles {
            for i in h.join().unwrap() {
                seen[i] += 1;
            }
        }
        assert!(
            seen.iter().all(|&c| c == 1),
            "each index claimed exactly once, got {seen:?}"
        );
        // No cursor — owner-advanced or thief-advanced — may run past
        // its segment bound (the saturating CX invariant, per segment).
        for (v, cursor) in cursors.iter().enumerate() {
            // Relaxed: post-join read-back.
            let end = cursor.load(Ordering::Relaxed);
            assert!(end <= bounds[v + 1], "cursor {v} overran: {end}");
        }
    });
}
