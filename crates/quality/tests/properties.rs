//! Property-based tests of the quality metrics against each other and
//! against naive reference computations.

use gve_graph::{CsrGraph, GraphBuilder};
use gve_quality as quality;
use proptest::prelude::*;

fn arb_graph_and_membership() -> impl Strategy<Value = (CsrGraph, Vec<u32>)> {
    (2u32..60).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n, 1u32..4), 1..150);
        let labels = proptest::collection::vec(0u32..8, n as usize);
        (Just(n), edges, labels).prop_map(|(n, edges, labels)| {
            let typed: Vec<(u32, u32, f32)> = edges
                .into_iter()
                .map(|(u, v, w)| (u, v, w as f32))
                .collect();
            (GraphBuilder::from_edges(n as usize, &typed), labels)
        })
    })
}

/// Naive O(V²)-ish modularity straight from Equation 1's first form.
fn naive_modularity(graph: &CsrGraph, membership: &[u32]) -> f64 {
    let two_m = graph.total_arc_weight();
    if two_m == 0.0 {
        return 0.0;
    }
    let m = two_m / 2.0;
    let k: Vec<f64> = (0..graph.num_vertices() as u32)
        .map(|u| graph.weighted_degree(u))
        .collect();
    let mut q = 0.0;
    for (u, v, w) in graph.arcs() {
        if membership[u as usize] == membership[v as usize] {
            q += w as f64 - k[u as usize] * k[v as usize] / two_m;
        }
    }
    // Vertices in the same community with no arc still contribute the
    // null-model term.
    for u in 0..graph.num_vertices() {
        for v in 0..graph.num_vertices() {
            if membership[u] == membership[v] && !graph.has_arc(u as u32, v as u32) {
                q -= k[u] * k[v] / two_m;
            }
        }
    }
    q / (2.0 * m)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The production modularity matches the naive double-sum form.
    #[test]
    fn modularity_matches_naive_double_sum((graph, membership) in arb_graph_and_membership()) {
        let fast = quality::modularity(&graph, &membership);
        let slow = naive_modularity(&graph, &membership);
        prop_assert!((fast - slow).abs() < 1e-9, "fast {} vs naive {}", fast, slow);
    }

    /// Coverage bounds and its relation to modularity: Q ≤ coverage.
    #[test]
    fn coverage_bounds_modularity((graph, membership) in arb_graph_and_membership()) {
        let coverage = quality::coverage(&graph, &membership);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&coverage));
        let q = quality::modularity(&graph, &membership);
        prop_assert!(q <= coverage + 1e-12, "Q {} > coverage {}", q, coverage);
    }

    /// Conductance is within [0, 1] for every partition (cut ≤ min-side
    /// volume by definition of volume).
    #[test]
    fn conductance_is_bounded((graph, membership) in arb_graph_and_membership()) {
        let phi = quality::average_conductance(&graph, &membership);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&phi), "phi = {}", phi);
    }

    /// The per-community report is consistent with the global metrics.
    #[test]
    fn report_totals_match_global_metrics((graph, membership) in arb_graph_and_membership()) {
        let report = quality::community_report(&graph, &membership);
        let sizes: usize = report.iter().map(|d| d.size).sum();
        prop_assert_eq!(sizes, graph.num_vertices());
        let internal: f64 = report.iter().map(|d| d.internal_weight).sum();
        let boundary: f64 = report.iter().map(|d| d.boundary_weight).sum();
        prop_assert!((internal + boundary - graph.total_arc_weight()).abs() < 1e-6);
        let coverage = quality::coverage(&graph, &membership);
        if graph.total_arc_weight() > 0.0 {
            prop_assert!((internal / graph.total_arc_weight() - coverage).abs() < 1e-9);
        }
        // Connectivity flags agree with the dedicated detector.
        let broken = report.iter().filter(|d| !d.connected).count();
        let check = quality::disconnected_communities(&graph, &membership);
        prop_assert_eq!(broken, check.disconnected);
    }

    /// CPM at γ = 0 equals the intra weight; increasing γ can only
    /// decrease the score.
    #[test]
    fn cpm_is_monotone_in_gamma((graph, membership) in arb_graph_and_membership()) {
        let at0 = quality::cpm(&graph, &membership, 0.0);
        let at1 = quality::cpm(&graph, &membership, 0.5);
        let at2 = quality::cpm(&graph, &membership, 2.0);
        prop_assert!(at0 >= at1 - 1e-12);
        prop_assert!(at1 >= at2 - 1e-12);
        prop_assert!((at0 - quality::coverage(&graph, &membership) * graph.total_arc_weight() / 2.0).abs() < 1e-9);
    }
}
