//! Per-community detail reports.
//!
//! Aggregate scores (modularity, NMI) say whether a partition is good
//! overall; diagnosing *which* communities are weak needs per-community
//! structure: size, internal/boundary weight, conductance, connectivity.
//! Used by the `gve quality` CLI and the drill-down examples.

use gve_graph::{CsrGraph, GroupedCsr, VertexId};
use rayon::prelude::*;
use std::collections::VecDeque;

/// Structural details of one community.
#[derive(Debug, Clone, PartialEq)]
pub struct CommunityDetail {
    /// Community id.
    pub id: VertexId,
    /// Number of member vertices.
    pub size: usize,
    /// Total weight of internal arcs (both directions; `σ_c`).
    pub internal_weight: f64,
    /// Total weight of boundary arcs leaving the community.
    pub boundary_weight: f64,
    /// Conductance `cut / min(vol, 2m − vol)`; 0 for isolated
    /// communities.
    pub conductance: f64,
    /// Whether the induced subgraph is connected.
    pub connected: bool,
}

impl CommunityDetail {
    /// Community volume `Σ_c = σ_c + cut`.
    pub fn volume(&self) -> f64 {
        self.internal_weight + self.boundary_weight
    }
}

/// Computes [`CommunityDetail`] for every non-empty community, ordered
/// by decreasing size.
pub fn community_report(graph: &CsrGraph, membership: &[VertexId]) -> Vec<CommunityDetail> {
    assert_eq!(membership.len(), graph.num_vertices());
    if membership.is_empty() {
        return Vec::new();
    }
    let num_ids = membership.iter().map(|&c| c as usize + 1).max().unwrap();
    let groups = GroupedCsr::group_by(membership, num_ids);
    let two_m = graph.total_arc_weight();

    let mut details: Vec<CommunityDetail> = (0..num_ids as VertexId)
        .into_par_iter()
        .filter_map(|c| {
            let members = groups.members(c);
            if members.is_empty() {
                return None;
            }
            let mut internal = 0.0f64;
            let mut boundary = 0.0f64;
            for &i in members {
                for (j, w) in graph.edges(i) {
                    if membership[j as usize] == c {
                        internal += w as f64;
                    } else {
                        boundary += w as f64;
                    }
                }
            }
            let volume = internal + boundary;
            let denominator = volume.min(two_m - volume);
            let conductance = if denominator <= 0.0 {
                0.0
            } else {
                boundary / denominator
            };
            // Connectivity via BFS over the members.
            let connected = if members.len() <= 1 {
                true
            } else {
                let mut sorted = members.to_vec();
                sorted.sort_unstable();
                let mut visited = vec![false; sorted.len()];
                visited[0] = true;
                let mut reached = 1usize;
                let mut queue = VecDeque::from([sorted[0]]);
                while let Some(u) = queue.pop_front() {
                    for (v, _) in graph.edges(u) {
                        if membership[v as usize] == c {
                            let p = sorted.binary_search(&v).unwrap();
                            if !visited[p] {
                                visited[p] = true;
                                reached += 1;
                                queue.push_back(v);
                            }
                        }
                    }
                }
                reached == sorted.len()
            };
            Some(CommunityDetail {
                id: c,
                size: members.len(),
                internal_weight: internal,
                boundary_weight: boundary,
                conductance,
                connected,
            })
        })
        .collect();
    details.sort_by(|a, b| b.size.cmp(&a.size).then(a.id.cmp(&b.id)));
    details
}

/// Renders the report's top `limit` communities as an aligned text
/// table.
pub fn format_report(details: &[CommunityDetail], limit: usize) -> String {
    let mut out = String::from("  id     size   internal   boundary   conductance  connected\n");
    for d in details.iter().take(limit) {
        out.push_str(&format!(
            "{:>4} {:>8} {:>10.1} {:>10.1} {:>12.4}  {}\n",
            d.id,
            d.size,
            d.internal_weight,
            d.boundary_weight,
            d.conductance,
            if d.connected { "yes" } else { "NO" },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::disconnected_communities;
    use gve_graph::GraphBuilder;

    fn two_triangles() -> CsrGraph {
        GraphBuilder::from_edges(
            6,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 0, 1.0),
                (3, 4, 1.0),
                (4, 5, 1.0),
                (5, 3, 1.0),
                (2, 3, 1.0),
            ],
        )
    }

    #[test]
    fn report_matches_structure() {
        let g = two_triangles();
        let report = community_report(&g, &[0, 0, 0, 1, 1, 1]);
        assert_eq!(report.len(), 2);
        for d in &report {
            assert_eq!(d.size, 3);
            assert_eq!(d.internal_weight, 6.0);
            assert_eq!(d.boundary_weight, 1.0);
            assert!((d.conductance - 1.0 / 7.0).abs() < 1e-12);
            assert!(d.connected);
            assert_eq!(d.volume(), 7.0);
        }
    }

    #[test]
    fn report_flags_disconnected_communities() {
        let g = two_triangles();
        // 0 and 5 share a community without an internal path.
        let report = community_report(&g, &[0, 1, 1, 1, 1, 0]);
        let broken = report.iter().find(|d| d.size == 2).unwrap();
        assert!(!broken.connected);
        // Cross-check against the dedicated detector.
        let check = disconnected_communities(&g, &[0, 1, 1, 1, 1, 0]);
        assert_eq!(
            report.iter().filter(|d| !d.connected).count(),
            check.disconnected
        );
    }

    #[test]
    fn report_is_sorted_by_size() {
        let g = two_triangles();
        let report = community_report(&g, &[0, 0, 0, 1, 1, 2]);
        let sizes: Vec<_> = report.iter().map(|d| d.size).collect();
        assert_eq!(sizes, vec![3, 2, 1]);
    }

    #[test]
    fn format_is_stable() {
        let g = two_triangles();
        let report = community_report(&g, &[0, 0, 0, 1, 1, 1]);
        let text = format_report(&report, 10);
        assert!(text.contains("conductance"));
        assert_eq!(text.lines().count(), 3);
        // Limit respected.
        assert_eq!(format_report(&report, 1).lines().count(), 2);
    }

    #[test]
    fn empty_inputs() {
        let g = CsrGraph::empty(0);
        assert!(community_report(&g, &[]).is_empty());
    }
}
