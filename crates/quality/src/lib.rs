//! Partition quality metrics for community detection.
//!
//! Everything the paper's evaluation section measures about a partition:
//!
//! * [`modularity`] — Newman modularity (Equation 1), the quality
//!   function every implementation in Figure 6(c) optimizes;
//! * [`delta_modularity`] — the move gain of Equation 2, exposed so
//!   property tests can check the algorithm crates' incremental math
//!   against a full recomputation;
//! * [`cpm`] — the Constant Potts Model, the resolution-limit-free
//!   alternative quality function the paper cites (§2);
//! * [`connectivity`] — detection of internally-disconnected communities
//!   (Figure 6(d)); the Leiden guarantee is that there are none;
//! * [`partition`] — membership validation, renumbering and size
//!   statistics;
//! * [`compare`] — NMI and ARI against ground-truth labels, used with the
//!   planted-partition generator.

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod compare;
pub mod connectivity;
pub mod metrics;
pub mod partition;
pub mod report;

pub use compare::{adjusted_rand_index, normalized_mutual_information};
pub use connectivity::{disconnected_communities, ConnectivityReport};
pub use metrics::{
    average_conductance, coverage, cpm, delta_modularity, modularity, modularity_with_resolution,
};
pub use partition::{
    community_count, community_sizes, renumber, size_stats, validate_membership, SizeStats,
};
pub use report::{community_report, format_report, CommunityDetail};
