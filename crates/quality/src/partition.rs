//! Membership-vector utilities: validation, renumbering, size stats.

use gve_graph::VertexId;
use rayon::prelude::*;

/// Checks that a membership vector is well-formed for a graph of `n`
/// vertices: right length, and every id addressable as an index.
pub fn validate_membership(membership: &[VertexId], n: usize) -> Result<(), String> {
    if membership.len() != n {
        return Err(format!(
            "membership length {} != vertex count {n}",
            membership.len()
        ));
    }
    if let Some((v, &c)) = membership
        .iter()
        .enumerate()
        .find(|&(_, &c)| c as usize >= n.max(1))
    {
        return Err(format!("vertex {v} has community id {c} >= {n}"));
    }
    Ok(())
}

/// Number of distinct community ids used.
pub fn community_count(membership: &[VertexId]) -> usize {
    if membership.is_empty() {
        return 0;
    }
    let max = *membership.iter().max().unwrap() as usize;
    let mut seen = vec![false; max + 1];
    for &c in membership {
        seen[c as usize] = true;
    }
    seen.into_iter().filter(|&s| s).count()
}

/// Sizes of each community, indexed by community id (gaps appear as 0).
pub fn community_sizes(membership: &[VertexId]) -> Vec<usize> {
    let max = membership
        .iter()
        .map(|&c| c as usize + 1)
        .max()
        .unwrap_or(0);
    let mut sizes = vec![0usize; max];
    for &c in membership {
        sizes[c as usize] += 1;
    }
    sizes
}

/// Renumbers community ids to a dense `0..k` range preserving first-seen
/// order; returns the renumbered vector and `k`.
///
/// This is the "renumber communities" step of Algorithm 1 (line 11).
pub fn renumber(membership: &[VertexId]) -> (Vec<VertexId>, usize) {
    let max = membership
        .iter()
        .map(|&c| c as usize + 1)
        .max()
        .unwrap_or(0);
    let mut remap = vec![VertexId::MAX; max];
    let mut next = 0 as VertexId;
    let mut out = Vec::with_capacity(membership.len());
    for &c in membership {
        let slot = &mut remap[c as usize];
        if *slot == VertexId::MAX {
            *slot = next;
            next += 1;
        }
        out.push(*slot);
    }
    (out, next as usize)
}

/// Summary statistics of the community size distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct SizeStats {
    /// Number of non-empty communities.
    pub count: usize,
    /// Smallest community.
    pub min: usize,
    /// Largest community.
    pub max: usize,
    /// Mean size.
    pub mean: f64,
    /// Median size.
    pub median: usize,
}

/// Computes [`SizeStats`] over the non-empty communities. Returns `None`
/// for an empty membership.
pub fn size_stats(membership: &[VertexId]) -> Option<SizeStats> {
    let mut sizes: Vec<usize> = community_sizes(membership)
        .into_iter()
        .filter(|&s| s > 0)
        .collect();
    if sizes.is_empty() {
        return None;
    }
    sizes.sort_unstable();
    let count = sizes.len();
    Some(SizeStats {
        count,
        min: sizes[0],
        max: *sizes.last().unwrap(),
        mean: membership.len() as f64 / count as f64,
        median: sizes[count / 2],
    })
}

/// Fraction of vertices whose community holds only themselves.
pub fn singleton_fraction(membership: &[VertexId]) -> f64 {
    if membership.is_empty() {
        return 0.0;
    }
    let sizes = community_sizes(membership);
    let singles: usize = membership
        .par_iter()
        .filter(|&&c| sizes[c as usize] == 1)
        .count();
    singles as f64 / membership.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_accepts_good_membership() {
        assert!(validate_membership(&[0, 1, 0], 3).is_ok());
    }

    #[test]
    fn validate_rejects_bad_length_and_range() {
        assert!(validate_membership(&[0, 1], 3).is_err());
        let err = validate_membership(&[0, 5, 0], 3).unwrap_err();
        assert!(err.contains("vertex 1"), "{err}");
    }

    #[test]
    fn count_and_sizes() {
        let mem = [0, 2, 2, 0, 4];
        assert_eq!(community_count(&mem), 3);
        assert_eq!(community_sizes(&mem), vec![2, 0, 2, 0, 1]);
        assert_eq!(community_count(&[]), 0);
        assert_eq!(community_sizes(&[]), Vec::<usize>::new());
    }

    #[test]
    fn renumber_densifies_in_first_seen_order() {
        let (out, k) = renumber(&[7, 3, 7, 9, 3]);
        assert_eq!(out, vec![0, 1, 0, 2, 1]);
        assert_eq!(k, 3);
    }

    #[test]
    fn renumber_empty() {
        let (out, k) = renumber(&[]);
        assert!(out.is_empty());
        assert_eq!(k, 0);
    }

    #[test]
    fn renumber_is_idempotent_on_dense_input() {
        let input = vec![0, 1, 2, 1, 0];
        let (out, k) = renumber(&input);
        assert_eq!(out, input);
        assert_eq!(k, 3);
    }

    #[test]
    fn size_stats_summary() {
        // Communities: {0: 3 vertices, 2: 2, 7: 1}.
        let mem = [0, 0, 0, 2, 2, 7];
        let stats = size_stats(&mem).unwrap();
        assert_eq!(stats.count, 3);
        assert_eq!(stats.min, 1);
        assert_eq!(stats.max, 3);
        assert!((stats.mean - 2.0).abs() < 1e-12);
        assert_eq!(stats.median, 2);
        assert!(size_stats(&[]).is_none());
    }

    #[test]
    fn singleton_fraction_counts() {
        assert_eq!(singleton_fraction(&[0, 0, 1, 2]), 0.5);
        assert_eq!(singleton_fraction(&[]), 0.0);
        assert_eq!(singleton_fraction(&[0, 1, 2]), 1.0);
    }
}
