//! Detection of internally-disconnected communities.
//!
//! The headline quality guarantee of Leiden over Louvain is that every
//! returned community is internally connected (Traag et al. 2019). The
//! paper measures the *fraction of disconnected communities* for every
//! implementation (Figure 6(d)): Louvain-family methods and buggy Leiden
//! implementations produce nonzero fractions; a correct Leiden must
//! produce exactly zero. The check is a BFS restricted to each
//! community's members, run over communities in parallel.

use gve_graph::{CsrGraph, GroupedCsr, VertexId};
use rayon::prelude::*;
use std::collections::VecDeque;

/// Result of the disconnected-community scan.
#[derive(Debug, Clone, PartialEq)]
pub struct ConnectivityReport {
    /// Total number of (non-empty) communities.
    pub communities: usize,
    /// Number of communities whose induced subgraph is disconnected.
    pub disconnected: usize,
}

impl ConnectivityReport {
    /// Fraction of communities that are internally disconnected — the
    /// y-axis of Figure 6(d).
    pub fn fraction(&self) -> f64 {
        if self.communities == 0 {
            0.0
        } else {
            self.disconnected as f64 / self.communities as f64
        }
    }

    /// True when the Leiden connectivity guarantee holds.
    pub fn all_connected(&self) -> bool {
        self.disconnected == 0
    }
}

/// Scans every community for internal connectivity.
///
/// # Panics
/// Panics when `membership.len() != graph.num_vertices()`.
pub fn disconnected_communities(graph: &CsrGraph, membership: &[VertexId]) -> ConnectivityReport {
    assert_eq!(membership.len(), graph.num_vertices());
    if membership.is_empty() {
        return ConnectivityReport {
            communities: 0,
            disconnected: 0,
        };
    }
    let num_ids = membership.iter().map(|&c| c as usize + 1).max().unwrap();
    let groups = GroupedCsr::group_by(membership, num_ids);

    let (communities, disconnected) = (0..num_ids as VertexId)
        .into_par_iter()
        .map(|c| {
            let members = groups.members(c);
            if members.is_empty() {
                return (0usize, 0usize);
            }
            if members.len() == 1 {
                return (1, 0);
            }
            // BFS within the community. Membership in `members` is
            // equivalent to `membership[v] == c`, which is O(1).
            let mut visited = vec![false; members.len()];
            // Map vertex -> position for the visited bitmap without a
            // global array: use a local hash-free trick — positions via
            // binary search over the sorted member list.
            let mut sorted = members.to_vec();
            sorted.sort_unstable();
            let pos = |v: VertexId| sorted.binary_search(&v).unwrap();
            let mut queue = VecDeque::with_capacity(members.len().min(64));
            queue.push_back(sorted[0]);
            visited[0] = true;
            let mut reached = 1usize;
            while let Some(u) = queue.pop_front() {
                for (v, _) in graph.edges(u) {
                    if membership[v as usize] == c {
                        let p = pos(v);
                        if !visited[p] {
                            visited[p] = true;
                            reached += 1;
                            queue.push_back(v);
                        }
                    }
                }
            }
            (1, usize::from(reached < members.len()))
        })
        .reduce(|| (0, 0), |(c1, d1), (c2, d2)| (c1 + c2, d1 + d2));

    ConnectivityReport {
        communities,
        disconnected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gve_graph::GraphBuilder;

    fn two_triangles_with_bridge() -> CsrGraph {
        GraphBuilder::from_edges(
            6,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 0, 1.0),
                (3, 4, 1.0),
                (4, 5, 1.0),
                (5, 3, 1.0),
                (2, 3, 1.0),
            ],
        )
    }

    #[test]
    fn connected_communities_pass() {
        let g = two_triangles_with_bridge();
        let report = disconnected_communities(&g, &[0, 0, 0, 1, 1, 1]);
        assert_eq!(report.communities, 2);
        assert_eq!(report.disconnected, 0);
        assert!(report.all_connected());
        assert_eq!(report.fraction(), 0.0);
    }

    #[test]
    fn detects_disconnected_community() {
        // Vertices 0 and 5 share a community but have no internal path.
        let g = two_triangles_with_bridge();
        let report = disconnected_communities(&g, &[0, 1, 1, 1, 1, 0]);
        assert_eq!(report.communities, 2);
        assert_eq!(report.disconnected, 1);
        assert_eq!(report.fraction(), 0.5);
        assert!(!report.all_connected());
    }

    #[test]
    fn singleton_communities_are_connected() {
        let g = two_triangles_with_bridge();
        let report = disconnected_communities(&g, &[0, 1, 2, 3, 4, 5]);
        assert_eq!(report.communities, 6);
        assert!(report.all_connected());
    }

    #[test]
    fn isolated_pair_in_same_community_is_disconnected() {
        let g = CsrGraph::empty(2);
        let report = disconnected_communities(&g, &[0, 0]);
        assert_eq!(report.disconnected, 1);
    }

    #[test]
    fn gapped_community_ids_are_tolerated() {
        let g = two_triangles_with_bridge();
        // Ids 0 and 5 only; ids 1..4 unused.
        let report = disconnected_communities(&g, &[0, 0, 0, 5, 5, 5]);
        assert_eq!(report.communities, 2);
        assert!(report.all_connected());
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty(0);
        let report = disconnected_communities(&g, &[]);
        assert_eq!(report.communities, 0);
        assert_eq!(report.fraction(), 0.0);
    }
}
