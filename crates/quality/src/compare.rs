//! Partition comparison against ground truth: NMI and ARI.
//!
//! The synthetic suite replaces the paper's real graphs, so quality
//! claims need a second leg to stand on: when the generator plants a
//! partition (the SBM), we check that detected communities *recover* it.
//! Normalized mutual information and the adjusted Rand index are the two
//! standard agreement scores.

use gve_graph::VertexId;
use std::collections::HashMap;

/// Joint contingency counts between two labelings.
struct Contingency {
    joint: HashMap<(VertexId, VertexId), u64>,
    a_sizes: HashMap<VertexId, u64>,
    b_sizes: HashMap<VertexId, u64>,
    n: u64,
}

fn contingency(a: &[VertexId], b: &[VertexId]) -> Contingency {
    assert_eq!(a.len(), b.len(), "labelings must have equal length");
    let mut joint = HashMap::new();
    let mut a_sizes = HashMap::new();
    let mut b_sizes = HashMap::new();
    for (&x, &y) in a.iter().zip(b) {
        *joint.entry((x, y)).or_insert(0) += 1;
        *a_sizes.entry(x).or_insert(0) += 1;
        *b_sizes.entry(y).or_insert(0) += 1;
    }
    Contingency {
        joint,
        a_sizes,
        b_sizes,
        n: a.len() as u64,
    }
}

/// Normalized mutual information in `[0, 1]` (arithmetic-mean
/// normalization). Returns 1 for identical partitions (up to label
/// permutation) and ~0 for independent ones. Two trivial partitions
/// (both single-cluster or both all-singletons) score 1 by convention.
pub fn normalized_mutual_information(a: &[VertexId], b: &[VertexId]) -> f64 {
    let c = contingency(a, b);
    if c.n == 0 {
        return 1.0;
    }
    let n = c.n as f64;
    let mut mi = 0.0f64;
    for (&(x, y), &nxy) in &c.joint {
        let nxy = nxy as f64;
        let nx = c.a_sizes[&x] as f64;
        let ny = c.b_sizes[&y] as f64;
        mi += (nxy / n) * ((n * nxy) / (nx * ny)).ln();
    }
    let h = |sizes: &HashMap<VertexId, u64>| -> f64 {
        sizes
            .values()
            .map(|&s| {
                let p = s as f64 / n;
                -p * p.ln()
            })
            .sum()
    };
    let ha = h(&c.a_sizes);
    let hb = h(&c.b_sizes);
    if ha == 0.0 && hb == 0.0 {
        return 1.0; // both partitions trivial and identical in structure
    }
    let denom = (ha + hb) / 2.0;
    if denom == 0.0 {
        0.0
    } else {
        (mi / denom).clamp(0.0, 1.0)
    }
}

/// Adjusted Rand index in `[-1, 1]`; 1 for identical partitions, ~0 for
/// random agreement.
pub fn adjusted_rand_index(a: &[VertexId], b: &[VertexId]) -> f64 {
    let c = contingency(a, b);
    if c.n < 2 {
        return 1.0;
    }
    let choose2 = |x: u64| -> f64 { (x as f64) * (x as f64 - 1.0) / 2.0 };
    let sum_joint: f64 = c.joint.values().map(|&v| choose2(v)).sum();
    let sum_a: f64 = c.a_sizes.values().map(|&v| choose2(v)).sum();
    let sum_b: f64 = c.b_sizes.values().map(|&v| choose2(v)).sum();
    let total = choose2(c.n);
    let expected = sum_a * sum_b / total;
    let max = (sum_a + sum_b) / 2.0;
    if (max - expected).abs() < f64::EPSILON {
        1.0 // both partitions trivial
    } else {
        (sum_joint - expected) / (max - expected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_partitions_score_one() {
        let a = vec![0, 0, 1, 1, 2, 2];
        assert!((normalized_mutual_information(&a, &a) - 1.0).abs() < 1e-12);
        assert!((adjusted_rand_index(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn label_permutation_is_ignored() {
        let a = vec![0, 0, 1, 1, 2, 2];
        let b = vec![5, 5, 9, 9, 1, 1];
        assert!((normalized_mutual_information(&a, &b) - 1.0).abs() < 1e-12);
        assert!((adjusted_rand_index(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn orthogonal_partitions_score_low() {
        // a splits by half, b alternates: independent given balance.
        let a = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let b = vec![0, 1, 0, 1, 0, 1, 0, 1];
        assert!(normalized_mutual_information(&a, &b) < 0.05);
        assert!(adjusted_rand_index(&a, &b).abs() < 0.25);
    }

    #[test]
    fn partial_agreement_is_between() {
        let a = vec![0, 0, 0, 1, 1, 1];
        let b = vec![0, 0, 1, 1, 1, 1];
        let nmi = normalized_mutual_information(&a, &b);
        let ari = adjusted_rand_index(&a, &b);
        assert!(nmi > 0.2 && nmi < 1.0, "nmi {nmi}");
        assert!(ari > 0.2 && ari < 1.0, "ari {ari}");
    }

    #[test]
    fn trivial_partitions() {
        let one = vec![0, 0, 0];
        assert!((normalized_mutual_information(&one, &one) - 1.0).abs() < 1e-12);
        assert!((adjusted_rand_index(&one, &one) - 1.0).abs() < 1e-12);
        let empty: Vec<u32> = vec![];
        assert_eq!(normalized_mutual_information(&empty, &empty), 1.0);
        assert_eq!(adjusted_rand_index(&empty, &empty), 1.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn length_mismatch_panics() {
        normalized_mutual_information(&[0, 1], &[0]);
    }
}
