//! Modularity (Equation 1), delta-modularity (Equation 2) and CPM.
//!
//! Conventions follow `gve-graph`: undirected edges stored as two arcs,
//! self-loops as one arc, `K_u` counts a self-loop once and
//! `2m = Σ_u K_u`. Under these conventions modularity is invariant under
//! the aggregation used by Louvain/Leiden, which the algorithm crates'
//! tests rely on.

use gve_graph::{CsrGraph, VertexId};
use rayon::prelude::*;

/// Newman modularity `Q` of a membership vector (Equation 1 of the
/// paper), computed as `Σ_c [σ_c/2m − (Σ_c/2m)²]`.
///
/// Returns 0 for an edgeless graph (no meaningful score exists).
///
/// # Panics
/// Panics when `membership.len() != graph.num_vertices()`.
pub fn modularity(graph: &CsrGraph, membership: &[VertexId]) -> f64 {
    modularity_with_resolution(graph, membership, 1.0)
}

/// Modularity with a resolution parameter `γ`:
/// `Σ_c [σ_c/2m − γ (Σ_c/2m)²]`. `γ = 1` is Equation 1.
pub fn modularity_with_resolution(
    graph: &CsrGraph,
    membership: &[VertexId],
    resolution: f64,
) -> f64 {
    assert_eq!(
        membership.len(),
        graph.num_vertices(),
        "membership length must match the vertex count"
    );
    let two_m = graph.total_arc_weight();
    if two_m == 0.0 {
        return 0.0;
    }
    let num_communities = membership
        .iter()
        .map(|&c| c as usize + 1)
        .max()
        .unwrap_or(0);

    // Per-community totals, accumulated per worker and merged.
    let (sigma, total) = (0..graph.num_vertices())
        .into_par_iter()
        .fold(
            || (vec![0.0f64; num_communities], 0.0f64),
            |(mut sigma, mut intra), u| {
                let cu = membership[u];
                let mut k_u = 0.0;
                for (v, w) in graph.edges(u as VertexId) {
                    let w = w as f64;
                    k_u += w;
                    if membership[v as usize] == cu {
                        intra += w;
                    }
                }
                sigma[cu as usize] += k_u;
                (sigma, intra)
            },
        )
        .reduce(
            || (vec![0.0f64; num_communities], 0.0f64),
            |(mut a, ia), (b, ib)| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
                (a, ia + ib)
            },
        );

    let intra_fraction = total / two_m;
    let expected: f64 = sigma.iter().map(|&s| (s / two_m) * (s / two_m)).sum();
    intra_fraction - resolution * expected
}

/// Delta-modularity of moving vertex `i` from community `d` to `c`
/// (Equation 2):
///
/// `ΔQ = (K_{i→c} − K_{i→d}) / m − K_i (K_i + Σ_c − Σ_d) / (2m²)`
///
/// where `K_{i→x}` excludes self-loops, `Σ_d` still includes vertex `i`
/// and `Σ_c` does not.
#[inline]
pub fn delta_modularity(
    k_i_to_c: f64,
    k_i_to_d: f64,
    k_i: f64,
    sigma_c: f64,
    sigma_d: f64,
    m: f64,
) -> f64 {
    (k_i_to_c - k_i_to_d) / m - k_i * (k_i + sigma_c - sigma_d) / (2.0 * m * m)
}

/// Constant Potts Model quality:
/// `H = Σ_c [σ_c/2 − γ · n_c (n_c − 1) / 2]`
/// where `σ_c/2` is the undirected intra-community weight and `n_c` the
/// community size. Unlike modularity, CPM has no resolution limit (§2 of
/// the paper, citing Traag et al. 2011).
pub fn cpm(graph: &CsrGraph, membership: &[VertexId], gamma: f64) -> f64 {
    assert_eq!(membership.len(), graph.num_vertices());
    let num_communities = membership
        .iter()
        .map(|&c| c as usize + 1)
        .max()
        .unwrap_or(0);
    let mut sizes = vec![0u64; num_communities];
    for &c in membership {
        sizes[c as usize] += 1;
    }
    let intra: f64 = (0..graph.num_vertices())
        .into_par_iter()
        .map(|u| {
            let cu = membership[u];
            graph
                .edges(u as VertexId)
                .filter(|&(v, _)| membership[v as usize] == cu)
                .map(|(_, w)| w as f64)
                .sum::<f64>()
        })
        .sum();
    let expected: f64 = sizes
        .iter()
        .map(|&n| gamma * (n as f64) * (n as f64 - 1.0) / 2.0)
        .sum();
    intra / 2.0 - expected
}

/// Coverage: the fraction of total edge weight that falls inside
/// communities, `Σ_c σ_c / 2m ∈ [0, 1]`. The first (unpenalized) term of
/// modularity; 1 means no edge crosses a community boundary.
pub fn coverage(graph: &CsrGraph, membership: &[VertexId]) -> f64 {
    assert_eq!(membership.len(), graph.num_vertices());
    let two_m = graph.total_arc_weight();
    if two_m == 0.0 {
        return 1.0;
    }
    let intra: f64 = (0..graph.num_vertices())
        .into_par_iter()
        .map(|u| {
            let cu = membership[u];
            graph
                .edges(u as VertexId)
                .filter(|&(v, _)| membership[v as usize] == cu)
                .map(|(_, w)| w as f64)
                .sum::<f64>()
        })
        .sum();
    intra / two_m
}

/// Weighted-average conductance of the communities:
/// `φ(c) = cut(c) / min(vol(c), vol(V \ c))`, averaged weighted by
/// community volume. Lower is better; 0 means fully separated
/// communities. Communities with zero volume are skipped.
pub fn average_conductance(graph: &CsrGraph, membership: &[VertexId]) -> f64 {
    assert_eq!(membership.len(), graph.num_vertices());
    let two_m = graph.total_arc_weight();
    if two_m == 0.0 {
        return 0.0;
    }
    let num_communities = membership
        .iter()
        .map(|&c| c as usize + 1)
        .max()
        .unwrap_or(0);
    // volume[c] = Σ_{v∈c} K_v ; cut[c] = weight of arcs leaving c.
    let (volume, cut) = (0..graph.num_vertices())
        .into_par_iter()
        .fold(
            || (vec![0.0f64; num_communities], vec![0.0f64; num_communities]),
            |(mut volume, mut cut), u| {
                let cu = membership[u];
                for (v, w) in graph.edges(u as VertexId) {
                    let w = w as f64;
                    volume[cu as usize] += w;
                    if membership[v as usize] != cu {
                        cut[cu as usize] += w;
                    }
                }
                (volume, cut)
            },
        )
        .reduce(
            || (vec![0.0f64; num_communities], vec![0.0f64; num_communities]),
            |(mut va, ca), (vb, cb)| {
                for (x, y) in va.iter_mut().zip(vb) {
                    *x += y;
                }
                let mut ca = ca;
                for (x, y) in ca.iter_mut().zip(cb) {
                    *x += y;
                }
                (va, ca)
            },
        );
    let mut weighted = 0.0;
    let mut total_volume = 0.0;
    for c in 0..num_communities {
        if volume[c] == 0.0 {
            continue;
        }
        let denominator = volume[c].min(two_m - volume[c]);
        let phi = if denominator == 0.0 {
            0.0 // the community is the whole graph
        } else {
            cut[c] / denominator
        };
        weighted += phi * volume[c];
        total_volume += volume[c];
    }
    if total_volume == 0.0 {
        0.0
    } else {
        weighted / total_volume
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gve_graph::GraphBuilder;

    /// Two triangles joined by one bridge edge.
    fn two_triangles() -> CsrGraph {
        GraphBuilder::from_edges(
            6,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 0, 1.0),
                (3, 4, 1.0),
                (4, 5, 1.0),
                (5, 3, 1.0),
                (2, 3, 1.0),
            ],
        )
    }

    #[test]
    fn singleton_partition_modularity() {
        // All vertices alone: σ_c = 0 (no self-loops), so
        // Q = -Σ (K_i/2m)². Two triangles + bridge: 2m = 14.
        let g = two_triangles();
        let singleton: Vec<u32> = (0..6).collect();
        let q = modularity(&g, &singleton);
        let expected = -(4.0 * (2.0f64 / 14.0).powi(2) + 2.0 * (3.0f64 / 14.0).powi(2));
        assert!((q - expected).abs() < 1e-12, "{q} vs {expected}");
    }

    #[test]
    fn natural_partition_beats_alternatives() {
        let g = two_triangles();
        let natural = vec![0, 0, 0, 1, 1, 1];
        let all_one = vec![0; 6];
        let singleton: Vec<u32> = (0..6).collect();
        let q_nat = modularity(&g, &natural);
        assert!(q_nat > modularity(&g, &all_one));
        assert!(q_nat > modularity(&g, &singleton));
        // Known value: σ = 6 arcs of weight 1 per triangle,
        // Σ = {7, 7}: Q = 12/14 − 2·(7/14)² = 6/7 − 1/2.
        assert!((q_nat - (6.0 / 7.0 - 0.5)).abs() < 1e-12);
    }

    #[test]
    fn all_in_one_community_is_zero() {
        // Q = 2m/2m − (2m/2m)² = 0 for a loop-free graph.
        let g = two_triangles();
        assert!((modularity(&g, &[0; 6])).abs() < 1e-12);
    }

    #[test]
    fn modularity_is_within_bounds() {
        let g = two_triangles();
        for mem in [
            vec![0, 0, 0, 1, 1, 1],
            vec![0, 1, 0, 1, 0, 1],
            vec![0, 0, 1, 1, 2, 2],
        ] {
            let q = modularity(&g, &mem);
            assert!((-0.5..=1.0).contains(&q), "Q = {q} for {mem:?}");
        }
    }

    #[test]
    fn self_loop_convention_consistency() {
        // A single vertex with a self-loop in its own community:
        // σ = w, Σ = w, 2m = w → Q = 1 − 1 = 0.
        let g = GraphBuilder::from_edges(1, &[(0, 0, 5.0)]);
        assert!((modularity(&g, &[0])).abs() < 1e-12);
    }

    #[test]
    fn edgeless_graph_returns_zero() {
        let g = CsrGraph::empty(4);
        assert_eq!(modularity(&g, &[0, 1, 2, 3]), 0.0);
    }

    #[test]
    #[should_panic(expected = "membership length")]
    fn mismatched_membership_panics() {
        let g = two_triangles();
        modularity(&g, &[0, 1]);
    }

    #[test]
    fn resolution_shifts_preference() {
        // High resolution favours smaller communities.
        let g = two_triangles();
        let merged = vec![0; 6];
        let split = vec![0, 0, 0, 1, 1, 1];
        let high_m = modularity_with_resolution(&g, &merged, 4.0);
        let high_s = modularity_with_resolution(&g, &split, 4.0);
        assert!(high_s > high_m);
    }

    #[test]
    fn delta_modularity_matches_full_recomputation() {
        // Move vertex 2 from community 0 to community 1 in the
        // two-triangle graph and compare Eq. 2 against Q(after)-Q(before).
        let g = two_triangles();
        let before = vec![0u32, 0, 0, 1, 1, 1];
        let mut after = before.clone();
        after[2] = 1;
        let q_before = modularity(&g, &before);
        let q_after = modularity(&g, &after);

        let m = g.total_arc_weight() / 2.0;
        let k: Vec<f64> = (0..6).map(|u| g.weighted_degree(u)).collect();
        let sigma = |mem: &[u32], c: u32| -> f64 {
            (0..6u32)
                .filter(|&u| mem[u as usize] == c)
                .map(|u| k[u as usize])
                .sum()
        };
        let k_2_to_1: f64 = g
            .edges(2)
            .filter(|&(v, _)| before[v as usize] == 1 && v != 2)
            .map(|(_, w)| w as f64)
            .sum();
        let k_2_to_0: f64 = g
            .edges(2)
            .filter(|&(v, _)| before[v as usize] == 0 && v != 2)
            .map(|(_, w)| w as f64)
            .sum();
        let dq = delta_modularity(
            k_2_to_1,
            k_2_to_0,
            k[2],
            sigma(&before, 1),
            sigma(&before, 0),
            m,
        );
        assert!(
            (dq - (q_after - q_before)).abs() < 1e-12,
            "eq2 {dq} vs recomputed {}",
            q_after - q_before
        );
    }

    #[test]
    fn cpm_prefers_planted_split() {
        let g = two_triangles();
        let split = vec![0, 0, 0, 1, 1, 1];
        let merged = vec![0; 6];
        assert!(cpm(&g, &split, 0.5) > cpm(&g, &merged, 0.5));
    }

    #[test]
    fn cpm_gamma_zero_counts_intra_weight() {
        let g = two_triangles();
        // γ = 0: every partition scores its intra weight; one community
        // holds all 7 edges.
        assert!((cpm(&g, &[0; 6], 0.0) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn coverage_counts_intra_fraction() {
        let g = two_triangles();
        // Natural split: 12 of 14 arc-weight units intra.
        let cov = coverage(&g, &[0, 0, 0, 1, 1, 1]);
        assert!((cov - 12.0 / 14.0).abs() < 1e-12);
        assert_eq!(coverage(&g, &[0; 6]), 1.0);
        let singletons: Vec<u32> = (0..6).collect();
        assert_eq!(coverage(&g, &singletons), 0.0);
    }

    #[test]
    fn coverage_of_edgeless_graph_is_one() {
        assert_eq!(coverage(&CsrGraph::empty(3), &[0, 1, 2]), 1.0);
    }

    #[test]
    fn conductance_prefers_separated_communities() {
        let g = two_triangles();
        let natural = average_conductance(&g, &[0, 0, 0, 1, 1, 1]);
        let shuffled = average_conductance(&g, &[0, 1, 0, 1, 0, 1]);
        assert!(natural < shuffled, "{natural} vs {shuffled}");
        // Natural split: each triangle has cut 1 and volume 7 → φ = 1/7.
        assert!((natural - 1.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn conductance_of_single_community_is_zero() {
        let g = two_triangles();
        assert_eq!(average_conductance(&g, &[0; 6]), 0.0);
        assert_eq!(average_conductance(&CsrGraph::empty(2), &[0, 1]), 0.0);
    }
}
