//! Textbook sequential Louvain (Blondel et al. 2008).
//!
//! The unoptimized single-threaded reference: plain arrays, in-order
//! vertex sweeps, no pruning, no threshold scaling, sequential
//! aggregation. Deterministic, which makes it the anchor for
//! correctness tests of the parallel implementations and the natural
//! stand-in for the paper's sequential comparators.

use gve_graph::{CsrGraph, VertexId};
use gve_leiden::delta_modularity;
use gve_prim::CommunityMap;

/// Result of a sequential Louvain run.
#[derive(Debug, Clone)]
pub struct SeqResult {
    /// Community of every vertex, dense `0..k`.
    pub membership: Vec<VertexId>,
    /// Number of communities.
    pub num_communities: usize,
    /// Passes performed.
    pub passes: usize,
}

/// Runs sequential Louvain with the classic stopping rule: sweep until
/// an iteration produces no improvement above `tolerance`, aggregate,
/// repeat until a pass changes nothing or `max_passes` is hit.
pub fn sequential_louvain(graph: &CsrGraph, tolerance: f64, max_passes: usize) -> SeqResult {
    let n = graph.num_vertices();
    let mut top: Vec<VertexId> = (0..n as VertexId).collect();
    let m = graph.total_arc_weight() / 2.0;
    if n == 0 || m <= 0.0 {
        return SeqResult {
            num_communities: n,
            membership: top,
            passes: 0,
        };
    }

    let mut current: Option<CsrGraph> = None;
    let mut passes = 0;
    for _ in 0..max_passes {
        let g = current.as_ref().unwrap_or(graph);
        let n_cur = g.num_vertices();
        let weights: Vec<f64> = (0..n_cur as VertexId)
            .map(|u| g.weighted_degree(u))
            .collect();
        let mut membership: Vec<VertexId> = (0..n_cur as VertexId).collect();
        let mut sigma = weights.clone();
        let mut ht = CommunityMap::new(n_cur);

        // Local-moving sweeps.
        let mut iterations = 0usize;
        loop {
            iterations += 1;
            let mut delta_q = 0.0;
            for i in 0..n_cur as VertexId {
                let current_c = membership[i as usize];
                ht.clear();
                for (j, w) in g.edges(i) {
                    if j != i {
                        ht.add(membership[j as usize], w as f64);
                    }
                }
                let k_i = weights[i as usize];
                let k_to_current = ht.weight(current_c);
                let mut best: Option<(VertexId, f64)> = None;
                for (d, k_to_d) in ht.iter() {
                    if d == current_c {
                        continue;
                    }
                    let gain = delta_modularity(
                        k_to_d,
                        k_to_current,
                        k_i,
                        sigma[d as usize],
                        sigma[current_c as usize],
                        m,
                    );
                    if best
                        .map(|(bd, bg)| gain > bg || (gain == bg && d < bd))
                        .unwrap_or(true)
                    {
                        best = Some((d, gain));
                    }
                }
                if let Some((target, gain)) = best {
                    if gain > 0.0 {
                        sigma[current_c as usize] -= k_i;
                        sigma[target as usize] += k_i;
                        membership[i as usize] = target;
                        delta_q += gain;
                    }
                }
            }
            if delta_q <= tolerance {
                break;
            }
        }

        // Renumber, update the dendrogram.
        let (dense, k) = gve_leiden::dendrogram::renumber(&membership);
        for c in top.iter_mut() {
            *c = dense[*c as usize];
        }
        passes += 1;
        if iterations <= 1 || k == n_cur {
            break;
        }

        // Sequential aggregation via the same collision-free map.
        current = Some(aggregate_sequential(g, &dense, k));
    }

    let (final_membership, num_communities) = gve_leiden::dendrogram::renumber(&top);
    SeqResult {
        membership: final_membership,
        num_communities,
        passes,
    }
}

/// Sequentially collapses communities into super-vertices.
pub(crate) fn aggregate_sequential(
    graph: &CsrGraph,
    membership: &[VertexId],
    num_communities: usize,
) -> CsrGraph {
    // Group members per community.
    let mut members: Vec<Vec<VertexId>> = vec![Vec::new(); num_communities];
    for (v, &c) in membership.iter().enumerate() {
        members[c as usize].push(v as VertexId);
    }
    let mut ht = CommunityMap::new(num_communities);
    let mut builder = gve_graph::GraphBuilder::new()
        .with_vertices(num_communities)
        .symmetrize(false)
        .dedup(false);
    for (c, group) in members.iter().enumerate() {
        ht.clear();
        for &i in group {
            for (j, w) in graph.edges(i) {
                ht.add(membership[j as usize], w as f64);
            }
        }
        for (d, w) in ht.iter() {
            builder.add_edge(c as VertexId, d, w as f32);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gve_graph::GraphBuilder;

    fn two_triangles() -> CsrGraph {
        GraphBuilder::from_edges(
            6,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 0, 1.0),
                (3, 4, 1.0),
                (4, 5, 1.0),
                (5, 3, 1.0),
                (2, 3, 1.0),
            ],
        )
    }

    #[test]
    fn finds_the_triangles() {
        let r = sequential_louvain(&two_triangles(), 1e-6, 10);
        assert_eq!(r.num_communities, 2);
        assert_eq!(r.membership[0], r.membership[1]);
        assert_ne!(r.membership[0], r.membership[5]);
    }

    #[test]
    fn is_deterministic() {
        let g = gve_generate::rmat::Rmat::web(9, 4.0).seed(8).generate();
        let a = sequential_louvain(&g, 1e-6, 10);
        let b = sequential_louvain(&g, 1e-6, 10);
        assert_eq!(a.membership, b.membership);
    }

    #[test]
    fn quality_matches_parallel_ballpark() {
        let g = gve_generate::sbm::PlantedPartition::new(800, 8, 12.0, 1.0)
            .seed(2)
            .generate()
            .graph;
        let q_seq = gve_quality::modularity(&g, &sequential_louvain(&g, 1e-6, 10).membership);
        let q_par = gve_quality::modularity(&g, &crate::louvain(&g).membership);
        assert!((q_seq - q_par).abs() < 0.1, "seq {q_seq} vs par {q_par}");
    }

    #[test]
    fn sequential_aggregation_preserves_weight() {
        let g = two_triangles();
        let sup = aggregate_sequential(&g, &[0, 0, 0, 1, 1, 1], 2);
        assert_eq!(sup.num_vertices(), 2);
        assert_eq!(sup.total_arc_weight(), g.total_arc_weight());
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(sequential_louvain(&CsrGraph::empty(0), 1e-6, 10).passes, 0);
        let r = sequential_louvain(&CsrGraph::empty(4), 1e-6, 10);
        assert_eq!(r.membership, vec![0, 1, 2, 3]);
    }
}
