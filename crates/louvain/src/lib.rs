//! GVE-Louvain: the optimized parallel Louvain method the paper's Leiden
//! implementation extends (\[23\] in the paper), plus a textbook sequential
//! Louvain baseline.
//!
//! Louvain is Leiden without the refinement phase: local-moving then
//! aggregation, repeated on the shrinking super-vertex graph. It is both
//! a performance comparator (same optimization stack, one phase fewer)
//! and the honest producer of *internally-disconnected communities* for
//! Figure 6(d) — the defect Leiden's refinement exists to fix.

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod seq;

use gve_graph::{props::vertex_weights, CsrGraph, VertexId};
use gve_leiden::config::LeidenConfig;
use gve_leiden::dendrogram;
use gve_leiden::timing::{PassStats, PhaseTimings};
use gve_leiden::{aggregate, localmove};
use gve_prim::atomics::{atomic_f64_from_slice, AtomicF64};
use gve_prim::{AtomicBitset, CommunityMap, PerThread};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::{Duration, Instant};

/// Configuration for GVE-Louvain. Reuses the Leiden parameter set; the
/// refinement-specific fields are ignored.
pub type LouvainConfig = LeidenConfig;

/// Outcome of a GVE-Louvain run.
#[derive(Debug, Clone)]
pub struct LouvainResult {
    /// Community of every vertex, dense `0..k`.
    pub membership: Vec<VertexId>,
    /// Number of communities.
    pub num_communities: usize,
    /// Passes performed.
    pub passes: usize,
    /// Total local-moving iterations.
    pub move_iterations: usize,
    /// Per-phase wall time (refinement always zero).
    pub timings: PhaseTimings,
    /// Per-pass statistics.
    pub pass_stats: Vec<PassStats>,
}

/// The GVE-Louvain runner.
#[derive(Debug, Clone, Default)]
pub struct Louvain {
    config: LouvainConfig,
}

/// Runs GVE-Louvain with default configuration.
pub fn louvain(graph: &CsrGraph) -> LouvainResult {
    Louvain::default().run(graph)
}

impl Louvain {
    /// Creates a runner with the given configuration.
    ///
    /// # Panics
    /// Panics when the configuration is invalid, or when a CPM objective
    /// is requested — this Louvain tracks weighted degrees only; use
    /// `gve-leiden` for CPM.
    pub fn new(config: LouvainConfig) -> Self {
        config.validate().expect("invalid Louvain configuration");
        assert!(
            !config.objective.penalty_is_size(),
            "GVE-Louvain supports the modularity objective only"
        );
        Self { config }
    }

    /// Runs the Louvain method: local-moving + aggregation per pass.
    pub fn run(&self, graph: &CsrGraph) -> LouvainResult {
        let config = &self.config;
        let n = graph.num_vertices();
        let mut timings = PhaseTimings::default();
        let mut pass_stats = Vec::new();
        let mut top: Vec<VertexId> = (0..n as VertexId).collect();
        let m = graph.total_arc_weight() / 2.0;
        if n == 0 || m <= 0.0 {
            return LouvainResult {
                num_communities: n,
                membership: top,
                passes: 0,
                move_iterations: 0,
                timings,
                pass_stats,
            };
        }

        let tables: PerThread<CommunityMap> = PerThread::new(move || CommunityMap::new(n));
        let coeffs = config.objective.coeffs(m);
        let mut current: Option<CsrGraph> = None;
        let mut tolerance = config.initial_tolerance;
        let mut move_iterations = 0usize;
        let mut passes = 0usize;

        for pass in 0..config.max_passes {
            let g: &CsrGraph = current.as_ref().unwrap_or(graph);
            let n_cur = g.num_vertices();
            let t_pass = Instant::now();

            let t0 = Instant::now();
            let weights = vertex_weights(g);
            let membership: Vec<AtomicU32> = (0..n_cur as u32).map(AtomicU32::new).collect();
            let sigma: Vec<AtomicF64> = atomic_f64_from_slice(&weights);
            let unprocessed = AtomicBitset::new_all_set(n_cur);
            timings.other += t0.elapsed();

            let t1 = Instant::now();
            let outcome = localmove::local_move(
                g,
                &membership,
                &weights,
                &sigma,
                coeffs,
                tolerance,
                config,
                &tables,
                &unprocessed,
            );
            let local_move_time = t1.elapsed();
            timings.local_move += local_move_time;
            let li = outcome.gains.len();
            move_iterations += li;

            let t2 = Instant::now();
            // Relaxed: post-join read-back of local_move's stores.
            let moved_membership: Vec<VertexId> = membership
                .par_iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect();
            let (dense, k) = dendrogram::renumber(&moved_membership);
            dendrogram::lookup(&mut top, &dense);
            timings.other += t2.elapsed();

            passes += 1;
            pass_stats.push(PassStats {
                pass,
                vertices: n_cur,
                arcs: g.num_arcs(),
                move_iterations: li,
                iteration_gains: outcome.gains,
                refine_moves: 0, // Louvain has no refinement phase
                communities: k,
                pruning_processed: outcome.pruning_processed,
                pruning_skipped: outcome.pruning_skipped,
                tolerance,
                sched_chunks: outcome.sched.chunks,
                sched_steals: outcome.sched.steals,
                local_move_time,
                refinement_time: Duration::ZERO,
                aggregation_time: Duration::ZERO,
                duration: t_pass.elapsed(),
            });

            if li <= 1 {
                break; // converged: a single quiet iteration
            }
            if config.use_aggregation_tolerance
                && (k as f64) > config.aggregation_tolerance * (n_cur as f64)
            {
                break;
            }
            if pass + 1 == config.max_passes {
                break;
            }

            let t3 = Instant::now();
            let dense_atomic: Vec<AtomicU32> = dense.iter().map(|&c| AtomicU32::new(c)).collect();
            let supergraph = aggregate::aggregate(
                g,
                &dense_atomic,
                &dense,
                k,
                (config.chunk_size / 4).max(1),
                &tables,
                (config.kernel == gve_leiden::KernelVersion::V2)
                    .then_some(config.small_degree_threshold),
            );
            let aggregation_time = t3.elapsed();
            timings.aggregation += aggregation_time;
            if let Some(ps) = pass_stats.last_mut() {
                ps.aggregation_time = aggregation_time;
                ps.duration = t_pass.elapsed();
            }

            current = Some(supergraph);
            if config.threshold_scaling {
                tolerance /= config.tolerance_drop;
            }
        }

        let (final_membership, num_communities) = dendrogram::renumber(&top);
        LouvainResult {
            membership: final_membership,
            num_communities,
            passes,
            move_iterations,
            timings,
            pass_stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gve_graph::GraphBuilder;

    #[test]
    fn detects_two_triangles() {
        let g = GraphBuilder::from_edges(
            6,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 0, 1.0),
                (3, 4, 1.0),
                (4, 5, 1.0),
                (5, 3, 1.0),
                (2, 3, 1.0),
            ],
        );
        let r = louvain(&g);
        assert_eq!(r.num_communities, 2);
        assert_eq!(r.membership[0], r.membership[2]);
        assert_ne!(r.membership[0], r.membership[4]);
    }

    #[test]
    fn recovers_planted_partition() {
        let planted = gve_generate::sbm::PlantedPartition::new(1500, 10, 14.0, 1.0)
            .seed(3)
            .generate();
        let r = louvain(&planted.graph);
        let nmi = gve_quality::normalized_mutual_information(&r.membership, &planted.labels);
        assert!(nmi > 0.85, "NMI {nmi}");
    }

    #[test]
    fn modularity_comparable_to_leiden() {
        let g = gve_generate::rmat::Rmat::web(10, 8.0).seed(4).generate();
        let q_louvain = gve_quality::modularity(&g, &louvain(&g).membership);
        let q_leiden = gve_quality::modularity(&g, &gve_leiden::leiden(&g).membership);
        // Louvain should land in the same quality ballpark (Fig. 6(c)).
        assert!(
            q_louvain > q_leiden - 0.1,
            "Louvain {q_louvain} far below Leiden {q_leiden}"
        );
    }

    #[test]
    fn refinement_time_is_zero() {
        let g = gve_generate::rmat::Rmat::web(9, 4.0).seed(5).generate();
        let r = louvain(&g);
        assert_eq!(r.timings.refinement.as_nanos(), 0);
        assert!(r.timings.local_move.as_nanos() > 0);
    }

    #[test]
    fn empty_and_edgeless_inputs() {
        assert_eq!(louvain(&CsrGraph::empty(0)).num_communities, 0);
        let r = louvain(&CsrGraph::empty(3));
        assert_eq!(r.membership, vec![0, 1, 2]);
    }
}
