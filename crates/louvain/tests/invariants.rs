//! Property-based invariants of GVE-Louvain and the sequential baseline.

use gve_graph::{CsrGraph, GraphBuilder};
use gve_louvain::{louvain, seq::sequential_louvain};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    (2u32..80).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n, 1u32..4), 0..250).prop_map(move |edges| {
            let typed: Vec<(u32, u32, f32)> = edges
                .into_iter()
                .map(|(u, v, w)| (u, v, w as f32))
                .collect();
            GraphBuilder::from_edges(n as usize, &typed)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Parallel Louvain always yields a valid dense partition with
    /// modularity no worse than singletons.
    #[test]
    fn parallel_louvain_invariants(graph in arb_graph()) {
        let result = louvain(&graph);
        gve_quality::validate_membership(&result.membership, graph.num_vertices()).unwrap();
        let max = result.membership.iter().copied().max().unwrap_or(0) as usize;
        prop_assert_eq!(max + 1, result.num_communities.max(1));
        let q = gve_quality::modularity(&graph, &result.membership);
        prop_assert!((-0.5..=1.0 + 1e-9).contains(&q));
        let singletons: Vec<u32> = (0..graph.num_vertices() as u32).collect();
        let q0 = gve_quality::modularity(&graph, &singletons);
        prop_assert!(q >= q0 - 0.02, "Q {} < singleton {}", q, q0);
        prop_assert_eq!(result.pass_stats.len(), result.passes);
    }

    /// Sequential Louvain is deterministic and monotone in quality.
    #[test]
    fn sequential_louvain_invariants(graph in arb_graph()) {
        let a = sequential_louvain(&graph, 1e-6, 10);
        let b = sequential_louvain(&graph, 1e-6, 10);
        prop_assert_eq!(&a.membership, &b.membership, "nondeterministic");
        gve_quality::validate_membership(&a.membership, graph.num_vertices()).unwrap();
        let q = gve_quality::modularity(&graph, &a.membership);
        let singletons: Vec<u32> = (0..graph.num_vertices() as u32).collect();
        prop_assert!(q >= gve_quality::modularity(&graph, &singletons) - 1e-9);
    }

    /// Parallel and sequential Louvain land in the same quality band.
    #[test]
    fn parallel_matches_sequential_quality(graph in arb_graph()) {
        prop_assume!(graph.num_arcs() > 0);
        let q_par = gve_quality::modularity(&graph, &louvain(&graph).membership);
        let q_seq = gve_quality::modularity(
            &graph,
            &sequential_louvain(&graph, 1e-6, 10).membership,
        );
        prop_assert!((q_par - q_seq).abs() < 0.15, "par {} vs seq {}", q_par, q_seq);
    }
}
