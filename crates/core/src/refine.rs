//! The refinement phase (Algorithm 3 of the paper).
//!
//! After the local-moving phase, every vertex is reset to a singleton
//! community and allowed one *constrained merge*: it may only join a
//! community inside its local-moving community (its *community bound*
//! `C'_B`), and only while it is still *isolated* — i.e. nothing has
//! merged into it. Isolation is claimed with the exact compare-and-swap
//! `Σ'[c]: K'[i] → 0` from the paper, which is what splits
//! internally-disconnected local-moving communities and prevents new
//! ones from forming.
//!
//! Two strategies are implemented (§4.1): *greedy* (maximum
//! delta-modularity, the paper's recommendation) and *random*
//! (probability proportional to delta-modularity via xorshift32, the
//! original Leiden behaviour).

use crate::config::{LeidenConfig, RefinementStrategy};
use crate::localmove::schedule_for;
use crate::objective::GainCoeffs;
use gve_graph::{CsrGraph, VertexId};
use gve_prim::atomics::AtomicF64;
use gve_prim::sched::{scheduled_workers, SchedStats};
use gve_prim::{CommunityMap, HashScanMap, PerThread, SmallScanMap, Xorshift32};
use std::sync::atomic::{AtomicU32, Ordering};

/// Scans the communities adjacent to `i` *within the same community
/// bound* (`scanBounded` of Algorithm 3).
#[inline]
fn scan_bounded(
    ht: &mut CommunityMap,
    graph: &CsrGraph,
    bounds: &[VertexId],
    membership: &[AtomicU32],
    i: VertexId,
) {
    let bound = bounds[i as usize];
    for (j, w) in graph.scan_edges(i) {
        if j == i || bounds[j as usize] != bound {
            continue;
        }
        // Relaxed: stale neighbor communities are tolerated by the
        // asynchronous design; the CAS claim below is what isolates
        // the actual merge.
        ht.add(membership[j as usize].load(Ordering::Relaxed), w as f64);
    }
}

/// Runs the refinement phase; returns the number of vertices that
/// changed community (the paper's `l_j`) plus the phase's scheduling
/// counters.
#[allow(clippy::too_many_arguments)]
pub(crate) fn refine(
    graph: &CsrGraph,
    bounds: &[VertexId],
    membership: &[AtomicU32],
    penalty: &[f64],
    sigma: &[AtomicF64],
    coeffs: GainCoeffs,
    config: &LeidenConfig,
    tables: &PerThread<CommunityMap>,
    pass_seed: u64,
) -> (u64, SchedStats) {
    let n = graph.num_vertices();

    let (results, sched) = scheduled_workers(n, schedule_for(config, graph), |claims| {
        tables.with(|ht| {
            let mut small = SmallScanMap::new();
            let mut hash = HashScanMap::new();
            let mut candidates: Vec<(VertexId, f64)> = Vec::new();
            let mut moves = 0u64;
            for range in claims {
                for i in range {
                    // Relaxed: `i` moves only via this worker; the Σ'
                    // CAS below carries the cross-thread claim.
                    let current = membership[i].load(Ordering::Relaxed);
                    let p_i = penalty[i];
                    // Only isolated vertices may merge (constrained
                    // merge); bit-exact equality is intended — Σ' was
                    // stored from this same value.
                    if sigma[current as usize].load() != p_i {
                        continue;
                    }
                    let i = i as VertexId;
                    let target = match config.refinement {
                        // Greedy goes through the degree-aware dispatch
                        // (fused for low-degree vertices under kernel
                        // v2); random stays on the two-pass path, whose
                        // proportional draw needs the full candidate set.
                        RefinementStrategy::Greedy => crate::kernel::best_move(
                            ht,
                            &mut small,
                            &mut hash,
                            graph,
                            membership,
                            Some(bounds),
                            i,
                            current,
                            p_i,
                            sigma,
                            coeffs,
                            config,
                        )
                        .map(|(t, _)| t),
                        RefinementStrategy::Random => {
                            ht.clear();
                            scan_bounded(ht, graph, bounds, membership, i);
                            choose_proportional(
                                ht,
                                current,
                                p_i,
                                sigma,
                                coeffs,
                                &mut candidates,
                                &mut Xorshift32::new(crate::stream_seed(
                                    pass_seed ^ config.seed,
                                    i as u64,
                                )),
                            )
                        }
                    };
                    let Some(target) = target else { continue };
                    if target == current {
                        continue;
                    }
                    // Claim isolation: Σ'[current] goes K_i → 0 exactly
                    // once; a concurrent joiner breaks the claim.
                    if sigma[current as usize].compare_exchange(p_i, 0.0).is_ok() {
                        let previous = sigma[target as usize].fetch_add(p_i);
                        if previous == 0.0 {
                            // The target community's founder left in the
                            // same instant; joining would strand us in an
                            // empty community. Undo both sides (adds, not
                            // stores, so concurrent joiners of *our*
                            // community stay consistent) and remain
                            // singleton.
                            sigma[target as usize].fetch_sub(p_i);
                            sigma[current as usize].fetch_add(p_i);
                        } else {
                            // Relaxed: scanners tolerate staleness; the
                            // end-of-phase join publishes final values.
                            membership[i as usize].store(target, Ordering::Relaxed);
                            moves += 1;
                        }
                    }
                }
            }
            moves
        })
    });
    (results.into_iter().sum(), sched)
}

/// Random-proportional community choice over positive-gain candidates.
#[inline]
fn choose_proportional(
    ht: &CommunityMap,
    current: VertexId,
    p_i: f64,
    sigma: &[AtomicF64],
    coeffs: GainCoeffs,
    candidates: &mut Vec<(VertexId, f64)>,
    rng: &mut Xorshift32,
) -> Option<VertexId> {
    candidates.clear();
    let k_to_current = ht.weight(current);
    let sigma_current = sigma[current as usize].load();
    for (d, k_to_d) in ht.iter() {
        if d == current {
            continue;
        }
        let gain = coeffs.gain(
            k_to_d,
            k_to_current,
            p_i,
            sigma[d as usize].load(),
            sigma_current,
        );
        if gain > 0.0 {
            candidates.push((d, gain));
        }
    }
    if candidates.is_empty() {
        return None;
    }
    // Proportional selection without allocating a separate weight array.
    let total: f64 = candidates.iter().map(|&(_, g)| g).sum();
    let mut roll = rng.next_f64() * total;
    for &(d, g) in candidates.iter() {
        roll -= g;
        if roll < 0.0 {
            return Some(d);
        }
    }
    candidates.last().map(|&(d, _)| d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::Objective;
    use gve_graph::GraphBuilder;
    use gve_prim::atomics::atomic_f64_from_slice;

    fn identity_membership(n: usize) -> Vec<AtomicU32> {
        (0..n as u32).map(AtomicU32::new).collect()
    }

    fn snapshot(membership: &[AtomicU32]) -> Vec<u32> {
        membership
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Barbell: two triangles bridged, all in ONE bound community —
    /// refinement must split it into the two triangles.
    #[test]
    fn splits_weakly_connected_bound() {
        let graph = GraphBuilder::from_edges(
            6,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 0, 1.0),
                (3, 4, 1.0),
                (4, 5, 1.0),
                (5, 3, 1.0),
                (2, 3, 1.0),
            ],
        );
        let bounds = vec![0u32; 6]; // everything in one bound
        let membership = identity_membership(6);
        let weights: Vec<f64> = (0..6u32).map(|u| graph.weighted_degree(u)).collect();
        let sigma = atomic_f64_from_slice(&weights);
        let m = graph.total_arc_weight() / 2.0;
        let config = LeidenConfig::default();
        let tables = PerThread::new(|| CommunityMap::new(6));
        let (moved, sched) = refine(
            &graph,
            &bounds,
            &membership,
            &weights,
            &sigma,
            Objective::default().coeffs(m),
            &config,
            &tables,
            0,
        );
        assert!(moved > 0);
        assert!(sched.chunks > 0, "refinement must report claimed chunks");
        let mem = snapshot(&membership);
        // Refinement merges isolated vertices into sub-communities; the
        // partition must be strictly coarser than singletons and every
        // sub-community must stay within the bound (trivially true here)
        // and be internally connected.
        let report = gve_quality::disconnected_communities(&graph, &mem);
        assert!(report.all_connected(), "disconnected: {report:?}");
        assert!(report.communities < 6, "no merges happened");
    }

    #[test]
    fn never_crosses_community_bounds() {
        let graph = GraphBuilder::from_edges(
            6,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 0, 1.0),
                (3, 4, 1.0),
                (4, 5, 1.0),
                (5, 3, 1.0),
                (2, 3, 5.0), // heavy bridge, tempting to cross
            ],
        );
        let bounds = vec![0, 0, 0, 1, 1, 1];
        let membership = identity_membership(6);
        let weights: Vec<f64> = (0..6u32).map(|u| graph.weighted_degree(u)).collect();
        let sigma = atomic_f64_from_slice(&weights);
        let m = graph.total_arc_weight() / 2.0;
        let config = LeidenConfig::default();
        let tables = PerThread::new(|| CommunityMap::new(6));
        refine(
            &graph,
            &bounds,
            &membership,
            &weights,
            &sigma,
            Objective::default().coeffs(m),
            &config,
            &tables,
            0,
        );
        let mem = snapshot(&membership);
        for v in 0..6usize {
            // The community id a vertex adopts is another vertex's id in
            // the same bound.
            assert_eq!(
                bounds[mem[v] as usize], bounds[v],
                "vertex {v} escaped its bound: {mem:?}"
            );
        }
    }

    #[test]
    fn sigma_conserved_and_consistent_after_refine() {
        let graph = gve_generate::sbm::PlantedPartition::new(600, 12, 10.0, 1.0)
            .seed(5)
            .generate()
            .graph;
        let n = graph.num_vertices();
        let bounds: Vec<u32> = (0..n as u32).map(|v| v % 12).collect();
        let membership = identity_membership(n);
        let weights: Vec<f64> = (0..n as u32).map(|u| graph.weighted_degree(u)).collect();
        let sigma = atomic_f64_from_slice(&weights);
        let m = graph.total_arc_weight() / 2.0;
        let config = LeidenConfig::default();
        let tables = PerThread::new(move || CommunityMap::new(n));
        refine(
            &graph,
            &bounds,
            &membership,
            &weights,
            &sigma,
            Objective::default().coeffs(m),
            &config,
            &tables,
            1,
        );
        let mem = snapshot(&membership);
        let mut expect = vec![0.0f64; n];
        for (v, &c) in mem.iter().enumerate() {
            expect[c as usize] += weights[v];
        }
        for (c, s) in sigma.iter().enumerate() {
            assert!(
                (s.load() - expect[c]).abs() < 1e-6,
                "Σ[{c}] = {} expected {}",
                s.load(),
                expect[c]
            );
        }
    }

    #[test]
    fn random_strategy_is_seed_deterministic_sequentially() {
        // With one rayon thread the random refinement is reproducible.
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let run = |seed: u64| {
            pool.install(|| {
                let graph = GraphBuilder::from_edges(
                    6,
                    &[
                        (0, 1, 1.0),
                        (1, 2, 1.0),
                        (2, 0, 1.0),
                        (3, 4, 1.0),
                        (4, 5, 1.0),
                        (5, 3, 1.0),
                    ],
                );
                let bounds = vec![0, 0, 0, 1, 1, 1];
                let membership = identity_membership(6);
                let weights: Vec<f64> = (0..6u32).map(|u| graph.weighted_degree(u)).collect();
                let sigma = atomic_f64_from_slice(&weights);
                let m = graph.total_arc_weight() / 2.0;
                let config = LeidenConfig::default()
                    .refinement(RefinementStrategy::Random)
                    .seed(seed);
                let tables = PerThread::new(|| CommunityMap::new(6));
                refine(
                    &graph,
                    &bounds,
                    &membership,
                    &weights,
                    &sigma,
                    Objective::default().coeffs(m),
                    &config,
                    &tables,
                    0,
                );
                snapshot(&membership)
            })
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn empty_and_isolated_graphs_do_nothing() {
        let graph = CsrGraph::empty(3);
        let bounds = vec![0, 1, 2];
        let membership = identity_membership(3);
        let weights = vec![0.0; 3];
        let sigma = atomic_f64_from_slice(&weights);
        let config = LeidenConfig::default();
        let tables = PerThread::new(|| CommunityMap::new(3));
        let (moved, _) = refine(
            &graph,
            &bounds,
            &membership,
            &weights,
            &sigma,
            Objective::default().coeffs(1.0),
            &config,
            &tables,
            0,
        );
        assert_eq!(moved, 0);
        assert_eq!(snapshot(&membership), vec![0, 1, 2]);
    }
}
