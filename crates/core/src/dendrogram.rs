//! Dendrogram bookkeeping: renumbering and top-level lookup.
//!
//! Each pass coarsens the graph; the top-level membership `C` maps every
//! *original* vertex to its current super-vertex. After a pass produces a
//! child membership `C'` over the current super-vertices, the dendrogram
//! lookup composes the two: `C[v] ← C'[C[v]]` (Algorithm 1, lines 12 and
//! 16).

use gve_graph::VertexId;
use rayon::prelude::*;

/// Renumbers community ids to dense `0..k` in first-seen order; returns
/// the dense vector and `k`. Sequential — the remap table is tiny
/// relative to the scatter that follows.
pub fn renumber(membership: &[VertexId]) -> (Vec<VertexId>, usize) {
    let max = membership
        .iter()
        .map(|&c| c as usize + 1)
        .max()
        .unwrap_or(0);
    let mut remap = vec![VertexId::MAX; max];
    let mut next: VertexId = 0;
    let mut out = Vec::with_capacity(membership.len());
    for &c in membership {
        let slot = &mut remap[c as usize];
        if *slot == VertexId::MAX {
            *slot = next;
            next += 1;
        }
        out.push(*slot);
    }
    (out, next as usize)
}

/// Composes the top-level membership with a child membership, in
/// parallel: `top[v] = child[top[v]]`.
pub fn lookup(top: &mut [VertexId], child: &[VertexId]) {
    top.par_iter_mut().for_each(|c| {
        *c = child[*c as usize];
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renumber_first_seen_order() {
        let (out, k) = renumber(&[5, 2, 5, 0]);
        assert_eq!(out, vec![0, 1, 0, 2]);
        assert_eq!(k, 3);
    }

    #[test]
    fn renumber_empty() {
        let (out, k) = renumber(&[]);
        assert!(out.is_empty());
        assert_eq!(k, 0);
    }

    #[test]
    fn lookup_composes() {
        // Original 5 vertices currently in super-vertices [0,0,1,2,1];
        // pass merges super-vertices 0,1 → 0 and 2 → 1.
        let mut top = vec![0, 0, 1, 2, 1];
        lookup(&mut top, &[0, 0, 1]);
        assert_eq!(top, vec![0, 0, 0, 1, 0]);
    }

    #[test]
    fn lookup_identity_is_noop() {
        let mut top = vec![2, 0, 1];
        lookup(&mut top, &[0, 1, 2]);
        assert_eq!(top, vec![2, 0, 1]);
    }
}
