//! Dendrogram bookkeeping: renumbering and top-level lookup.
//!
//! Each pass coarsens the graph; the top-level membership `C` maps every
//! *original* vertex to its current super-vertex. After a pass produces a
//! child membership `C'` over the current super-vertices, the dendrogram
//! lookup composes the two: `C[v] ← C'[C[v]]` (Algorithm 1, lines 12 and
//! 16).

use gve_graph::VertexId;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

/// Below this length the parallel renumber falls back to the serial
/// single-sweep algorithm (four parallel passes don't pay for tiny
/// inputs).
const PARALLEL_RENUMBER_THRESHOLD: usize = 1 << 15;

/// Renumbers community ids to dense `0..k` in first-seen order; returns
/// the dense vector and `k`. Sequential — the remap table is tiny
/// relative to the scatter that follows.
pub fn renumber(membership: &[VertexId]) -> (Vec<VertexId>, usize) {
    let max = membership
        .iter()
        .map(|&c| c as usize + 1)
        .max()
        .unwrap_or(0);
    let mut remap = vec![VertexId::MAX; max];
    let mut next: VertexId = 0;
    let mut out = Vec::with_capacity(membership.len());
    for &c in membership {
        let slot = &mut remap[c as usize];
        if *slot == VertexId::MAX {
            *slot = next;
            next += 1;
        }
        out.push(*slot);
    }
    (out, next as usize)
}

/// Allocation-free, parallel variant of [`renumber`]: densifies `src`
/// into `out` (same length) in **exactly** the serial first-seen order
/// and returns `k`. Caller-provided scratch makes it workspace-friendly:
///
/// * `id_bound` — exclusive upper bound on the values in `src`
///   (`first.len() >= id_bound` required);
/// * `first` — first-occurrence scratch, at least `id_bound` slots;
/// * `rank` — prefix-sum scratch, at least `src.len()` slots.
///
/// Four data-parallel passes reproduce the serial semantics: (1) a
/// `fetch_min` race finds each community's first occurrence, (2) flag
/// those positions, (3) an exclusive prefix sum turns the flags into
/// dense first-seen ranks, (4) every element reads its community's rank
/// through the first occurrence. Step outputs are deterministic — the
/// `fetch_min` is commutative and everything else is a pure map — so
/// the result is bit-identical to [`renumber`] at any thread count.
///
/// # Panics
/// Panics (via index checks) when a value of `src` is `>= id_bound` or
/// the scratch slices are too short.
pub fn renumber_into(
    src: &[VertexId],
    out: &mut [VertexId],
    id_bound: usize,
    first: &[AtomicU32],
    rank: &mut [u64],
) -> usize {
    assert_eq!(src.len(), out.len());
    if src.len() < PARALLEL_RENUMBER_THRESHOLD {
        // Serial fallback: the classic single sweep, using `first` as
        // the remap table. Relaxed throughout — single-threaded here.
        let first = &first[..id_bound];
        for slot in first {
            slot.store(VertexId::MAX, Ordering::Relaxed);
        }
        let mut next: VertexId = 0;
        for (o, &c) in out.iter_mut().zip(src) {
            let slot = &first[c as usize];
            // Relaxed: single-threaded fallback, no concurrent access.
            let mut dense = slot.load(Ordering::Relaxed);
            if dense == VertexId::MAX {
                dense = next;
                slot.store(dense, Ordering::Relaxed);
                next += 1;
            }
            *o = dense;
        }
        return next as usize;
    }

    let first = &first[..id_bound];
    let rank = &mut rank[..src.len()];
    // (1) First occurrence of every community id. Relaxed: commutative
    // min-race between joins, published by the join.
    first
        .par_iter()
        .for_each(|slot| slot.store(VertexId::MAX, Ordering::Relaxed));
    src.par_iter().enumerate().for_each(|(v, &c)| {
        first[c as usize].fetch_min(v as u32, Ordering::Relaxed);
    });
    // (2) Flag first occurrences, (3) prefix-sum into first-seen ranks.
    // Relaxed: pure read of values published by the preceding join.
    rank.par_iter_mut().enumerate().for_each(|(v, slot)| {
        *slot = u64::from(first[src[v] as usize].load(Ordering::Relaxed) == v as u32);
    });
    let k = gve_prim::parallel_exclusive_scan(rank) as usize;
    // (4) Scatter: each element takes its community's dense rank.
    // Relaxed: pure read of values published by the preceding join.
    let rank = &*rank;
    out.par_iter_mut().enumerate().for_each(|(v, o)| {
        *o = rank[first[src[v] as usize].load(Ordering::Relaxed) as usize] as u32;
    });
    k
}

/// Composes the top-level membership with a child membership, in
/// parallel: `top[v] = child[top[v]]`.
pub fn lookup(top: &mut [VertexId], child: &[VertexId]) {
    top.par_iter_mut().for_each(|c| {
        *c = child[*c as usize];
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renumber_first_seen_order() {
        let (out, k) = renumber(&[5, 2, 5, 0]);
        assert_eq!(out, vec![0, 1, 0, 2]);
        assert_eq!(k, 3);
    }

    #[test]
    fn renumber_empty() {
        let (out, k) = renumber(&[]);
        assert!(out.is_empty());
        assert_eq!(k, 0);
    }

    fn renumber_into_checked(src: &[VertexId], id_bound: usize) -> (Vec<VertexId>, usize) {
        let first: Vec<AtomicU32> = (0..id_bound).map(|_| AtomicU32::new(0)).collect();
        let mut rank = vec![0u64; src.len()];
        let mut out = vec![0; src.len()];
        let k = renumber_into(src, &mut out, id_bound, &first, &mut rank);
        (out, k)
    }

    #[test]
    fn renumber_into_matches_serial_small() {
        let src = vec![5, 2, 5, 0];
        assert_eq!(renumber_into_checked(&src, 6), renumber(&src));
        assert_eq!(renumber_into_checked(&[], 0), (vec![], 0));
    }

    #[test]
    fn renumber_into_matches_serial_above_parallel_threshold() {
        // Pseudo-random ids exercise the 4-pass parallel path.
        let n = PARALLEL_RENUMBER_THRESHOLD * 2;
        let src: Vec<u32> = (0..n as u64)
            .map(|i| ((i.wrapping_mul(2_654_435_761)) % 4099) as u32)
            .collect();
        let expected = renumber(&src);
        assert_eq!(renumber_into_checked(&src, 4099), expected);
        // Scratch larger than needed is fine too (workspace reuse).
        assert_eq!(renumber_into_checked(&src, 10_000), expected);
    }

    #[test]
    fn lookup_composes() {
        // Original 5 vertices currently in super-vertices [0,0,1,2,1];
        // pass merges super-vertices 0,1 → 0 and 2 → 1.
        let mut top = vec![0, 0, 1, 2, 1];
        lookup(&mut top, &[0, 0, 1]);
        assert_eq!(top, vec![0, 0, 0, 1, 0]);
    }

    #[test]
    fn lookup_identity_is_noop() {
        let mut top = vec![2, 0, 1];
        lookup(&mut top, &[0, 1, 2]);
        assert_eq!(top, vec![2, 0, 1]);
    }
}
