//! Quality objectives: modularity and the Constant Potts Model.
//!
//! The paper optimizes modularity throughout its evaluation but notes
//! (§2) that modularity maximization suffers from the *resolution
//! limit*, which "can be overcome by using an alternative quality
//! function, such as the Constant Potts Model (CPM)" (Traag, Van Dooren
//! & Nesterov 2011). CPM's meaningful resolutions sit at the *edge
//! density* scale: communities are kept together when their internal
//! density exceeds `γ`.
//!
//! Both objectives share one delta shape, which is what lets a single
//! local-moving/refinement code path serve both:
//!
//! * modularity (Eq. 2, with resolution `γ`):
//!   `ΔQ = (K_{i→c} − K_{i→d})/m − γ·K_i (K_i + Σ_c − Σ_d)/(2m²)`
//! * CPM (normalized by `m` so the tolerances keep their scale):
//!   `ΔH/m = (K_{i→c} − K_{i→d})/m − γ·s_i (s_i + N_c − N_d)/m`
//!
//! i.e. `gain = lin·(K_{i→c} − K_{i→d}) − quad·p_i (p_i + P_c − P_d)`,
//! where the *penalty weight* `p` is the weighted degree `K` for
//! modularity and the vertex size `s` (number of original vertices a
//! super-vertex represents) for CPM, and `P` is the per-community sum of
//! `p` — the quantity the `Σ'` array tracks.

/// The quality function a Leiden/Louvain run optimizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Objective {
    /// Newman modularity (Equation 1) with a resolution parameter;
    /// `resolution = 1` is the paper's default objective.
    Modularity {
        /// Resolution `γ`; larger favours smaller communities.
        resolution: f64,
    },
    /// Constant Potts Model with resolution `γ` (expected edge density
    /// between community members). Resolution-limit-free.
    Cpm {
        /// Resolution `γ`.
        resolution: f64,
    },
}

impl Default for Objective {
    fn default() -> Self {
        Objective::Modularity { resolution: 1.0 }
    }
}

impl Objective {
    /// The resolution parameter.
    pub fn resolution(&self) -> f64 {
        match *self {
            Objective::Modularity { resolution } | Objective::Cpm { resolution } => resolution,
        }
    }

    /// Whether the penalty weight is the vertex *size* (CPM) rather than
    /// the weighted degree (modularity).
    pub fn penalty_is_size(&self) -> bool {
        matches!(self, Objective::Cpm { .. })
    }

    /// Gain coefficients for a graph with total edge weight `m`.
    pub fn coeffs(&self, m: f64) -> GainCoeffs {
        match *self {
            Objective::Modularity { resolution } => GainCoeffs {
                lin: 1.0 / m,
                quad: resolution / (2.0 * m * m),
            },
            Objective::Cpm { resolution } => GainCoeffs {
                lin: 1.0 / m,
                quad: resolution / m,
            },
        }
    }
}

/// Precomputed coefficients of the shared gain formula.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GainCoeffs {
    /// Coefficient of the edge-weight difference term.
    pub lin: f64,
    /// Coefficient of the quadratic penalty term.
    pub quad: f64,
}

impl GainCoeffs {
    /// Gain of moving a vertex with penalty weight `p_i` from community
    /// `d` to `c`, given its edge weight towards each and the
    /// communities' penalty totals (`P_d` including the vertex, `P_c`
    /// not).
    #[inline(always)]
    pub fn gain(&self, k_i_to_c: f64, k_i_to_d: f64, p_i: f64, p_c: f64, p_d: f64) -> f64 {
        self.lin * (k_i_to_c - k_i_to_d) - self.quad * p_i * (p_i + p_c - p_d)
    }

    /// Per-candidate *score* `lin·K_{i→c} − quad·p_i·P_c`.
    ///
    /// The gain decomposes as
    /// `gain(c) = score(c) − score(d) − quad·p_i²`, and the subtracted
    /// terms are the same for every candidate `c`, so an argmax over
    /// scores is an argmax over gains. This is what lets the fused
    /// kernel pick the best target while still accumulating `K_{i→c}`:
    /// with `lin > 0` and nonnegative edge weights a candidate's score
    /// only grows as its edges accumulate, so a running maximum over
    /// partial scores ends at the batch argmax.
    #[inline(always)]
    pub fn score(&self, k_i_to_c: f64, p_c: f64, p_i: f64) -> f64 {
        self.lin * k_i_to_c - self.quad * p_i * p_c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_unit_modularity() {
        assert_eq!(
            Objective::default(),
            Objective::Modularity { resolution: 1.0 }
        );
        assert_eq!(Objective::default().resolution(), 1.0);
        assert!(!Objective::default().penalty_is_size());
    }

    #[test]
    fn modularity_coeffs_match_equation_2() {
        let m = 7.0;
        let coeffs = Objective::Modularity { resolution: 1.0 }.coeffs(m);
        let gain = coeffs.gain(2.0, 1.0, 3.0, 5.0, 8.0);
        let expected = (2.0 - 1.0) / m - 3.0 * (3.0 + 5.0 - 8.0) / (2.0 * m * m);
        assert!((gain - expected).abs() < 1e-15);
    }

    #[test]
    fn cpm_uses_sizes_and_normalizes_by_m() {
        let objective = Objective::Cpm { resolution: 0.5 };
        assert!(objective.penalty_is_size());
        let m = 10.0;
        let coeffs = objective.coeffs(m);
        // ΔH = (kc − kd) − γ s (s + Nc − Nd); normalized by m.
        let raw = (3.0 - 1.0) - 0.5 * 2.0 * (2.0 + 4.0 - 3.0);
        assert!((coeffs.gain(3.0, 1.0, 2.0, 4.0, 3.0) - raw / m).abs() < 1e-15);
    }

    #[test]
    fn score_decomposition_matches_gain() {
        let coeffs = Objective::Modularity { resolution: 1.3 }.coeffs(7.0);
        let (k_c, k_d, p_i, p_c, p_d) = (2.0, 1.0, 3.0, 5.0, 8.0);
        let via_scores =
            coeffs.score(k_c, p_c, p_i) - coeffs.score(k_d, p_d, p_i) - coeffs.quad * p_i * p_i;
        let direct = coeffs.gain(k_c, k_d, p_i, p_c, p_d);
        assert!((via_scores - direct).abs() < 1e-15);
    }

    #[test]
    fn higher_resolution_penalizes_merges_more() {
        let m = 5.0;
        let low = Objective::Modularity { resolution: 0.5 }.coeffs(m);
        let high = Objective::Modularity { resolution: 2.0 }.coeffs(m);
        assert!(low.gain(1.0, 0.0, 2.0, 3.0, 2.0) > high.gain(1.0, 0.0, 2.0, 3.0, 2.0));
    }
}
