//! Delta-modularity arithmetic (Equation 2 of the paper).

/// Delta-modularity of moving vertex `i` from community `d` to `c`:
///
/// `ΔQ_{i:d→c} = (K_{i→c} − K_{i→d}) / m − K_i (K_i + Σ_c − Σ_d) / (2m²)`
///
/// `K_{i→x}` excludes self-loops; `Σ_d` includes vertex `i`'s weight,
/// `Σ_c` does not. All inputs are `f64` — the paper stores 32-bit weights
/// but accumulates in 64-bit (§5.1.2).
#[inline(always)]
pub fn delta_modularity(
    k_i_to_c: f64,
    k_i_to_d: f64,
    k_i: f64,
    sigma_c: f64,
    sigma_d: f64,
    m: f64,
) -> f64 {
    (k_i_to_c - k_i_to_d) / m - k_i * (k_i + sigma_c - sigma_d) / (2.0 * m * m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staying_in_place_is_zero() {
        // Moving from d to d: K_{i→c} = K_{i→d}, Σ_c = Σ_d − K_i
        // (community without i), so both terms vanish.
        let k_i = 3.0;
        let sigma_d = 10.0;
        let dq = delta_modularity(2.0, 2.0, k_i, sigma_d - k_i, sigma_d, 7.0);
        assert_eq!(dq, 0.0);
    }

    #[test]
    fn stronger_connection_wins() {
        // Same community sizes; more weight towards c means higher gain.
        let low = delta_modularity(1.0, 0.0, 2.0, 5.0, 7.0, 10.0);
        let high = delta_modularity(3.0, 0.0, 2.0, 5.0, 7.0, 10.0);
        assert!(high > low);
    }

    #[test]
    fn heavier_target_community_penalized() {
        let light = delta_modularity(2.0, 0.0, 2.0, 3.0, 7.0, 10.0);
        let heavy = delta_modularity(2.0, 0.0, 2.0, 30.0, 7.0, 10.0);
        assert!(light > heavy);
    }
}
