//! Kernel v2: the fused, degree-aware neighbourhood-scan kernels.
//!
//! The v1 scan (`scanCommunities` + `choose_best`) makes two passes per
//! vertex: one over the edges to accumulate `K_{i→c}` in the per-thread
//! collision-free table, and one over the touched keys to load each
//! candidate's `Σ'` and evaluate the gain. Kernel v2 fuses the two:
//!
//! * **degree-aware two-tier dispatch** — vertices with degree ≤
//!   [`LeidenConfig::small_degree_threshold`] tally into a
//!   [`SmallScanMap`] that lives on the worker's stack (a handful of
//!   cache lines instead of scattered probes into the O(N) table); hubs
//!   keep the v1 path, whose dense table is the right tool for many
//!   distinct candidates;
//! * **fused scan-and-choose** — the stack tier computes the running
//!   argmax of the candidate *score* (see [`GainCoeffs::score`]) while
//!   accumulating, caching each candidate's `Σ'` in the map's aux slot
//!   on first touch. One edge pass, one sigma load per candidate, no
//!   second iteration over touched keys.
//!
//! The streaming argmax is exact because scores are non-decreasing in
//! the accumulated weight (`lin > 0`, weights ≥ 0) and ties always
//! resolve towards the smaller community id: whichever candidate ends
//! with the (max score, min id) pair also wins the running comparison at
//! its last update. Both tiers use the *same* score/gain arithmetic in
//! the same order, so with frozen shared state v1 and v2 pick identical
//! `(community, gain)` — the property `tests/kernels.rs` checks
//! move-for-move.
//!
//! Kernel **v3** restructures the scan for the memory system instead of
//! fusing it: the edge pass is *accumulate-only* (no per-edge score
//! evaluation) over the CSR row as a direct slice — the interleaved
//! `(target, weight)` row when the layout is built, the split slices
//! otherwise. The low-degree tier tallies into a [`HashScanMap`], a
//! stack-resident open-addressed map with O(1) probes whose aux slot
//! *prefetches* each candidate's `Σ'` on first touch — the scattered
//! sigma load is issued while the edge scan still has misses to hide
//! behind. The choose pass then folds once over the map's dense
//! key/weight/aux slices via [`gve_prim::simd::choose_prefetched`] with
//! autovectorizable arithmetic and **zero** scattered loads. Hubs keep
//! the v1 two-pass path: measured head-to-head, the dense table plus
//! v1's choose loop beats gathered folds once the candidate set is
//! large. Bit-identical to v1 on frozen state because the score/gain
//! arithmetic and tie-breaks are unchanged and the argmax is
//! order-independent (max score, ties to the smaller id).

use crate::config::{KernelVersion, LeidenConfig};
use crate::localmove::choose_best;
use crate::objective::GainCoeffs;
use gve_graph::{CsrGraph, VertexId};
use gve_prim::atomics::AtomicF64;
use gve_prim::{simd, CommunityMap, HashScanMap, SmallScanMap};
use std::sync::atomic::{AtomicU32, Ordering};

/// Fused scan-and-choose over the stack-resident map: accumulates
/// `K_{i→c}` for every neighbouring community of `i` (bounded to `i`'s
/// community bound when `bounds` is given, self-loops skipped) while
/// tracking the best move target, and returns `(community, gain)` when a
/// strictly positive gain exists.
///
/// Callers must guarantee `graph.degree(i) ≤` [`gve_prim::SMALL_SCAN_CAP`]
/// (debug-asserted by the map itself).
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn fused_best_move(
    small: &mut SmallScanMap,
    graph: &CsrGraph,
    membership: &[AtomicU32],
    bounds: Option<&[VertexId]>,
    i: VertexId,
    current: VertexId,
    p_i: f64,
    sigma: &[AtomicF64],
    coeffs: GainCoeffs,
) -> Option<(VertexId, f64)> {
    small.clear();
    let mut best_key = VertexId::MAX;
    let mut best_slot = usize::MAX;
    let mut best_score = f64::NEG_INFINITY;
    // The per-edge body, shared by the bounded and unbounded loops
    // (specialized so the unbounded path pays no per-edge Option check).
    let mut tally = |small: &mut SmallScanMap, j: VertexId, w: f32| {
        // Relaxed: the asynchronous local-moving design (paper §4.1)
        // tolerates reading a neighbor's stale community; convergence is
        // driven by the outer iteration, not per-load freshness.
        let c = membership[j as usize].load(Ordering::Relaxed);
        let (slot, first) = small.add(c, w as f64);
        if c == current {
            return;
        }
        let sigma_c = if first {
            let s = sigma[c as usize].load();
            small.set_aux(slot, s);
            s
        } else {
            small.aux_at(slot)
        };
        let score = coeffs.score(small.weight_at(slot), sigma_c, p_i);
        // Re-hitting the reigning best slot can only raise its score.
        if slot == best_slot {
            best_score = score;
        } else if score > best_score || (score == best_score && c < best_key) {
            best_score = score;
            best_key = c;
            best_slot = slot;
        }
    };
    match bounds {
        None => {
            for (j, w) in graph.scan_edges(i) {
                if j != i {
                    tally(small, j, w);
                }
            }
        }
        Some(bounds) => {
            let bound = bounds[i as usize];
            for (j, w) in graph.scan_edges(i) {
                if j != i && bounds[j as usize] == bound {
                    tally(small, j, w);
                }
            }
        }
    }
    if best_slot == usize::MAX {
        return None;
    }
    let k_to_current = small.weight(current);
    let sigma_current = sigma[current as usize].load();
    let gain = coeffs.gain(
        small.weight_at(best_slot),
        k_to_current,
        p_i,
        small.aux_at(best_slot),
        sigma_current,
    );
    (gain > 0.0).then_some((best_key, gain))
}

/// The two-pass reference kernel (v1): scan into the per-thread table,
/// then pick the best community with [`choose_best`]. Also the hub path
/// of kernel v2.
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn two_pass_best_move(
    ht: &mut CommunityMap,
    graph: &CsrGraph,
    membership: &[AtomicU32],
    bounds: Option<&[VertexId]>,
    i: VertexId,
    current: VertexId,
    p_i: f64,
    sigma: &[AtomicF64],
    coeffs: GainCoeffs,
) -> Option<(VertexId, f64)> {
    ht.clear();
    // Relaxed membership loads: stale neighbor communities are fine
    // under the asynchronous local-moving design (see `fused_best_move`).
    match bounds {
        Some(b) => {
            let bound = b[i as usize];
            for (j, w) in graph.scan_edges(i) {
                if j == i || b[j as usize] != bound {
                    continue;
                }
                // Relaxed: as above.
                ht.add(membership[j as usize].load(Ordering::Relaxed), w as f64);
            }
        }
        None => {
            for (j, w) in graph.scan_edges(i) {
                if j == i {
                    continue;
                }
                // Relaxed: as above.
                ht.add(membership[j as usize].load(Ordering::Relaxed), w as f64);
            }
        }
    }
    choose_best(ht, current, p_i, sigma, coeffs)
}

/// Accumulate-only edge scan for kernel v3: feeds each retained
/// `(community, weight)` contribution of `i`'s row to `acc`. The layout
/// branch happens once per vertex (not per edge, as [`CsrGraph::scan_edges`]'s
/// enum dispatch does), and the body is a bare load → accumulate with no
/// scoring, so the compiler keeps the membership loads independent and
/// the loop tight.
#[inline]
fn v3_scan<F: FnMut(u32, f64)>(
    graph: &CsrGraph,
    membership: &[AtomicU32],
    bounds: Option<&[VertexId]>,
    i: VertexId,
    mut acc: F,
) {
    // Relaxed membership loads throughout: the asynchronous design
    // tolerates stale neighbor communities (see `fused_best_move`).
    match (graph.interleaved_row(i), bounds) {
        (Some(row), None) => {
            for &(j, w) in row {
                if j != i {
                    // Relaxed: asynchronous design, see above.
                    acc(membership[j as usize].load(Ordering::Relaxed), w as f64);
                }
            }
        }
        (Some(row), Some(b)) => {
            let bound = b[i as usize];
            for &(j, w) in row {
                if j != i && b[j as usize] == bound {
                    // Relaxed: asynchronous design, see above.
                    acc(membership[j as usize].load(Ordering::Relaxed), w as f64);
                }
            }
        }
        (None, None) => {
            for (&j, &w) in graph.neighbors(i).iter().zip(graph.edge_weights(i)) {
                if j != i {
                    // Relaxed: asynchronous design, see above.
                    acc(membership[j as usize].load(Ordering::Relaxed), w as f64);
                }
            }
        }
        (None, Some(b)) => {
            let bound = b[i as usize];
            for (&j, &w) in graph.neighbors(i).iter().zip(graph.edge_weights(i)) {
                if j != i && b[j as usize] == bound {
                    // Relaxed: asynchronous design, see above.
                    acc(membership[j as usize].load(Ordering::Relaxed), w as f64);
                }
            }
        }
    }
}

/// Kernel v3: accumulate-only scan, then one lane-chunked choose pass.
///
/// `use_small` selects the stack mini-hash tier (callers pass the degree
/// dispatch result so the graph's degree lookup happens once); when set,
/// `i`'s distinct neighbour communities must fit
/// [`gve_prim::HASH_SCAN_CAP`] — guaranteed by any degree-based dispatch
/// threshold ≤ the cap, and debug-asserted by the map itself. The
/// final `(community, gain)` is bit-identical to v1 on frozen state:
/// the score is `lin·K_{i→c} − (quad·p_i)·Σ'_c` with v1's left-to-right
/// association, ties resolve to the smaller id, and the gain is
/// evaluated once at the end with the winner's saved `Σ'`.
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn v3_best_move(
    ht: &mut CommunityMap,
    hash: &mut HashScanMap,
    graph: &CsrGraph,
    membership: &[AtomicU32],
    bounds: Option<&[VertexId]>,
    i: VertexId,
    current: VertexId,
    p_i: f64,
    sigma: &[AtomicF64],
    coeffs: GainCoeffs,
    use_small: bool,
) -> Option<(VertexId, f64)> {
    let lin = coeffs.lin;
    let qp = coeffs.quad * p_i;
    let (best, k_to_current) = if use_small {
        hash.clear();
        v3_scan(graph, membership, bounds, i, |c, w| {
            // Σ' prefetch: the aux callback runs on a candidate's first
            // touch, issuing its scattered load while the edge scan
            // still has misses to hide behind, so the choose pass below
            // touches only the stack.
            hash.add_with(c, w, |key| sigma[key as usize].load());
        });
        let best =
            simd::choose_prefetched(hash.keys(), hash.weights(), hash.aux(), current, lin, qp)?;
        (best, hash.weight(current))
    } else {
        // Hub tier: the dense table plus the v1 choose loop. Measured
        // head-to-head against a lane-gathered fold over the table's
        // key list, the v1 loop wins on hubs — the fold's weight
        // re-gather buffer costs more than its batched Σ' loads save —
        // so v3 keeps the reference path for the few high-degree rows
        // and spends its structure on the tier that dominates.
        return two_pass_best_move(
            ht, graph, membership, bounds, i, current, p_i, sigma, coeffs,
        );
    };
    let sigma_current = sigma[current as usize].load();
    let gain = coeffs.gain(best.weight, k_to_current, p_i, best.sigma, sigma_current);
    (gain > 0.0).then_some((best.key, gain))
}

/// Degree-aware dispatch: the fused stack tier for low-degree vertices
/// under kernel v2, the lane-chunked paths under v3, the two-pass table
/// path otherwise. This is the single entry point the local-moving and
/// greedy-refinement loops use.
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn best_move(
    ht: &mut CommunityMap,
    small: &mut SmallScanMap,
    hash: &mut HashScanMap,
    graph: &CsrGraph,
    membership: &[AtomicU32],
    bounds: Option<&[VertexId]>,
    i: VertexId,
    current: VertexId,
    p_i: f64,
    sigma: &[AtomicF64],
    coeffs: GainCoeffs,
    config: &LeidenConfig,
) -> Option<(VertexId, f64)> {
    match config.kernel {
        KernelVersion::V1 => two_pass_best_move(
            ht, graph, membership, bounds, i, current, p_i, sigma, coeffs,
        ),
        KernelVersion::V2 => {
            if graph.degree(i) <= config.small_degree_threshold {
                fused_best_move(
                    small, graph, membership, bounds, i, current, p_i, sigma, coeffs,
                )
            } else {
                two_pass_best_move(
                    ht, graph, membership, bounds, i, current, p_i, sigma, coeffs,
                )
            }
        }
        KernelVersion::V3 => {
            let use_small = graph.degree(i) <= config.small_degree_threshold;
            v3_best_move(
                ht, hash, graph, membership, bounds, i, current, p_i, sigma, coeffs, use_small,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::Objective;
    use gve_graph::GraphBuilder;
    use gve_prim::atomics::atomic_f64_from_slice;

    fn setup(
        graph: &CsrGraph,
        membership: &[u32],
    ) -> (Vec<AtomicU32>, Vec<f64>, Vec<AtomicF64>, GainCoeffs) {
        let n = graph.num_vertices();
        let atomic: Vec<AtomicU32> = membership.iter().map(|&c| AtomicU32::new(c)).collect();
        let penalty: Vec<f64> = (0..n as u32).map(|u| graph.weighted_degree(u)).collect();
        let mut sigma = vec![0.0f64; n];
        for (v, &c) in membership.iter().enumerate() {
            sigma[c as usize] += penalty[v];
        }
        let m = graph.total_arc_weight() / 2.0;
        let coeffs = Objective::default().coeffs(m.max(f64::MIN_POSITIVE));
        (atomic, penalty, atomic_f64_from_slice(&sigma), coeffs)
    }

    /// Both kernels must agree bit-for-bit on a frozen state.
    #[test]
    fn fused_matches_two_pass_on_frozen_state() {
        let graph = GraphBuilder::from_edges(
            6,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 0, 1.0),
                (3, 4, 1.0),
                (4, 5, 1.0),
                (5, 3, 1.0),
                (2, 3, 1.0),
            ],
        );
        let labels = [0u32, 0, 0, 3, 3, 3];
        let (membership, penalty, sigma, coeffs) = setup(&graph, &labels);
        let mut ht = CommunityMap::new(6);
        let mut small = SmallScanMap::new();
        for i in 0..6u32 {
            let current = labels[i as usize];
            let v1 = two_pass_best_move(
                &mut ht,
                &graph,
                &membership,
                None,
                i,
                current,
                penalty[i as usize],
                &sigma,
                coeffs,
            );
            let v2 = fused_best_move(
                &mut small,
                &graph,
                &membership,
                None,
                i,
                current,
                penalty[i as usize],
                &sigma,
                coeffs,
            );
            assert_eq!(v1, v2, "vertex {i}");
        }
    }

    /// With bounds, both kernels see the same restricted candidate set.
    #[test]
    fn bounded_variants_agree() {
        let graph = GraphBuilder::from_edges(
            6,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 0, 1.0),
                (3, 4, 1.0),
                (4, 5, 1.0),
                (5, 3, 1.0),
                (2, 3, 5.0),
            ],
        );
        let bounds = [0u32, 0, 0, 1, 1, 1];
        let singleton: Vec<u32> = (0..6).collect();
        let (membership, penalty, sigma, coeffs) = setup(&graph, &singleton);
        let mut ht = CommunityMap::new(6);
        let mut small = SmallScanMap::new();
        for i in 0..6u32 {
            let v1 = two_pass_best_move(
                &mut ht,
                &graph,
                &membership,
                Some(&bounds),
                i,
                i,
                penalty[i as usize],
                &sigma,
                coeffs,
            );
            let v2 = fused_best_move(
                &mut small,
                &graph,
                &membership,
                Some(&bounds),
                i,
                i,
                penalty[i as usize],
                &sigma,
                coeffs,
            );
            assert_eq!(v1, v2, "vertex {i}");
            if let Some((target, _)) = v2 {
                assert_eq!(
                    bounds[target as usize], bounds[i as usize],
                    "vertex {i} escaped its bound"
                );
            }
        }
    }

    /// The dispatch threshold routes hubs to the table path.
    #[test]
    fn dispatch_respects_threshold() {
        // Star: hub 0 with 5 leaves.
        let edges: Vec<(u32, u32, f32)> = (1..6).map(|v| (0, v, 1.0)).collect();
        let graph = GraphBuilder::from_edges(6, &edges);
        let singleton: Vec<u32> = (0..6).collect();
        let (membership, penalty, sigma, coeffs) = setup(&graph, &singleton);
        let mut ht = CommunityMap::new(6);
        let mut small = SmallScanMap::new();
        let mut hash = HashScanMap::new();
        let config = LeidenConfig::default().small_degree_threshold(2);
        // Hub (degree 5 > 2) and leaves (degree 1 ≤ 2) both produce the
        // same answer through the dispatcher as through either kernel.
        for i in 0..6u32 {
            let got = best_move(
                &mut ht,
                &mut small,
                &mut hash,
                &graph,
                &membership,
                None,
                i,
                i,
                penalty[i as usize],
                &sigma,
                coeffs,
                &config,
            );
            let reference = two_pass_best_move(
                &mut ht,
                &graph,
                &membership,
                None,
                i,
                i,
                penalty[i as usize],
                &sigma,
                coeffs,
            );
            assert_eq!(got, reference, "vertex {i}");
        }
    }

    /// Regression: with the threshold at the cap (a legal config), a
    /// degree-64 vertex over singleton memberships fills the v3 stack
    /// hash completely, and the kernel then looks up its own — absent —
    /// community. The map's half-loaded slot table must terminate that
    /// probe (it used to spin forever when slots == entries).
    #[test]
    fn v3_full_stack_hash_at_threshold_cap() {
        let cap = gve_prim::HASH_SCAN_CAP as u32;
        // Star: hub 0 with exactly `cap` leaves, every membership a
        // singleton — the normal first local-moving iteration.
        let edges: Vec<(u32, u32, f32)> = (1..=cap).map(|v| (0, v, 1.0)).collect();
        let graph = GraphBuilder::from_edges(cap as usize + 1, &edges);
        let singleton: Vec<u32> = (0..=cap).collect();
        let (membership, penalty, sigma, coeffs) = setup(&graph, &singleton);
        let mut ht = CommunityMap::new(cap as usize + 1);
        let mut small = SmallScanMap::new();
        let mut hash = HashScanMap::new();
        let config = LeidenConfig::default()
            .kernel(KernelVersion::V3)
            .small_degree_threshold(gve_prim::HASH_SCAN_CAP);
        config.validate().expect("threshold at the cap is legal");
        assert!(graph.degree(0) <= config.small_degree_threshold);
        let got = best_move(
            &mut ht,
            &mut small,
            &mut hash,
            &graph,
            &membership,
            None,
            0,
            0,
            penalty[0],
            &sigma,
            coeffs,
            &config,
        );
        let reference = two_pass_best_move(
            &mut ht,
            &graph,
            &membership,
            None,
            0,
            0,
            penalty[0],
            &sigma,
            coeffs,
        );
        assert_eq!(got, reference, "full-occupancy hub");
    }

    /// Isolated vertices and vertices whose only neighbour shares their
    /// community yield no move in both kernels.
    #[test]
    fn no_candidates_is_none() {
        let graph = GraphBuilder::from_edges(3, &[(0, 1, 1.0)]);
        let labels = [0u32, 0, 2];
        let (membership, penalty, sigma, coeffs) = setup(&graph, &labels);
        let mut ht = CommunityMap::new(3);
        let mut small = SmallScanMap::new();
        let mut hash = HashScanMap::new();
        for i in 0..3u32 {
            let v1 = two_pass_best_move(
                &mut ht,
                &graph,
                &membership,
                None,
                i,
                labels[i as usize],
                penalty[i as usize],
                &sigma,
                coeffs,
            );
            let v2 = fused_best_move(
                &mut small,
                &graph,
                &membership,
                None,
                i,
                labels[i as usize],
                penalty[i as usize],
                &sigma,
                coeffs,
            );
            assert_eq!(v1, None, "vertex {i}");
            assert_eq!(v2, None, "vertex {i}");
            for use_small in [false, true] {
                let v3 = v3_best_move(
                    &mut ht,
                    &mut hash,
                    &graph,
                    &membership,
                    None,
                    i,
                    labels[i as usize],
                    penalty[i as usize],
                    &sigma,
                    coeffs,
                    use_small,
                );
                assert_eq!(v3, None, "vertex {i} use_small={use_small}");
            }
        }
    }

    /// v3 must agree bit-for-bit with v1 on frozen state, through both
    /// tiers, both layouts, and with refinement bounds.
    #[test]
    fn v3_matches_two_pass_on_frozen_state() {
        let edges: Vec<(u32, u32, f32)> = (1..12u32)
            .map(|v| (0, v, 0.5 + v as f32))
            .chain([(1, 2, 1.0), (3, 4, 2.0), (5, 6, 1.5), (7, 8, 0.25)])
            .collect();
        let split = GraphBuilder::from_edges(12, &edges);
        let interleaved = split.clone();
        interleaved.build_interleaved();
        let labels = [0u32, 0, 0, 3, 3, 3, 6, 6, 6, 9, 9, 9];
        let bounds = [0u32, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1];
        for graph in [&split, &interleaved] {
            let (membership, penalty, sigma, coeffs) = setup(graph, &labels);
            let mut ht = CommunityMap::new(12);
            let mut hash = HashScanMap::new();
            for bound in [None, Some(&bounds[..])] {
                for i in 0..12u32 {
                    let current = labels[i as usize];
                    let v1 = two_pass_best_move(
                        &mut ht,
                        graph,
                        &membership,
                        bound,
                        i,
                        current,
                        penalty[i as usize],
                        &sigma,
                        coeffs,
                    );
                    for use_small in [false, true] {
                        if use_small && graph.degree(i) > gve_prim::HASH_SCAN_CAP {
                            continue;
                        }
                        let v3 = v3_best_move(
                            &mut ht,
                            &mut hash,
                            graph,
                            &membership,
                            bound,
                            i,
                            current,
                            penalty[i as usize],
                            &sigma,
                            coeffs,
                            use_small,
                        );
                        assert_eq!(
                            v1,
                            v3,
                            "vertex {i} use_small={use_small} bounded={}",
                            bound.is_some()
                        );
                    }
                }
            }
        }
    }

    /// The v3 dispatcher path through `best_move` equals the v1 kernel
    /// on frozen state for every vertex of a star (hub + leaves).
    #[test]
    fn v3_dispatch_matches_reference() {
        let edges: Vec<(u32, u32, f32)> = (1..6).map(|v| (0, v, v as f32)).collect();
        let graph = GraphBuilder::from_edges(6, &edges);
        graph.build_interleaved();
        let singleton: Vec<u32> = (0..6).collect();
        let (membership, penalty, sigma, coeffs) = setup(&graph, &singleton);
        let mut ht = CommunityMap::new(6);
        let mut small = SmallScanMap::new();
        let mut hash = HashScanMap::new();
        let config = LeidenConfig::default()
            .kernel(KernelVersion::V3)
            .small_degree_threshold(2);
        for i in 0..6u32 {
            let got = best_move(
                &mut ht,
                &mut small,
                &mut hash,
                &graph,
                &membership,
                None,
                i,
                i,
                penalty[i as usize],
                &sigma,
                coeffs,
                &config,
            );
            let reference = two_pass_best_move(
                &mut ht,
                &graph,
                &membership,
                None,
                i,
                i,
                penalty[i as usize],
                &sigma,
                coeffs,
            );
            assert_eq!(got, reference, "vertex {i}");
        }
    }
}
