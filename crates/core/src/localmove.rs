//! The local-moving phase (Algorithm 2 of the paper).
//!
//! Iteratively moves vertices to the neighbouring community with the
//! highest delta-modularity, asynchronously: threads read and write the
//! shared membership (`C'`) and community-weight (`Σ'`) arrays without
//! barriers inside an iteration, tolerating stale values — the paper's
//! asynchronous design, which converges faster at the cost of run-to-run
//! variability (§4.1).
//!
//! Vertex pruning is flag-based: a vertex is claimed ("marked processed")
//! via an atomic test-and-clear on the `unprocessed` bitset, and a moved
//! vertex re-marks its neighbours. This replaces NetworKit's global
//! queues and is one of the paper's named optimizations.

use crate::config::{ChunkScheduling, LeidenConfig};
use crate::objective::GainCoeffs;
use gve_graph::{CsrGraph, VertexId};
use gve_prim::atomics::AtomicF64;
use gve_prim::sched::{scheduled_workers, SchedStats, Schedule};
use gve_prim::{AtomicBitset, CommunityMap, HashScanMap, PerThread, SmallScanMap};
use std::sync::atomic::{AtomicU32, Ordering};

/// Maps the configured chunking policy onto a concrete [`Schedule`] for
/// `graph`'s vertex range. The arc-aware policies feed on the CSR
/// offset array (a degree prefix sum) the graph already carries.
#[inline]
pub(crate) fn schedule_for<'g>(config: &LeidenConfig, graph: &'g CsrGraph) -> Schedule<'g> {
    match config.chunking {
        ChunkScheduling::Static => Schedule::Static {
            chunk: config.chunk_size,
        },
        ChunkScheduling::Guided => Schedule::Guided {
            offsets: graph.offsets(),
        },
        ChunkScheduling::Stealing => Schedule::Stealing {
            offsets: graph.offsets(),
            chunk: config.chunk_size,
        },
    }
}

/// Scans the communities adjacent to `i` into the per-thread hashtable
/// (`scanCommunities` of Algorithm 2). `include_self` controls whether
/// the self-loop arc contributes (false in local-moving/refinement, true
/// in aggregation).
#[inline]
pub fn scan_communities(
    ht: &mut CommunityMap,
    graph: &CsrGraph,
    membership: &[AtomicU32],
    i: VertexId,
    include_self: bool,
) {
    for (j, w) in graph.scan_edges(i) {
        if !include_self && j == i {
            continue;
        }
        // Relaxed: asynchronous design — a stale neighbor community only
        // delays a move to a later iteration, it cannot corrupt state.
        ht.add(membership[j as usize].load(Ordering::Relaxed), w as f64);
    }
}

/// Picks the best community for `i` among the scanned candidates:
/// maximum objective gain (delta-modularity under the default
/// objective), ties to the smaller id. Returns `(community, gain)` when
/// a strictly positive gain exists.
///
/// `p_i` is the vertex's penalty weight — its weighted degree `K_i` for
/// modularity, its size for CPM — and `sigma` tracks the per-community
/// penalty totals (`Σ'` of the paper).
/// The argmax runs over candidate *scores* (see [`GainCoeffs::score`]):
/// scores differ from gains by a candidate-independent constant, so the
/// winner is the same, and the fused kernel
/// ([`crate::kernel::fused_best_move`]) uses the identical score
/// arithmetic — which is what makes the two kernels agree bit-for-bit on
/// frozen state.
#[inline]
pub fn choose_best(
    ht: &CommunityMap,
    current: VertexId,
    p_i: f64,
    sigma: &[AtomicF64],
    coeffs: GainCoeffs,
) -> Option<(VertexId, f64)> {
    // (candidate, score, K_{i→d}, Σ'_d)
    let mut best: Option<(VertexId, f64, f64, f64)> = None;
    for (d, k_to_d) in ht.iter() {
        if d == current {
            continue;
        }
        let sigma_d = sigma[d as usize].load();
        let score = coeffs.score(k_to_d, sigma_d, p_i);
        best = match best {
            Some((bd, bs, ..)) if score < bs || (score == bs && d >= bd) => best,
            _ => Some((d, score, k_to_d, sigma_d)),
        };
    }
    let (d, _, k_to_d, sigma_d) = best?;
    let k_to_current = ht.weight(current);
    let sigma_current = sigma[current as usize].load();
    let gain = coeffs.gain(k_to_d, k_to_current, p_i, sigma_d, sigma_current);
    (gain > 0.0).then_some((d, gain))
}

/// Outcome of the local-moving phase: the per-iteration gain trace plus
/// the pruning-flag tallies behind the paper's "vertex pruning" rows.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MoveOutcome {
    /// Total objective gain of each iteration performed (`l_i` = the
    /// vector's length) — the raw convergence curve.
    pub gains: Vec<f64>,
    /// Vertices claimed and processed across all iterations.
    pub pruning_processed: u64,
    /// Vertices skipped because their unprocessed flag was already
    /// clear — work the pruning optimization avoided.
    pub pruning_skipped: u64,
    /// Scheduling counters (chunks claimed / chunks stolen) summed over
    /// all iterations of the phase.
    pub sched: SchedStats,
}

/// Runs the local-moving phase; see [`MoveOutcome`] for what comes back
/// (`outcome.gains.len()` is the paper's `l_i`).
///
/// `penalty` holds each vertex's penalty weight (see [`choose_best`]);
/// the caller prepares the `unprocessed` bitset — all bits set for a
/// full run, or only a frontier for incremental (dynamic-graph) runs.
#[allow(clippy::too_many_arguments)]
pub fn local_move(
    graph: &CsrGraph,
    membership: &[AtomicU32],
    penalty: &[f64],
    sigma: &[AtomicF64],
    coeffs: GainCoeffs,
    tolerance: f64,
    config: &LeidenConfig,
    tables: &PerThread<CommunityMap>,
    unprocessed: &AtomicBitset,
) -> MoveOutcome {
    let n = graph.num_vertices();
    let mut outcome = MoveOutcome::default();
    while outcome.gains.len() < config.max_iterations {
        let (results, sched) = scheduled_workers(n, schedule_for(config, graph), |claims| {
            tables.with(|ht| {
                // Stack tiers of the kernel-v2/v3 two-tier scans; unused
                // (and costless) when kernel v1 is configured.
                let mut small = SmallScanMap::new();
                let mut hash = HashScanMap::new();
                let mut local_dq = 0.0;
                let mut local_processed = 0u64;
                let mut local_skipped = 0u64;
                for range in claims {
                    for i in range {
                        // Vertex pruning: claim i, skipping already
                        // processed vertices.
                        if config.pruning && !unprocessed.take(i) {
                            local_skipped += 1;
                            continue;
                        }
                        local_processed += 1;
                        let i = i as VertexId;
                        // Relaxed: only this worker moves `i` (the bitset
                        // claim makes it exclusive this iteration), and
                        // racing readers tolerate staleness by design.
                        let current = membership[i as usize].load(Ordering::Relaxed);
                        let p_i = penalty[i as usize];
                        if let Some((target, gain)) = crate::kernel::best_move(
                            ht, &mut small, &mut hash, graph, membership, None, i, current, p_i,
                            sigma, coeffs, config,
                        ) {
                            // Asynchronous commit: weight transfer is
                            // atomic per community, membership is a
                            // Relaxed store — concurrent scanners accept
                            // stale ids, and the end-of-phase rayon join
                            // provides the happens-before for readers
                            // that need the final values.
                            sigma[current as usize].fetch_sub(p_i);
                            sigma[target as usize].fetch_add(p_i);
                            membership[i as usize].store(target, Ordering::Relaxed);
                            local_dq += gain;
                            if config.pruning {
                                for &j in graph.neighbors(i) {
                                    unprocessed.set(j as usize);
                                }
                            }
                        }
                    }
                }
                (local_dq, local_processed, local_skipped)
            })
        });
        let (delta_q, processed, skipped) =
            results.into_iter().fold((0.0, 0u64, 0u64), |acc, w| {
                (acc.0 + w.0, acc.1 + w.1, acc.2 + w.2)
            });
        outcome.gains.push(delta_q);
        outcome.pruning_processed += processed;
        outcome.pruning_skipped += skipped;
        outcome.sched.merge(sched);
        if delta_q <= tolerance {
            break;
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::Objective;
    use gve_graph::GraphBuilder;
    use gve_prim::atomics::atomic_f64_from_slice;

    fn setup(graph: &CsrGraph) -> (Vec<AtomicU32>, Vec<f64>, Vec<AtomicF64>, GainCoeffs) {
        let n = graph.num_vertices();
        let membership: Vec<AtomicU32> = (0..n as u32).map(AtomicU32::new).collect();
        let weights: Vec<f64> = (0..n as u32).map(|u| graph.weighted_degree(u)).collect();
        let sigma = atomic_f64_from_slice(&weights);
        let m = graph.total_arc_weight() / 2.0;
        (
            membership,
            weights,
            sigma,
            Objective::default().coeffs(m.max(f64::MIN_POSITIVE)),
        )
    }

    fn snapshot(membership: &[AtomicU32]) -> Vec<u32> {
        membership
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    #[test]
    fn merges_two_triangles_into_their_communities() {
        let graph = GraphBuilder::from_edges(
            6,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 0, 1.0),
                (3, 4, 1.0),
                (4, 5, 1.0),
                (5, 3, 1.0),
                (2, 3, 1.0),
            ],
        );
        let (membership, weights, sigma, coeffs) = setup(&graph);
        let config = LeidenConfig::default();
        let tables = PerThread::new(move || CommunityMap::new(6));
        let unprocessed = AtomicBitset::new_all_set(6);
        let outcome = local_move(
            &graph,
            &membership,
            &weights,
            &sigma,
            coeffs,
            0.0,
            &config,
            &tables,
            &unprocessed,
        );
        assert!(!outcome.gains.is_empty());
        // Iteration gains are the summed move deltas: first iteration
        // must be strictly positive here.
        assert!(outcome.gains[0] > 0.0);
        // Every vertex was examined at least once, and pruning tallies
        // cover every claim attempt.
        assert!(outcome.pruning_processed >= 6);
        let mem = snapshot(&membership);
        // Each triangle must be in one community; bridge endpoints may
        // differ but triangles never merge across the single bridge.
        assert_eq!(mem[0], mem[1]);
        assert_eq!(mem[1], mem[2]);
        assert_eq!(mem[3], mem[4]);
        assert_eq!(mem[4], mem[5]);
        assert_ne!(mem[0], mem[3]);
    }

    #[test]
    fn sigma_is_conserved() {
        let graph = gve_generate::rmat::Rmat::social(9, 4.0).seed(3).generate();
        let (membership, weights, sigma, coeffs) = setup(&graph);
        let total_before: f64 = sigma.iter().map(|s| s.load()).sum();
        let config = LeidenConfig::default();
        let tables = PerThread::new({
            let n = graph.num_vertices();
            move || CommunityMap::new(n)
        });
        let unprocessed = AtomicBitset::new_all_set(graph.num_vertices());
        local_move(
            &graph,
            &membership,
            &weights,
            &sigma,
            coeffs,
            1e-2,
            &config,
            &tables,
            &unprocessed,
        );
        let total_after: f64 = sigma.iter().map(|s| s.load()).sum();
        assert!(
            (total_before - total_after).abs() < 1e-6 * total_before.max(1.0),
            "Σ drifted: {total_before} -> {total_after}"
        );
        // Σ must also equal the scatter of K over the final membership.
        let mem = snapshot(&membership);
        let mut expect = vec![0.0; graph.num_vertices()];
        for (v, &c) in mem.iter().enumerate() {
            expect[c as usize] += weights[v];
        }
        for (c, s) in sigma.iter().enumerate() {
            assert!(
                (s.load() - expect[c]).abs() < 1e-6,
                "community {c}: {} vs {}",
                s.load(),
                expect[c]
            );
        }
    }

    #[test]
    fn moves_increase_modularity() {
        let graph = gve_generate::sbm::PlantedPartition::new(400, 8, 12.0, 1.0)
            .seed(7)
            .generate()
            .graph;
        let (membership, weights, sigma, coeffs) = setup(&graph);
        let before = gve_quality::modularity(&graph, &snapshot(&membership));
        let config = LeidenConfig::default();
        let tables = PerThread::new({
            let n = graph.num_vertices();
            move || CommunityMap::new(n)
        });
        let unprocessed = AtomicBitset::new_all_set(graph.num_vertices());
        local_move(
            &graph,
            &membership,
            &weights,
            &sigma,
            coeffs,
            1e-6,
            &config,
            &tables,
            &unprocessed,
        );
        let after = gve_quality::modularity(&graph, &snapshot(&membership));
        assert!(after > before + 0.1, "Q {before} -> {after}");
    }

    #[test]
    fn iteration_cap_respected() {
        let graph = gve_generate::rmat::Rmat::web(8, 4.0).seed(1).generate();
        let (membership, weights, sigma, coeffs) = setup(&graph);
        let config = LeidenConfig {
            max_iterations: 1,
            ..LeidenConfig::default()
        };
        let tables = PerThread::new({
            let n = graph.num_vertices();
            move || CommunityMap::new(n)
        });
        let unprocessed = AtomicBitset::new_all_set(graph.num_vertices());
        // Zero tolerance would keep iterating; the cap must stop it.
        let outcome = local_move(
            &graph,
            &membership,
            &weights,
            &sigma,
            coeffs,
            -1.0,
            &config,
            &tables,
            &unprocessed,
        );
        assert_eq!(outcome.gains.len(), 1);
    }

    #[test]
    fn empty_graph_converges_immediately() {
        let graph = CsrGraph::empty(4);
        let (membership, weights, sigma, coeffs) = setup(&graph);
        let config = LeidenConfig::default();
        let tables = PerThread::new(|| CommunityMap::new(4));
        let unprocessed = AtomicBitset::new_all_set(4);
        let outcome = local_move(
            &graph,
            &membership,
            &weights,
            &sigma,
            coeffs,
            1e-2,
            &config,
            &tables,
            &unprocessed,
        );
        assert_eq!(outcome.gains, vec![0.0]);
        assert_eq!(outcome.pruning_processed, 4);
        assert_eq!(outcome.pruning_skipped, 0);
        assert_eq!(snapshot(&membership), vec![0, 1, 2, 3]);
    }

    #[test]
    fn pruning_off_still_converges() {
        let graph =
            GraphBuilder::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)]);
        let (membership, weights, sigma, coeffs) = setup(&graph);
        let config = LeidenConfig {
            pruning: false,
            ..LeidenConfig::default()
        };
        let tables = PerThread::new(|| CommunityMap::new(4));
        let unprocessed = AtomicBitset::new_all_set(4);
        let outcome = local_move(
            &graph,
            &membership,
            &weights,
            &sigma,
            coeffs,
            1e-2,
            &config,
            &tables,
            &unprocessed,
        );
        assert!(!outcome.gains.is_empty());
        // Pruning disabled: every vertex counts as processed each
        // iteration, nothing is ever skipped.
        assert_eq!(outcome.pruning_skipped, 0);
        assert_eq!(outcome.pruning_processed, 4 * outcome.gains.len() as u64);
    }
}
