//! Pass-resident workspace arena.
//!
//! The paper's headline engineering discipline is *preallocation*:
//! every per-pass buffer is sized once at the input graph's `(N, E)`
//! and reused across all ≤ 10 passes — pass `k` views a shrinking
//! prefix of the same memory, and atomic buffers are reinitialized in
//! place with parallel fills instead of serial `collect`s. The
//! [`PassWorkspace`] owns those buffers; [`crate::Leiden::run_in`]
//! threads one through the pass loop, and a resident service keeps a
//! pool of them so steady-state detect requests perform **zero**
//! allocation in the Leiden hot path.
//!
//! Buffer lifetimes (see DESIGN.md §10 for the full memory plan):
//!
//! * `membership`/`sigma` — the async phases' atomic state; after
//!   refinement their prefix is re-staged with the dense community ids
//!   for aggregation (replacing the old serial `dense_atomic` rebuild);
//! * `penalty`, `bounds`, `refined`, `dense` — per-pass plain views;
//! * `first_seen`/`rank` — scratch for the parallel first-seen
//!   renumber ([`crate::dendrogram::renumber_into`]); `first_seen`
//!   doubles as the scatter target of the move-based `label_of` map;
//! * `labels`/`init_labels` — super-vertex labels carried into the
//!   next pass;
//! * `sizes`/`sizes_next` — the CPM vertex-size double buffer (swapped
//!   per pass instead of cloned);
//! * `unprocessed` — one capacity-`N` pruning bitset, prefix-reset per
//!   pass with [`AtomicBitset::set_first`];
//! * `plain_membership`/`plain_sigma`/`sync_decisions` — the
//!   color-synchronous path's plain state;
//! * `aggregate` — the fused grouped + holey CSR scratch, including
//!   the double-buffered super-vertex CSR recycle stack.

use gve_graph::{AggregateScratch, EdgeWeight, VertexId};
use gve_prim::atomics::AtomicF64;
use gve_prim::{AtomicBitset, CommunityMap, PerThread};
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::Arc;

/// Per-pass decision record of the color-synchronous path.
pub(crate) type Decision = Option<(VertexId, f64)>;

/// Reusable arena for every per-pass buffer of the Leiden pass loop.
///
/// Grow-only: [`PassWorkspace::ensure`] sizes it for a graph, and later
/// runs on graphs no larger perform no allocation. A workspace is plain
/// owned memory — `Send`, independent of any graph, and safely reusable
/// across configurations (every run reinitializes the prefixes it
/// reads). Reuse is bit-identical to a fresh workspace by construction:
/// [`crate::Leiden::run`] itself just calls
/// [`crate::Leiden::run_in`] with a temporary one.
#[derive(Debug)]
pub struct PassWorkspace {
    /// Vertex capacity every vertex-indexed buffer is sized for.
    pub(crate) cap_vertices: usize,
    /// Async-path community assignment (atomic; also re-staged with
    /// dense ids for aggregation).
    pub(crate) membership: Vec<AtomicU32>,
    /// Async-path community penalty totals Σ' (atomic; also the CPM
    /// size-fold accumulator).
    pub(crate) sigma: Vec<AtomicF64>,
    /// Per-vertex penalty weights (weighted degrees, or CPM sizes).
    pub(crate) penalty: Vec<f64>,
    /// Local-moving result: refinement bounds.
    pub(crate) bounds: Vec<VertexId>,
    /// Refinement result snapshot.
    pub(crate) refined: Vec<VertexId>,
    /// Dense renumbering of `refined`.
    pub(crate) dense: Vec<VertexId>,
    /// Staging for the move-based `label_of` values (length `k`).
    pub(crate) labels: Vec<VertexId>,
    /// Initial labels of the next pass (move-based labeling or seeds).
    pub(crate) init_labels: Vec<VertexId>,
    /// First-occurrence scratch of the parallel renumber; doubles as
    /// the `label_of` scatter target between renumber calls.
    pub(crate) first_seen: Vec<AtomicU32>,
    /// Prefix-sum scratch of the parallel renumber.
    pub(crate) rank: Vec<u64>,
    /// CPM vertex sizes (current pass).
    pub(crate) sizes: Vec<f64>,
    /// CPM vertex sizes (next pass) — the double buffer.
    pub(crate) sizes_next: Vec<f64>,
    /// Color-synchronous plain membership.
    pub(crate) plain_membership: Vec<VertexId>,
    /// Color-synchronous plain Σ'.
    pub(crate) plain_sigma: Vec<f64>,
    /// Color-synchronous per-class decision buffer.
    pub(crate) sync_decisions: Vec<Decision>,
    /// Pruning flags, prefix-reset per pass.
    pub(crate) unprocessed: AtomicBitset,
    /// Recycled interleaved `(target, weight)` buffers for super-vertex
    /// graphs: the pass loop adopts one into each fresh supergraph and
    /// takes it back before the CSR is recycled, so the interleaved
    /// layout performs no steady-state allocation either.
    pub(crate) interleaved_pool: Vec<Vec<(VertexId, EdgeWeight)>>,
    /// Fused grouped/holey aggregation scratch + CSR recycle stack.
    pub(crate) aggregate: AggregateScratch,
    /// One collision-free scan hashtable per worker — the `O(T·N)`
    /// memory term — lazily materialized and reused across phases,
    /// passes, *and* runs.
    pub(crate) tables: PerThread<CommunityMap>,
    /// Capacity newly materialized tables must cover (grow-only; shared
    /// with the `tables` factory closure).
    table_capacity: Arc<AtomicUsize>,
}

impl Default for PassWorkspace {
    fn default() -> Self {
        let table_capacity = Arc::new(AtomicUsize::new(0));
        let capacity = Arc::clone(&table_capacity);
        Self {
            cap_vertices: 0,
            membership: Vec::new(),
            sigma: Vec::new(),
            penalty: Vec::new(),
            bounds: Vec::new(),
            refined: Vec::new(),
            dense: Vec::new(),
            labels: Vec::new(),
            init_labels: Vec::new(),
            first_seen: Vec::new(),
            rank: Vec::new(),
            sizes: Vec::new(),
            sizes_next: Vec::new(),
            plain_membership: Vec::new(),
            plain_sigma: Vec::new(),
            sync_decisions: Vec::new(),
            unprocessed: AtomicBitset::new(0),
            interleaved_pool: Vec::new(),
            aggregate: AggregateScratch::new(),
            tables: PerThread::new(move || {
                // Relaxed: `ensure` stores the capacity under `&mut self`
                // before any parallel region can materialize a table, and
                // the spawn of those workers publishes the store.
                CommunityMap::new(capacity.load(Ordering::Relaxed))
            }),
            table_capacity,
        }
    }
}

impl PassWorkspace {
    /// An empty workspace; buffers grow on first run and are reused
    /// afterwards.
    pub fn new() -> Self {
        Self::default()
    }

    /// A workspace pre-sized for graphs up to `vertices`/`arcs`, so the
    /// first run already performs no pass-loop allocation.
    pub fn with_capacity(vertices: usize, arcs: usize) -> Self {
        let mut ws = Self::new();
        ws.ensure(vertices, arcs);
        ws
    }

    /// Vertex capacity the workspace is currently sized for.
    pub fn capacity(&self) -> usize {
        self.cap_vertices
    }

    /// Grows (never shrinks) every buffer to cover a graph with
    /// `vertices` and `arcs`. No-op when already large enough.
    pub fn ensure(&mut self, vertices: usize, arcs: usize) {
        if self.cap_vertices < vertices {
            let n = vertices;
            self.membership.resize_with(n, || AtomicU32::new(0));
            self.sigma.resize_with(n, || AtomicF64::new(0.0));
            self.penalty.resize(n, 0.0);
            self.bounds.resize(n, 0);
            self.refined.resize(n, 0);
            self.dense.resize(n, 0);
            self.labels.resize(n, 0);
            self.init_labels.resize(n, 0);
            self.first_seen.resize_with(n, || AtomicU32::new(0));
            self.rank.resize(n, 0);
            self.plain_membership.resize(n, 0);
            self.plain_sigma.resize(n, 0.0);
            self.unprocessed = AtomicBitset::new(n);
            // Relaxed: stored under `&mut self`; worker threads that read
            // it are spawned afterwards (spawn publishes the store).
            self.table_capacity.store(n, Ordering::Relaxed);
            self.tables.for_each_mut(|table| table.ensure_capacity(n));
            self.cap_vertices = n;
        }
        self.aggregate.reserve(vertices, arcs);
    }

    /// Grows the pooled interleaved buffer to cover `arcs` entries
    /// (only the interleaved layout adopts pooled buffers; supergraphs
    /// never have more arcs than the input graph, so one reservation at
    /// run start covers every pass).
    pub(crate) fn ensure_interleaved(&mut self, arcs: usize) {
        match self.interleaved_pool.last_mut() {
            Some(buf) => {
                buf.clear();
                buf.reserve(arcs);
            }
            None => self.interleaved_pool.push(Vec::with_capacity(arcs)),
        }
    }

    /// Grows the CPM size double buffer (only the CPM objective carries
    /// vertex sizes across aggregations).
    pub(crate) fn ensure_sizes(&mut self, vertices: usize) {
        if self.sizes.len() < vertices {
            self.sizes.resize(vertices, 0.0);
            self.sizes_next.resize(vertices, 0.0);
        }
    }
}

/// Sentinel written into poisoned `membership` suffix slots (a vertex
/// id this large cannot occur: ids are `< N < 2^32 - 16`).
#[cfg(feature = "analysis")]
pub const POISON_LABEL: u32 = u32::MAX - 7;

/// Sentinel NaN bit pattern written into poisoned `sigma` suffix slots.
/// Compared by bits: no legitimate phase produces this exact payload.
#[cfg(feature = "analysis")]
pub const POISON_SIGMA_BITS: u64 = 0x7FF8_DEAD_BEEF_0105;

/// Poisons the workspace suffixes beyond the live prefix. Called after
/// each pass shrink (and once at run start for the initial capacity
/// overhang), so [`assert_suffix_poisoned`] can prove that no phase
/// ever writes past its pass's prefix — i.e. that the shrinking prefix
/// views never alias stale suffix state.
#[cfg(feature = "analysis")]
pub fn poison_suffix(membership: &[AtomicU32], sigma: &[AtomicF64]) {
    use rayon::prelude::*;
    use std::sync::atomic::Ordering;
    // Relaxed: bulk sentinel stores between phases, published by the
    // surrounding joins (same contract as the in-place reinits).
    membership
        .par_iter()
        .for_each(|c| c.store(POISON_LABEL, Ordering::Relaxed));
    sigma
        .par_iter()
        .for_each(|s| s.store(f64::from_bits(POISON_SIGMA_BITS)));
}

/// Asserts that a previously poisoned suffix is still intact — no
/// local-moving, refinement, or staging write escaped the pass's prefix
/// view. Runs under `--features analysis` only.
///
/// # Panics
/// Panics naming the first clobbered slot.
#[cfg(feature = "analysis")]
pub fn assert_suffix_poisoned(
    membership: &[AtomicU32],
    sigma: &[AtomicF64],
    pass: usize,
    prefix: usize,
) {
    use std::sync::atomic::Ordering;
    for (i, c) in membership.iter().enumerate() {
        // Relaxed: post-join read-back of sentinel values.
        let got = c.load(Ordering::Relaxed);
        assert!(
            got == POISON_LABEL,
            "pass {pass}: membership[{}] escaped the prefix view (found {got})",
            prefix + i
        );
    }
    for (i, s) in sigma.iter().enumerate() {
        let got = s.load().to_bits();
        assert!(
            got == POISON_SIGMA_BITS,
            "pass {pass}: sigma[{}] escaped the prefix view (found bits {got:#x})",
            prefix + i
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ensure_is_grow_only() {
        let mut ws = PassWorkspace::new();
        ws.ensure(100, 400);
        assert_eq!(ws.capacity(), 100);
        assert_eq!(ws.membership.len(), 100);
        assert_eq!(ws.unprocessed.len(), 100);
        let membership_ptr = ws.membership.as_ptr();
        // Shrinking request: nothing moves.
        ws.ensure(10, 20);
        assert_eq!(ws.capacity(), 100);
        assert_eq!(ws.membership.as_ptr(), membership_ptr);
        // Growing request: capacity follows.
        ws.ensure(200, 800);
        assert_eq!(ws.capacity(), 200);
        assert_eq!(ws.sigma.len(), 200);
    }

    #[test]
    fn with_capacity_presizes() {
        let ws = PassWorkspace::with_capacity(64, 256);
        assert_eq!(ws.capacity(), 64);
        assert_eq!(ws.rank.len(), 64);
    }

    #[test]
    fn interleaved_pool_reserves_without_moving() {
        let mut ws = PassWorkspace::new();
        ws.ensure_interleaved(100);
        assert_eq!(ws.interleaved_pool.len(), 1);
        assert!(ws.interleaved_pool[0].capacity() >= 100);
        let ptr = ws.interleaved_pool[0].as_ptr();
        // A smaller request keeps the same buffer in place.
        ws.ensure_interleaved(50);
        assert_eq!(ws.interleaved_pool.len(), 1);
        assert_eq!(ws.interleaved_pool[0].as_ptr(), ptr);
    }

    #[test]
    fn sizes_buffer_is_lazy() {
        let mut ws = PassWorkspace::new();
        ws.ensure(50, 100);
        assert!(ws.sizes.is_empty());
        ws.ensure_sizes(50);
        assert_eq!(ws.sizes.len(), 50);
        assert_eq!(ws.sizes_next.len(), 50);
    }

    #[cfg(feature = "analysis")]
    #[test]
    fn poison_roundtrip_detects_clobber() {
        use std::sync::atomic::Ordering;
        let ws = PassWorkspace::with_capacity(8, 8);
        poison_suffix(&ws.membership[4..], &ws.sigma[4..]);
        assert_suffix_poisoned(&ws.membership[4..], &ws.sigma[4..], 0, 4);
        ws.membership[5].store(3, Ordering::Relaxed);
        let caught = std::panic::catch_unwind(|| {
            assert_suffix_poisoned(&ws.membership[4..], &ws.sigma[4..], 0, 4);
        });
        assert!(caught.is_err(), "clobbered suffix must be detected");
    }
}
