//! Color-synchronous (deterministic) local moving and refinement.
//!
//! The paper's GVE-Leiden is *asynchronous*: threads observe each
//! other's partial updates, which converges fast but makes results vary
//! run to run (§4.1). Its related work lists the alternative: "ordering
//! vertices via graph coloring" (Grappolo \[11\]). Vertices of one color
//! class form an independent set, so the whole class can decide moves
//! simultaneously against a *frozen* state — no member reads another
//! member's community — and the decisions are then applied in vertex
//! order. The result is reproducible across runs **and thread counts**
//! (bitwise for integral edge weights; up to floating-point summation
//! order otherwise), at the cost of extra rounds.
//!
//! Selected with [`crate::config::Scheduling::ColorSynchronous`].

use crate::config::{LeidenConfig, RefinementStrategy};
use crate::localmove::MoveOutcome;
use crate::objective::GainCoeffs;
use crate::workspace::Decision;
use gve_graph::coloring::Coloring;
use gve_graph::{CsrGraph, VertexId};
use gve_prim::{AtomicBitset, CommunityMap, PerThread, Xorshift32};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Scans `i`'s neighbour communities against plain (frozen) state and
/// picks the best move.
#[allow(clippy::too_many_arguments)]
fn decide(
    graph: &CsrGraph,
    membership: &[VertexId],
    bounds: Option<&[VertexId]>,
    penalty: &[f64],
    sigma: &[f64],
    coeffs: GainCoeffs,
    ht: &mut CommunityMap,
    i: VertexId,
    strategy: RefinementStrategy,
    rng_seed: Option<u64>,
) -> Decision {
    ht.clear();
    for (j, w) in graph.edges(i) {
        if j == i {
            continue;
        }
        if let Some(bounds) = bounds {
            if bounds[j as usize] != bounds[i as usize] {
                continue;
            }
        }
        ht.add(membership[j as usize], w as f64);
    }
    let current = membership[i as usize];
    let p_i = penalty[i as usize];
    let k_to_current = ht.weight(current);
    let sigma_current = sigma[current as usize];
    match strategy {
        RefinementStrategy::Greedy => {
            let mut best: Decision = None;
            for (d, k_to_d) in ht.iter() {
                if d == current {
                    continue;
                }
                let gain = coeffs.gain(k_to_d, k_to_current, p_i, sigma[d as usize], sigma_current);
                best = match best {
                    Some((bd, bg)) if gain < bg || (gain == bg && d >= bd) => Some((bd, bg)),
                    _ => Some((d, gain)),
                };
            }
            best.filter(|&(_, g)| g > 0.0)
        }
        RefinementStrategy::Random => {
            let mut candidates: Vec<(VertexId, f64)> = Vec::new();
            for (d, k_to_d) in ht.iter() {
                if d == current {
                    continue;
                }
                let gain = coeffs.gain(k_to_d, k_to_current, p_i, sigma[d as usize], sigma_current);
                if gain > 0.0 {
                    candidates.push((d, gain));
                }
            }
            if candidates.is_empty() {
                return None;
            }
            let mut rng = Xorshift32::new(crate::stream_seed(rng_seed.unwrap_or(0), i as u64));
            let total: f64 = candidates.iter().map(|&(_, g)| g).sum();
            let mut roll = rng.next_f64() * total;
            let mut pick = *candidates.last().unwrap();
            for &(d, g) in &candidates {
                roll -= g;
                if roll < 0.0 {
                    pick = (d, g);
                    break;
                }
            }
            Some(pick)
        }
    }
}

/// Color-synchronous local-moving phase over plain state. Returns the
/// per-iteration objective gains plus pruning tallies (see
/// [`MoveOutcome`]).
#[allow(clippy::too_many_arguments)]
pub(crate) fn local_move_sync(
    graph: &CsrGraph,
    membership: &mut [VertexId],
    penalty: &[f64],
    sigma: &mut [f64],
    coeffs: GainCoeffs,
    tolerance: f64,
    config: &LeidenConfig,
    tables: &PerThread<CommunityMap>,
    coloring: &Coloring,
    unprocessed: &AtomicBitset,
    decisions: &mut Vec<Decision>,
) -> MoveOutcome {
    let classes = coloring.classes();
    let mut outcome = MoveOutcome::default();
    // Pruning tallies, bumped from inside the per-class parallel decide.
    // Relaxed: reporting-only counters read after the rayon join.
    let processed = AtomicU64::new(0);
    let skipped = AtomicU64::new(0);
    while outcome.gains.len() < config.max_iterations {
        let mut delta_q = 0.0;
        for class in &classes {
            // Decide in parallel against frozen state; class members are
            // pairwise non-adjacent, so no decision reads another
            // member's community. Decisions land in a grow-only prefix
            // of the workspace buffer — no per-class allocation.
            if decisions.len() < class.len() {
                decisions.resize(class.len(), None);
            }
            let slots = &mut decisions[..class.len()];
            class
                .par_iter()
                .zip(slots.par_iter_mut())
                .for_each(|(&i, slot)| {
                    *slot = {
                        if config.pruning && !unprocessed.take(i as usize) {
                            // Relaxed: reporting-only tally, as above.
                            skipped.fetch_add(1, Ordering::Relaxed);
                            None
                        } else {
                            // Relaxed: reporting-only tally, as above.
                            processed.fetch_add(1, Ordering::Relaxed);
                            tables.with(|ht| {
                                decide(
                                    graph,
                                    membership,
                                    None,
                                    penalty,
                                    sigma,
                                    coeffs,
                                    ht,
                                    i,
                                    RefinementStrategy::Greedy,
                                    None,
                                )
                            })
                        }
                    };
                });
            // Apply sequentially in vertex order: deterministic Σ'.
            for (&i, decision) in class.iter().zip(slots.iter()) {
                if let Some((target, gain)) = *decision {
                    let p_i = penalty[i as usize];
                    let current = membership[i as usize];
                    sigma[current as usize] -= p_i;
                    sigma[target as usize] += p_i;
                    membership[i as usize] = target;
                    delta_q += gain;
                    if config.pruning {
                        for &j in graph.neighbors(i) {
                            unprocessed.set(j as usize);
                        }
                    }
                }
            }
        }
        outcome.gains.push(delta_q);
        if delta_q <= tolerance {
            break;
        }
    }
    // Relaxed: post-join read-back of the tallies.
    outcome.pruning_processed = processed.load(Ordering::Relaxed);
    outcome.pruning_skipped = skipped.load(Ordering::Relaxed);
    outcome
}

/// Color-synchronous refinement: single sweep over the color classes,
/// merging isolated vertices within their bounds. Returns the number of
/// vertices that moved.
#[allow(clippy::too_many_arguments)]
pub(crate) fn refine_sync(
    graph: &CsrGraph,
    bounds: &[VertexId],
    membership: &mut [VertexId],
    penalty: &[f64],
    sigma: &mut [f64],
    coeffs: GainCoeffs,
    config: &LeidenConfig,
    tables: &PerThread<CommunityMap>,
    coloring: &Coloring,
    pass_seed: u64,
    decisions: &mut Vec<Decision>,
) -> u64 {
    let mut moved = 0u64;
    for class in &coloring.classes() {
        if decisions.len() < class.len() {
            decisions.resize(class.len(), None);
        }
        let slots = &mut decisions[..class.len()];
        class
            .par_iter()
            .zip(slots.par_iter_mut())
            .for_each(|(&i, slot)| {
                // Constrained merge: only isolated vertices move.
                *slot = if sigma[membership[i as usize] as usize] != penalty[i as usize] {
                    None
                } else {
                    tables.with(|ht| {
                        decide(
                            graph,
                            membership,
                            Some(bounds),
                            penalty,
                            sigma,
                            coeffs,
                            ht,
                            i,
                            config.refinement,
                            Some(pass_seed ^ config.seed),
                        )
                    })
                };
            });
        for (&i, decision) in class.iter().zip(slots.iter()) {
            if let Some((target, _)) = *decision {
                let current = membership[i as usize];
                let p_i = penalty[i as usize];
                // Re-check isolation at apply time (a same-class sibling
                // may have merged into us) and that the target is still
                // occupied; sequential order makes this deterministic.
                if sigma[current as usize] != p_i || sigma[target as usize] == 0.0 {
                    continue;
                }
                sigma[current as usize] = 0.0;
                sigma[target as usize] += p_i;
                membership[i as usize] = target;
                moved += 1;
            }
        }
    }
    moved
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::Objective;
    use gve_graph::coloring::jones_plassmann;
    use gve_graph::GraphBuilder;

    fn two_triangles() -> CsrGraph {
        GraphBuilder::from_edges(
            6,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 0, 1.0),
                (3, 4, 1.0),
                (4, 5, 1.0),
                (5, 3, 1.0),
                (2, 3, 1.0),
            ],
        )
    }

    #[test]
    fn sync_local_move_finds_triangles() {
        let graph = two_triangles();
        let coloring = jones_plassmann(&graph, 0);
        let weights: Vec<f64> = (0..6u32).map(|u| graph.weighted_degree(u)).collect();
        let mut membership: Vec<u32> = (0..6).collect();
        let mut sigma = weights.clone();
        let coeffs = Objective::default().coeffs(graph.total_arc_weight() / 2.0);
        let config = LeidenConfig::default();
        let tables = PerThread::new(|| CommunityMap::new(6));
        let unprocessed = AtomicBitset::new_all_set(6);
        let outcome = local_move_sync(
            &graph,
            &mut membership,
            &weights,
            &mut sigma,
            coeffs,
            0.0,
            &config,
            &tables,
            &coloring,
            &unprocessed,
            &mut Vec::new(),
        );
        assert!(!outcome.gains.is_empty() && outcome.gains[0] > 0.0);
        assert!(outcome.pruning_processed >= 6);
        assert_eq!(membership[0], membership[1]);
        assert_eq!(membership[1], membership[2]);
        assert_eq!(membership[3], membership[4]);
        assert_ne!(membership[0], membership[3]);
        // Σ stays consistent with the final membership.
        let mut expect = vec![0.0; 6];
        for (v, &c) in membership.iter().enumerate() {
            expect[c as usize] += weights[v];
        }
        assert_eq!(sigma, expect);
    }

    #[test]
    fn sync_refine_respects_bounds_and_isolation() {
        let graph = two_triangles();
        let coloring = jones_plassmann(&graph, 1);
        let weights: Vec<f64> = (0..6u32).map(|u| graph.weighted_degree(u)).collect();
        let bounds = vec![0, 0, 0, 1, 1, 1];
        let mut membership: Vec<u32> = (0..6).collect();
        let mut sigma = weights.clone();
        let coeffs = Objective::default().coeffs(graph.total_arc_weight() / 2.0);
        let config = LeidenConfig::default();
        let tables = PerThread::new(|| CommunityMap::new(6));
        let moved = refine_sync(
            &graph,
            &bounds,
            &mut membership,
            &weights,
            &mut sigma,
            coeffs,
            &config,
            &tables,
            &coloring,
            0,
            &mut Vec::new(),
        );
        assert!(moved > 0);
        for v in 0..6usize {
            assert_eq!(
                bounds[membership[v] as usize], bounds[v],
                "bound escape at {v}"
            );
        }
    }
}
