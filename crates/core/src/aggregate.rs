//! The aggregation phase (Algorithm 4 of the paper).
//!
//! Collapses each refined community into a super-vertex. Two CSRs are
//! built per pass:
//!
//! 1. the community-vertices CSR `G'_{C'}` (exact counts + prefix sum +
//!    atomic scatter) — [`gve_graph::GroupedCsr`];
//! 2. the super-vertex graph `G''` in a *holey* CSR whose per-community
//!    capacity is overestimated by the community's total degree, skipping
//!    an exact counting pass — [`gve_graph::HoleyCsrBuilder`].
//!
//! Cross-community weights are tallied in the per-thread collision-free
//! hashtable, then flushed as super-arcs (including the `(c, c)`
//! self-loop carrying the intra-community weight `σ_c`).

use crate::localmove::scan_communities;
use gve_graph::{AggregateScratch, CsrGraph, VertexId};
use gve_prim::parfor::dynamic_workers;
use gve_prim::scan::parallel_offsets_from_counts;
use gve_prim::{CommunityMap, PerThread, SmallScanMap};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

/// Builds the super-vertex graph for a dense membership in
/// `0..num_communities`.
///
/// One-shot convenience wrapper over [`aggregate_into`] with a
/// throwaway scratch; the pass loop holds a [`AggregateScratch`] in its
/// workspace and calls [`aggregate_into`] directly.
pub fn aggregate(
    graph: &CsrGraph,
    membership: &[AtomicU32],
    membership_plain: &[VertexId],
    num_communities: usize,
    chunk_size: usize,
    tables: &PerThread<CommunityMap>,
    small_threshold: Option<usize>,
) -> CsrGraph {
    let mut scratch = AggregateScratch::new();
    aggregate_into(
        graph,
        membership,
        membership_plain,
        num_communities,
        chunk_size,
        tables,
        small_threshold,
        &mut scratch,
    )
}

/// Builds the super-vertex graph into (and out of) a reusable
/// [`AggregateScratch`]: the grouped-CSR counting sweep also folds each
/// community's total degree (the holey capacity), and the dense result
/// is squeezed into buffers recycled from a previously retired
/// supergraph — zero steady-state allocation.
///
/// `small_threshold` enables the kernel-v2 two-tier scan: communities
/// whose total degree (the holey-CSR capacity) fits the bound are
/// tallied in a stack-resident [`SmallScanMap`] instead of the
/// per-thread table — total degree bounds the distinct neighbour
/// communities, so the map cannot overflow. `None` keeps every
/// community on the v1 table path.
#[allow(clippy::too_many_arguments)]
pub fn aggregate_into(
    graph: &CsrGraph,
    membership: &[AtomicU32],
    membership_plain: &[VertexId],
    num_communities: usize,
    chunk_size: usize,
    tables: &PerThread<CommunityMap>,
    small_threshold: Option<usize>,
    scratch: &mut AggregateScratch,
) -> CsrGraph {
    // Community-vertices CSR fused with the capacity overestimates
    // (Algorithm 4, lines 3–6 and 8–9 in one sweep). A community of
    // isolated vertices has total degree 0 and emits no arcs, so 0
    // capacity is fine.
    scratch.prepare(membership_plain, num_communities, |i| {
        graph.degree(i as VertexId) as u64
    });

    // Per-community scans (lines 11–16), dynamically scheduled since
    // community sizes are wildly skewed.
    let small_cap = small_threshold.map(|t| t as u64);
    let shared = &*scratch;
    dynamic_workers(num_communities, chunk_size.max(1), |claims| {
        tables.with(|ht| {
            let mut small = SmallScanMap::new();
            for range in claims {
                for c in range {
                    let c = c as VertexId;
                    let cap = shared.capacity(c);
                    if small_cap.is_some_and(|t| cap <= t) {
                        // Low-degree tier: the community's total degree
                        // bounds the arcs scanned, hence the distinct
                        // target communities.
                        small.clear();
                        for &i in shared.members(c) {
                            for (j, w) in graph.scan_edges(i) {
                                // Relaxed: membership is frozen here —
                                // the join ending refine/local-move
                                // already published every store.
                                small.add(membership[j as usize].load(Ordering::Relaxed), w as f64);
                            }
                        }
                        for (d, w) in small.iter() {
                            shared.add_arc(c, d, w as f32);
                        }
                        continue;
                    }
                    ht.clear();
                    for &i in shared.members(c) {
                        // include_self = true: self-loops carry intra
                        // weight into the super-vertex self-loop.
                        scan_communities(ht, graph, membership, i, true);
                    }
                    for (d, w) in ht.iter() {
                        shared.add_arc(c, d, w as f32);
                    }
                }
            }
        })
    });

    scratch.squeeze()
}

/// Sort-reduce aggregation: the alternative design the paper's related
/// work cites (Cheong et al. \[4\]). Every arc is rewritten as a
/// community-pair record, the records are parallel-sorted, and equal
/// pairs are reduced into super-arcs in a single pass. No per-thread
/// hashtables, no holey CSR — at the cost of materializing and sorting
/// all |E| records.
pub fn aggregate_sort_reduce(
    graph: &CsrGraph,
    membership_plain: &[VertexId],
    num_communities: usize,
) -> CsrGraph {
    // 1. Rewrite arcs as (src community, dst community, weight).
    let mut records: Vec<(VertexId, VertexId, f32)> = (0..graph.num_vertices() as VertexId)
        .into_par_iter()
        .flat_map_iter(|u| {
            let cu = membership_plain[u as usize];
            graph
                .edges(u)
                .map(move |(v, w)| (cu, membership_plain[v as usize], w))
        })
        .collect();

    // 2. Parallel sort by community pair.
    records.par_sort_unstable_by_key(|&(s, d, _)| ((s as u64) << 32) | d as u64);

    // 3. Reduce equal runs; accumulate per-community arc counts as we go.
    let mut counts = vec![0u64; num_communities];
    let mut reduced: Vec<(VertexId, VertexId, f32)> = Vec::new();
    for &(s, d, w) in &records {
        match reduced.last_mut() {
            Some(last) if last.0 == s && last.1 == d => last.2 += w,
            _ => {
                counts[s as usize] += 1;
                reduced.push((s, d, w));
            }
        }
    }

    // 4. Assemble the CSR directly — the reduced records are already in
    // row order.
    let offsets = parallel_offsets_from_counts(&counts);
    let mut targets = Vec::with_capacity(reduced.len());
    let mut weights = Vec::with_capacity(reduced.len());
    for (_, d, w) in reduced {
        targets.push(d);
        weights.push(w);
    }
    CsrGraph::from_raw(offsets, targets, weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gve_graph::GraphBuilder;
    use gve_prim::PerThread;

    fn atomic_membership(plain: &[u32]) -> Vec<AtomicU32> {
        plain.iter().map(|&c| AtomicU32::new(c)).collect()
    }

    fn run_aggregate(graph: &CsrGraph, membership: &[u32], k: usize) -> CsrGraph {
        let atomic = atomic_membership(membership);
        let tables = PerThread::new({
            let n = graph.num_vertices().max(k);
            move || CommunityMap::new(n)
        });
        aggregate(graph, &atomic, membership, k, 64, &tables, None)
    }

    #[test]
    fn two_tier_matches_table_only_aggregation() {
        let graph = gve_generate::sbm::PlantedPartition::new(500, 8, 10.0, 1.5)
            .seed(21)
            .generate()
            .graph;
        // Fine partition → plenty of low-total-degree communities that
        // take the stack tier.
        let membership: Vec<u32> = (0..500u32).map(|v| v % 100).collect();
        let atomic = atomic_membership(&membership);
        let tables = PerThread::new(|| CommunityMap::new(500));
        let v1 = aggregate(&graph, &atomic, &membership, 100, 16, &tables, None);
        let v2 = aggregate(
            &graph,
            &atomic,
            &membership,
            100,
            16,
            &tables,
            Some(gve_prim::SMALL_SCAN_CAP),
        );
        assert_eq!(v1.num_vertices(), v2.num_vertices());
        assert_eq!(v1.num_arcs(), v2.num_arcs());
        for c in 0..100u32 {
            let mut a: Vec<_> = v1.edges(c).map(|(d, w)| (d, w.to_bits())).collect();
            let mut b: Vec<_> = v2.edges(c).map(|(d, w)| (d, w.to_bits())).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "community {c}");
        }
    }

    #[test]
    fn two_triangles_collapse_to_two_super_vertices() {
        let graph = GraphBuilder::from_edges(
            6,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 0, 1.0),
                (3, 4, 1.0),
                (4, 5, 1.0),
                (5, 3, 1.0),
                (2, 3, 1.0),
            ],
        );
        let sup = run_aggregate(&graph, &[0, 0, 0, 1, 1, 1], 2);
        assert_eq!(sup.num_vertices(), 2);
        // Self-loops carry σ_c = 6 (each triangle's arcs), bridge = 1.
        let mut e0: Vec<_> = sup.edges(0).collect();
        e0.sort_by_key(|&(v, _)| v);
        assert_eq!(e0, vec![(0, 6.0), (1, 1.0)]);
        let mut e1: Vec<_> = sup.edges(1).collect();
        e1.sort_by_key(|&(v, _)| v);
        assert_eq!(e1, vec![(0, 1.0), (1, 6.0)]);
    }

    #[test]
    fn total_weight_is_preserved() {
        let graph = gve_generate::rmat::Rmat::social(9, 6.0).seed(4).generate();
        let n = graph.num_vertices();
        // Arbitrary 7-way partition.
        let membership: Vec<u32> = (0..n as u32).map(|v| v % 7).collect();
        let sup = run_aggregate(&graph, &membership, 7);
        assert_eq!(sup.num_vertices(), 7);
        assert!(
            (sup.total_arc_weight() - graph.total_arc_weight()).abs() < 1e-6,
            "2m changed: {} vs {}",
            sup.total_arc_weight(),
            graph.total_arc_weight()
        );
    }

    #[test]
    fn modularity_invariant_under_aggregation() {
        // Q(partition on G) == Q(singletons on aggregated G) — the
        // correctness condition Louvain/Leiden rely on.
        let graph = gve_generate::sbm::PlantedPartition::new(300, 6, 8.0, 1.0)
            .seed(2)
            .generate()
            .graph;
        let membership: Vec<u32> = (0..300u32).map(|v| v % 6).collect();
        let sup = run_aggregate(&graph, &membership, 6);
        let q_fine = gve_quality::modularity(&graph, &membership);
        let singleton: Vec<u32> = (0..6).collect();
        let q_coarse = gve_quality::modularity(&sup, &singleton);
        assert!(
            (q_fine - q_coarse).abs() < 1e-9,
            "Q not preserved: {q_fine} vs {q_coarse}"
        );
    }

    #[test]
    fn weighted_degrees_sum_per_community() {
        let graph = GraphBuilder::from_edges(4, &[(0, 1, 2.0), (2, 3, 3.0), (1, 2, 1.0)]);
        let sup = run_aggregate(&graph, &[0, 0, 1, 1], 2);
        assert_eq!(
            sup.weighted_degree(0),
            graph.weighted_degree(0) + graph.weighted_degree(1)
        );
        assert_eq!(
            sup.weighted_degree(1),
            graph.weighted_degree(2) + graph.weighted_degree(3)
        );
    }

    #[test]
    fn singleton_partition_reproduces_graph_weights() {
        let graph = GraphBuilder::from_edges(3, &[(0, 1, 1.5), (1, 2, 2.5)]);
        let membership: Vec<u32> = (0..3).collect();
        let sup = run_aggregate(&graph, &membership, 3);
        assert_eq!(sup.num_vertices(), 3);
        assert_eq!(sup.num_arcs(), graph.num_arcs());
        assert_eq!(sup.total_arc_weight(), graph.total_arc_weight());
    }

    #[test]
    fn sort_reduce_matches_hashtable_aggregation() {
        let graph = gve_generate::sbm::PlantedPartition::new(500, 8, 10.0, 1.5)
            .seed(7)
            .generate()
            .graph;
        let membership: Vec<u32> = (0..500u32).map(|v| v % 8).collect();
        let by_hash = run_aggregate(&graph, &membership, 8);
        let by_sort = aggregate_sort_reduce(&graph, &membership, 8);
        assert_eq!(by_sort.num_vertices(), by_hash.num_vertices());
        assert_eq!(by_sort.num_arcs(), by_hash.num_arcs());
        assert!((by_sort.total_arc_weight() - by_hash.total_arc_weight()).abs() < 1e-6);
        // Same rows up to arc order.
        for c in 0..8u32 {
            let mut a: Vec<_> = by_sort.edges(c).collect();
            let mut b: Vec<_> = by_hash.edges(c).collect();
            a.sort_by_key(|&(v, _)| v);
            b.sort_by_key(|&(v, _)| v);
            assert_eq!(a.len(), b.len(), "community {c}");
            for ((va, wa), (vb, wb)) in a.iter().zip(&b) {
                assert_eq!(va, vb);
                assert!((wa - wb).abs() < 1e-4, "community {c}: {wa} vs {wb}");
            }
        }
    }

    #[test]
    fn sort_reduce_preserves_modularity() {
        let graph = gve_generate::rmat::Rmat::web(9, 6.0).seed(2).generate();
        let n = graph.num_vertices();
        let membership: Vec<u32> = (0..n as u32).map(|v| v % 11).collect();
        let sup = aggregate_sort_reduce(&graph, &membership, 11);
        let singleton: Vec<u32> = (0..11).collect();
        let q_fine = gve_quality::modularity(&graph, &membership);
        let q_coarse = gve_quality::modularity(&sup, &singleton);
        assert!((q_fine - q_coarse).abs() < 1e-9);
    }

    #[test]
    fn isolated_community_gets_no_arcs() {
        let graph = GraphBuilder::from_edges(3, &[(0, 1, 1.0)]);
        let sup = run_aggregate(&graph, &[0, 0, 1], 2);
        assert_eq!(sup.num_vertices(), 2);
        assert_eq!(sup.degree(1), 0);
        assert_eq!(sup.edges(0).collect::<Vec<_>>(), vec![(0, 2.0)]);
    }
}
